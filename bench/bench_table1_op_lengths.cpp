/**
 * @file
 * Table 1: average SA/VU operator lengths of the eleven DNN models
 * at their reference batch sizes (32; ShapeMask 8, Mask-RCNN 16).
 */

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "npu/npu_config.h"
#include "workload/model_zoo.h"
#include "workload/workload.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Table 1: average operator lengths per model");
    banner(opts, "Average operator lengths", "Table 1");

    const NpuConfig config;
    TextTable table({"DNN Model", "Avg. SA Op. Len. (us)",
                     "Avg. VU Op. Len. (us)", "Paper SA (us)",
                     "Paper VU (us)"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"model", "sa_op_us", "vu_op_us", "paper_sa_us",
                    "paper_vu_us"});

    for (const ModelProfile &m : modelZoo()) {
        const Workload wl(m, m.refBatch, config);
        const double sa_us = config.cyclesToUs(
            static_cast<Cycles>(wl.trace().meanSaOpCycles()));
        const double vu_us = config.cyclesToUs(
            static_cast<Cycles>(wl.trace().meanVuOpCycles()));
        if (opts.csv) {
            csv.row({m.name, formatDouble(sa_us, 2),
                     formatDouble(vu_us, 2),
                     formatDouble(m.saOpUsRef, 2),
                     formatDouble(m.vuOpUsRef, 2)});
        } else {
            table.addRow();
            table.cell(m.name);
            table.cell(formatSci(sa_us));
            table.cell(formatSci(vu_us));
            table.cell(formatSci(m.saOpUsRef));
            table.cell(formatSci(m.vuOpUsRef));
        }
    }
    if (!opts.csv)
        table.print();
    return 0;
}
