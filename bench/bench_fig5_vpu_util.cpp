/**
 * @file
 * Fig. 5: VPU (vector unit) temporal utilization of each DNN
 * inference workload across batch sizes.
 */

#include "bench_common.h"

namespace {

double
metric(const v10::SingleProfile &p)
{
    return p.vpuUtil;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = v10::bench::BenchOptions::parse(
        argc, argv, "Fig. 5: VPU temporal utilization vs batch size");
    v10::bench::profileSweepBench(
        opts, "VPU temporal utilization", "Fig. 5", metric, true);
    return 0;
}
