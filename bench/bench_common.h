/**
 * @file
 * Shared scaffolding for the per-figure bench binaries: common
 * command-line handling (--csv, --requests, --quick), banner
 * printing, and pair-list helpers.
 */

#ifndef V10_BENCH_BENCH_COMMON_H
#define V10_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/table.h"
#include "v10/experiment.h"
#include "v10/profiler.h"

namespace v10::bench {

/** Parsed common bench options. */
struct BenchOptions
{
    bool csv = false;            ///< emit CSV instead of a table
    std::uint64_t requests = 25; ///< measured requests per run
    bool quick = false;          ///< --quick: fewer requests (CI)
    /** --jobs: threads for independent simulations (0/"auto" =
     * hardware threads). Results are identical for any value. */
    std::size_t jobs = 1;
    /** --stats-json: also dump the results as structured JSON. */
    std::string statsJson;

    /** Parse argv; exits on --help. @param what banner text. */
    static BenchOptions parse(int argc, char **argv,
                              const std::string &what);
};

/** Print the figure banner unless in CSV mode. */
void banner(const BenchOptions &opts, const std::string &title,
            const std::string &paperRef);

/** Results of one collocation pair across scheduler designs. */
struct PairRunSet
{
    std::string a;
    std::string b;
    std::map<SchedulerKind, RunStats> byKind;
};

/**
 * Run the paper's 11 evaluation pairs (Figs. 16-21) under the given
 * designs; shared by all pair-based figure benches. With jobs > 1
 * the pair x design grid fans out over a SweepRunner; the returned
 * sets are bit-identical for any jobs count.
 */
std::vector<PairRunSet>
runEvaluationPairs(ExperimentRunner &runner,
                   const std::vector<SchedulerKind> &kinds,
                   std::uint64_t requests, std::size_t jobs = 1);

/** "BERT+NCF"-style pair label. */
std::string pairLabel(const PairRunSet &set);

/**
 * When opts.statsJson is set, dump the pair x design grid as one
 * JSON document: {"manifest": {tool, config, requests,
 * schedulers[]}, "grid": {"A+B": {"pmt": RunStats, ...}}}. No-op
 * otherwise. Shared by the pair-based figure benches.
 */
void maybeWriteStatsJson(const BenchOptions &opts,
                         const std::string &tool,
                         const ExperimentRunner &runner,
                         const std::vector<PairRunSet> &sets);

/**
 * Shared driver for the single-workload characterization figures
 * (Figs. 3/4/5/6/7): profile every model over the batch sweep and
 * print one row per model with one column per batch of
 * @p metric(profile). OOM points print "-". The profiling sweep
 * honours opts.jobs.
 */
void profileSweepBench(const BenchOptions &opts,
                       const std::string &title,
                       const std::string &paperRef,
                       double (*metric)(const SingleProfile &),
                       bool asPercent);

} // namespace v10::bench

#endif // V10_BENCH_BENCH_COMMON_H
