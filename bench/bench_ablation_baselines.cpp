/**
 * @file
 * Baseline comparison (extension): the paper's PMT time-slicing
 * baseline vs the original token-based PREMA [HPCA'20] it
 * abstracts, vs V10-Full — showing that V10's win comes from
 * architectural overlap, not from the particular task-level
 * scheduling heuristic it is compared against.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "workload/model_zoo.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Baselines: PMT vs PREMA vs V10-Full");
    banner(opts, "Task-level baselines vs V10",
           "extension (PREMA is the paper's ref. [16])");

    ExperimentRunner runner;
    const std::vector<SchedulerKind> kinds = {SchedulerKind::Pmt,
                                              SchedulerKind::Prema,
                                              SchedulerKind::V10Full};

    TextTable table({"pair", "PMT STP", "PREMA STP", "V10-Full STP",
                     "Full/PMT", "Full/PREMA"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"pair", "pmt_stp", "prema_stp", "full_stp",
                    "full_vs_pmt", "full_vs_prema"});

    std::vector<double> vs_pmt;
    std::vector<double> vs_prema;
    for (const auto &[a, b] : evaluationPairs()) {
        std::map<SchedulerKind, double> stp;
        for (SchedulerKind kind : kinds)
            stp[kind] = runner
                            .runPair(kind, a, b, 1.0, 1.0,
                                     opts.requests)
                            .stp();
        const double r_pmt =
            stp[SchedulerKind::V10Full] / stp[SchedulerKind::Pmt];
        const double r_prema =
            stp[SchedulerKind::V10Full] / stp[SchedulerKind::Prema];
        vs_pmt.push_back(r_pmt);
        vs_prema.push_back(r_prema);
        if (opts.csv) {
            csv.row({a + "+" + b,
                     formatDouble(stp[SchedulerKind::Pmt], 4),
                     formatDouble(stp[SchedulerKind::Prema], 4),
                     formatDouble(stp[SchedulerKind::V10Full], 4),
                     formatDouble(r_pmt, 4),
                     formatDouble(r_prema, 4)});
        } else {
            table.addRow();
            table.cell(a + "+" + b);
            table.cell(stp[SchedulerKind::Pmt], 3);
            table.cell(stp[SchedulerKind::Prema], 3);
            table.cell(stp[SchedulerKind::V10Full], 3);
            table.cell(formatDouble(r_pmt, 2) + "x");
            table.cell(formatDouble(r_prema, 2) + "x");
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\ngeomean V10-Full vs PMT %.2fx, vs PREMA "
                    "%.2fx — both task-level schemes leave the "
                    "same cross-tenant SA/VU overlap on the "
                    "table.\n",
                    geomean(vs_pmt), geomean(vs_prema));
    }
    return 0;
}
