/**
 * @file
 * Fig. 20: per-tenant 95th-percentile request latency of the
 * collocated pairs, normalized to PMT.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/string_util.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fig. 20: 95th-percentile latency vs PMT");
    banner(opts, "95th-percentile latency (normalized to PMT)",
           "Fig. 20");

    ExperimentRunner runner;
    const auto sets = runEvaluationPairs(runner, allSchedulerKinds(),
                                         opts.requests, opts.jobs);
    maybeWriteStatsJson(opts, "bench_fig20_tail_latency", runner, sets);

    TextTable table({"pair", "tenant", "PMT", "V10-Base", "V10-Fair",
                     "V10-Full", "PMT/Full speedup"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"pair", "tenant", "pmt", "base", "fair", "full",
                    "speedup_full_vs_pmt"});

    std::vector<double> speedups;
    for (const PairRunSet &set : sets) {
        for (int tenant = 0; tenant < 2; ++tenant) {
            const double pmt = set.byKind.at(SchedulerKind::Pmt)
                                   .workloads[tenant]
                                   .p95LatencyUs;
            auto rel = [&](SchedulerKind kind) {
                const double v = set.byKind.at(kind)
                                     .workloads[tenant]
                                     .p95LatencyUs;
                return pmt > 0.0 ? v / pmt : 0.0;
            };
            const double full_rel = rel(SchedulerKind::V10Full);
            if (full_rel > 0.0)
                speedups.push_back(1.0 / full_rel);
            const std::string label =
                set.byKind.at(SchedulerKind::Pmt)
                    .workloads[tenant]
                    .label;
            if (opts.csv) {
                csv.row({pairLabel(set), label, "1.0",
                         formatDouble(rel(SchedulerKind::V10Base), 4),
                         formatDouble(rel(SchedulerKind::V10Fair), 4),
                         formatDouble(full_rel, 4),
                         formatDouble(1.0 / full_rel, 4)});
            } else {
                table.addRow();
                table.cell(pairLabel(set));
                table.cell(label);
                table.cell(1.0, 2);
                table.cell(rel(SchedulerKind::V10Base), 2);
                table.cell(rel(SchedulerKind::V10Fair), 2);
                table.cell(full_rel, 2);
                table.cell(formatDouble(1.0 / full_rel, 2) + "x");
            }
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\ngeomean V10-Full tail-latency improvement "
                    "over PMT: %.2fx (paper: 1.74x).\n",
                    geomean(speedups));
    }
    return 0;
}
