/**
 * @file
 * Table 3: hardware overhead of the tensor operator scheduler —
 * context-table storage, scheduling latency, and area/power
 * normalized to a Google TPUv3 core — for the paper's four
 * synthesized configurations plus extrapolated larger ones.
 */

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "v10/hw_cost.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Table 3: operator scheduler hardware overhead");
    banner(opts, "Scheduler hardware overhead", "Table 3");

    TextTable table({"# SAs", "# VUs", "# Workloads", "Context Table",
                     "Latency", "Area", "Power", "Source"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"sas", "vus", "workloads", "table_bytes",
                    "latency_cycles", "area_pct", "power_pct",
                    "source"});

    auto emit = [&](const SchedulerHwCost &c) {
        if (opts.csv) {
            csv.row({std::to_string(c.numSa), std::to_string(c.numVu),
                     std::to_string(c.workloads),
                     std::to_string(c.contextTableBytes),
                     std::to_string(c.latencyCycles),
                     formatDouble(c.areaPct, 4),
                     formatDouble(c.powerPct, 4),
                     c.synthesized ? "synthesized" : "model"});
        } else {
            table.addRow();
            table.cell(static_cast<long long>(c.numSa));
            table.cell(static_cast<long long>(c.numVu));
            table.cell(static_cast<long long>(c.workloads));
            table.cell(std::to_string(c.contextTableBytes) +
                       " bytes");
            table.cell(std::to_string(c.latencyCycles) + " cycles");
            table.cell(formatDouble(c.areaPct, 3) + "%");
            table.cell(formatDouble(c.powerPct, 3) + "%");
            table.cell(c.synthesized ? "Table 3" : "extrapolated");
        }
    };

    for (const SchedulerHwCost &c : table3Configs())
        emit(c);
    // Extrapolated points beyond the paper's synthesis runs.
    emit(schedulerHwCost(8, 8, 16));
    emit(schedulerHwCost(8, 8, 32));

    if (!opts.csv)
        table.print();
    return 0;
}
