/**
 * @file
 * Robustness study (Fig. 19-style layout): sweep an injected fault
 * rate against tenant 0 of a collocated pair and report how the
 * victim tenant's latency envelope holds up. With quarantine enabled
 * a misbehaving tenant is drained instead of dragging the collocated
 * tenant down, and no fault rate terminates the process — the worst
 * outcome is a gracefully aborted run.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "sim/fault_plan.h"
#include "v10/sweep.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv,
        "Graceful degradation: victim latency vs injected fault "
        "rate");
    banner(opts,
           "Degradation under fault injection (V10-Full, faults on "
           "tenant 0)",
           "robustness");

    // Tenant 0 misbehaves (runaway operators) and suffers hardware
    // transients (HBM stalls); tenant 1 is healthy. Five strikes
    // quarantine the offender.
    const std::vector<double> rates = {0.0,  0.01, 0.05,
                                       0.10, 0.50, 1.00};
    std::vector<FaultPlan> plans(rates.size());
    std::vector<SweepCell> cells;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        if (rates[i] > 0.0) {
            FaultSite runaway;
            runaway.kind = FaultKind::RunawayOp;
            runaway.rate = rates[i];
            runaway.magnitude = 8.0;
            runaway.tenant = 0;
            plans[i].add(runaway);
            FaultSite stall;
            stall.kind = FaultKind::HbmStall;
            stall.rate = rates[i];
            stall.magnitude = 2000.0;
            stall.tenant = 0;
            plans[i].add(stall);
        }
        SweepCell cell;
        cell.kind = SchedulerKind::V10Full;
        cell.tenants = {TenantRequest{"BERT", 0, 1.0},
                        TenantRequest{"NCF", 0, 1.0}};
        cell.requests = opts.requests;
        cell.warmup = 2;
        cell.label = "rate=" + formatDouble(rates[i], 2);
        if (!plans[i].empty()) {
            cell.options.resilience.faults = &plans[i];
            cell.options.resilience.quarantineThreshold = 5;
        }
        cells.push_back(std::move(cell));
    }

    ExperimentRunner runner;
    SweepRunner sweep(runner, opts.jobs);
    const std::vector<RunStats> results = sweep.run(cells);

    const double clean_victim =
        results[0].workloads[1].avgLatencyUs;

    TextTable table({"fault rate", "faults", "T0 requests",
                     "T0 state", "T1 avg lat (us)", "T1 vs clean",
                     "run"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"rate", "faults_injected", "t0_requests",
                    "t0_quarantined", "t1_avg_latency_us",
                    "t1_vs_clean", "aborted"});

    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunStats &r = results[i];
        const auto &t0 = r.workloads[0];
        const auto &t1 = r.workloads[1];
        const double vs_clean = clean_victim > 0.0
                                    ? t1.avgLatencyUs / clean_victim
                                    : 0.0;
        if (opts.csv) {
            csv.row({formatDouble(rates[i], 2),
                     std::to_string(r.faultsInjected),
                     std::to_string(t0.requests),
                     t0.quarantined ? "1" : "0",
                     formatDouble(t1.avgLatencyUs, 1),
                     formatDouble(vs_clean, 3),
                     r.aborted ? "1" : "0"});
        } else {
            table.addRow();
            table.cell(rates[i], 2);
            table.cell(static_cast<long long>(r.faultsInjected));
            table.cell(static_cast<long long>(t0.requests));
            table.cell(t0.quarantined ? "quarantined" : "healthy");
            table.cell(t1.avgLatencyUs, 1);
            table.cell(formatDouble(vs_clean, 2) + "x");
            table.cell(r.aborted ? "aborted" : "completed");
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf(
            "\nTenant 0 absorbs the injected faults; once it trips "
            "the 5-strike\nquarantine its operators drain and "
            "tenant 1 keeps its clean-run\nlatency envelope. No "
            "fault rate kills the process.\n");
    }
    return 0;
}
