/**
 * @file
 * Ablation of the §3.3 design choices (not a paper figure; supports
 * the Fig. 13 discussion): (a) the SA context-saving strategy —
 * V10's overlapped input-replay vs the naive drain-everything — and
 * (b) the scheduling policy with and without the preemption module,
 * including the non-paper RR+preemption combination.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "npu/npu_core.h"
#include "sched/op_scheduler.h"
#include "sim/simulator.h"
#include "workload/model_zoo.h"
#include "workload/workload.h"

namespace {

using namespace v10;

RunStats
runCombo(const NpuConfig &cfg, OperatorScheduler::PolicyKind policy,
         bool preemption, const std::string &a, const std::string &b,
         std::uint64_t requests)
{
    const Workload wa = Workload::fromName(a, 0, cfg);
    const Workload wb = Workload::fromName(b, 0, cfg);
    Simulator sim;
    NpuCore core(sim, cfg, 2, preemption);
    OperatorScheduler::Options opts;
    opts.policy = policy;
    opts.preemption = preemption;
    OperatorScheduler sched(
        sim, core, {TenantSpec{&wa, 1.0}, TenantSpec{&wb, 1.0}},
        opts);
    return sched.run(requests, 2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv,
        "Ablation: preemption strategy and policy combinations");
    banner(opts, "Preemption design ablation",
           "§3.3 / Fig. 13 design choices");

    using PK = OperatorScheduler::PolicyKind;
    struct Combo
    {
        const char *name;
        PK policy;
        bool preemption;
        SaPreemptStrategy strategy;
    };
    const Combo combos[] = {
        {"RR, no preempt (V10-Base)", PK::RoundRobin, false,
         SaPreemptStrategy::V10Replay},
        {"Priority, no preempt (V10-Fair)", PK::Priority, false,
         SaPreemptStrategy::V10Replay},
        {"RR + preempt", PK::RoundRobin, true,
         SaPreemptStrategy::V10Replay},
        {"Priority + preempt (V10-Full)", PK::Priority, true,
         SaPreemptStrategy::V10Replay},
        {"Priority + preempt, naive drain", PK::Priority, true,
         SaPreemptStrategy::NaiveDrain},
    };

    TextTable table({"combo", "ctx switch", "ctx bytes", "SA util",
                     "overlap", "DNN2 lat (us)", "ovhd"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"combo", "switch_cycles", "ctx_bytes", "sa_util",
                    "overlap", "dnn2_latency_us", "overhead_frac"});

    for (const Combo &combo : combos) {
        NpuConfig cfg;
        cfg.saPreemptStrategy = combo.strategy;
        const RunStats stats =
            runCombo(cfg, combo.policy, combo.preemption, "BERT",
                     "DLRM", opts.quick ? 5 : opts.requests);
        const auto switch_cycles =
            static_cast<long long>(cfg.saContextSwitchCycles());
        if (opts.csv) {
            csv.row({combo.name, std::to_string(switch_cycles),
                     std::to_string(cfg.saContextBytes()),
                     formatDouble(stats.saUtil, 4),
                     formatDouble(stats.overlapBothFrac, 4),
                     formatDouble(stats.workloads[1].avgLatencyUs, 1),
                     formatDouble(stats.workloads[1].ctxOverheadFrac,
                                  5)});
        } else {
            table.addRow();
            table.cell(combo.name);
            table.cell(std::to_string(switch_cycles) + " cyc");
            table.cell(formatBytes(cfg.saContextBytes()));
            table.cellPct(stats.saUtil);
            table.cellPct(stats.overlapBothFrac);
            table.cell(stats.workloads[1].avgLatencyUs, 1);
            table.cellPct(stats.workloads[1].ctxOverheadFrac, 2);
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf(
            "\nReading (BERT+DLRM): the preemption module, not the "
            "policy, removes DLRM's starvation;\nV10's overlapped "
            "replay halves the switch cost and saves 25%% context "
            "storage vs the naive drain (Fig. 13).\n");
    }
    return 0;
}
