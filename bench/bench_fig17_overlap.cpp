/**
 * @file
 * Fig. 17: execution-time breakdown of the collocated pairs — the
 * fraction of time both an SA and a VU operator execute ("SA Op &
 * VU Op"), only SA operators, or only VU operators, per design.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/string_util.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fig. 17: SA/VU overlap breakdown");
    banner(opts, "Execution-time breakdown (overlap)", "Fig. 17");

    ExperimentRunner runner;
    const auto sets = runEvaluationPairs(runner, allSchedulerKinds(),
                                         opts.requests, opts.jobs);
    maybeWriteStatsJson(opts, "bench_fig17_overlap", runner, sets);

    TextTable table({"pair", "design", "SA&VU", "SA only", "VU only",
                     "idle"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"pair", "design", "both", "sa_only", "vu_only",
                    "idle"});

    std::vector<double> full_overlap;
    for (const PairRunSet &set : sets) {
        for (SchedulerKind kind : allSchedulerKinds()) {
            const RunStats &s = set.byKind.at(kind);
            if (kind == SchedulerKind::V10Full)
                full_overlap.push_back(s.overlapBothFrac);
            if (opts.csv) {
                csv.row({pairLabel(set), schedulerKindName(kind),
                         formatDouble(s.overlapBothFrac, 4),
                         formatDouble(s.saOnlyFrac, 4),
                         formatDouble(s.vuOnlyFrac, 4),
                         formatDouble(s.idleFrac, 4)});
            } else {
                table.addRow();
                table.cell(pairLabel(set));
                table.cell(schedulerKindName(kind));
                table.cellPct(s.overlapBothFrac);
                table.cellPct(s.saOnlyFrac);
                table.cellPct(s.vuOnlyFrac);
                table.cellPct(s.idleFrac);
            }
        }
    }
    if (!opts.csv) {
        table.print();
        double mx = 0.0;
        double sum = 0.0;
        for (double v : full_overlap) {
            mx = std::max(mx, v);
            sum += v;
        }
        std::printf("\nV10-Full overlapped execution: max %.0f%%, "
                    "mean %.0f%% (paper: up to 81%%, 63%% avg).\n",
                    100.0 * mx, 100.0 * sum / full_overlap.size());
    }
    return 0;
}
