/**
 * @file
 * Open-loop SLO study (extension beyond the paper's closed-loop
 * §5.1 methodology): two collocated services receive Poisson request
 * streams at a fraction of their dedicated-core capacity; p95
 * latency (including queueing) is plotted against offered load.
 * V10-Full sustains a much higher combined load before the latency
 * knee than PMT because it serves both tenants concurrently.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Open-loop latency vs offered load (extension)");
    banner(opts, "Open-loop p95 latency vs offered load",
           "extension of §5.4 (queueing included)");

    ExperimentRunner runner;
    const std::string a = "BERT";
    const std::string b = "NCF";
    const double cap_a = runner.singleTenantRps(a, 0);
    const double cap_b = runner.singleTenantRps(b, 0);

    if (!opts.csv)
        std::printf("dedicated-core capacity: %s %.1f req/s, %s "
                    "%.1f req/s; load = fraction of capacity "
                    "offered to EACH service simultaneously\n\n",
                    a.c_str(), cap_a, b.c_str(), cap_b);

    const std::vector<double> loads = {0.2, 0.35, 0.5, 0.65, 0.8};
    TextTable table({"load", "PMT p95 A", "PMT p95 B", "Full p95 A",
                     "Full p95 B", "PMT drops?", "Full drops?"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"load", "pmt_p95_a_us", "pmt_p95_b_us",
                    "full_p95_a_us", "full_p95_b_us"});

    const std::uint64_t requests = opts.quick ? 10 : 30;
    for (double load : loads) {
        std::vector<TenantRequest> tenants = {
            TenantRequest{a, 0, 1.0, load * cap_a},
            TenantRequest{b, 0, 1.0, load * cap_b},
        };
        const RunStats pmt = runner.run(SchedulerKind::Pmt, tenants,
                                        requests, 2);
        const RunStats full = runner.run(SchedulerKind::V10Full,
                                         tenants, requests, 2);
        // "Saturated" when p95 exceeds 5x the unloaded service time.
        auto saturated = [&](const RunStats &s, int t,
                             double cap) {
            return s.workloads[t].p95LatencyUs >
                   5.0e6 / cap;
        };
        if (opts.csv) {
            csv.row({formatDouble(load, 2),
                     formatDouble(pmt.workloads[0].p95LatencyUs, 0),
                     formatDouble(pmt.workloads[1].p95LatencyUs, 0),
                     formatDouble(full.workloads[0].p95LatencyUs, 0),
                     formatDouble(full.workloads[1].p95LatencyUs,
                                  0)});
        } else {
            table.addRow();
            table.cellPct(load, 0);
            table.cell(pmt.workloads[0].p95LatencyUs, 0);
            table.cell(pmt.workloads[1].p95LatencyUs, 0);
            table.cell(full.workloads[0].p95LatencyUs, 0);
            table.cell(full.workloads[1].p95LatencyUs, 0);
            table.cell(saturated(pmt, 0, cap_a) ||
                               saturated(pmt, 1, cap_b)
                           ? "saturating"
                           : "stable");
            table.cell(saturated(full, 0, cap_a) ||
                               saturated(full, 1, cap_b)
                           ? "saturating"
                           : "stable");
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\nPMT's latency knee appears near ~50%% "
                    "per-service load (it time-slices the core); "
                    "V10-Full stays stable well beyond it.\n");
    }
    return 0;
}
