#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "common/json.h"
#include "common/log.h"
#include "common/parallel_executor.h"
#include "metrics/run_report.h"
#include "common/string_util.h"
#include "v10/sweep.h"
#include "workload/model_zoo.h"

namespace v10::bench {

BenchOptions
BenchOptions::parse(int argc, char **argv, const std::string &what)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--csv") == 0) {
            opts.csv = true;
        } else if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
            opts.requests = 8;
        } else if (std::strcmp(arg, "--requests") == 0 &&
                   i + 1 < argc) {
            opts.requests =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
            opts.jobs = ParallelExecutor::parseJobs(argv[++i]);
        } else if (std::strcmp(arg, "--stats-json") == 0 &&
                   i + 1 < argc) {
            opts.statsJson = argv[++i];
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::printf("%s\n\nOptions:\n"
                        "  --csv             emit CSV rows\n"
                        "  --requests <n>    measured requests per "
                        "run (default 25)\n"
                        "  --quick           fast mode (8 requests)\n"
                        "  --jobs <n|auto>   threads for independent "
                        "simulations (default 1;\n"
                        "                    results are identical "
                        "for any value)\n"
                        "  --stats-json <f>  also dump results as "
                        "structured JSON\n",
                        what.c_str());
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg);
            std::exit(2);
        }
    }
    return opts;
}

void
banner(const BenchOptions &opts, const std::string &title,
       const std::string &paperRef)
{
    if (opts.csv)
        return;
    std::printf("== %s ==\n(reproduces %s of \"V10: "
                "Hardware-Assisted NPU Multi-tenancy\", ISCA'23)\n\n",
                title.c_str(), paperRef.c_str());
}

std::vector<PairRunSet>
runEvaluationPairs(ExperimentRunner &runner,
                   const std::vector<SchedulerKind> &kinds,
                   std::uint64_t requests, std::size_t jobs)
{
    SweepRunner sweep(runner, jobs);
    std::vector<RunStats> grid =
        sweep.runPairs(evaluationPairs(), kinds, requests);

    std::vector<PairRunSet> out;
    std::size_t cell = 0;
    for (const auto &[a, b] : evaluationPairs()) {
        PairRunSet set;
        set.a = a;
        set.b = b;
        for (SchedulerKind kind : kinds)
            set.byKind.emplace(kind, std::move(grid[cell++]));
        out.push_back(std::move(set));
    }
    return out;
}

std::string
pairLabel(const PairRunSet &set)
{
    return set.a + "+" + set.b;
}

void
maybeWriteStatsJson(const BenchOptions &opts, const std::string &tool,
                    const ExperimentRunner &runner,
                    const std::vector<PairRunSet> &sets)
{
    if (opts.statsJson.empty())
        return;
    std::ofstream os(opts.statsJson);
    if (!os)
        fatal(tool, ": cannot open stats JSON path '", opts.statsJson,
              "'");
    JsonWriter w(os);
    w.beginObject();
    w.key("manifest");
    w.beginObject();
    w.kv("tool", tool);
    w.kv("config", runner.config().summary());
    w.kv("requests", opts.requests);
    w.key("schedulers");
    w.beginArray();
    if (!sets.empty())
        for (const auto &[kind, stats] : sets.front().byKind)
            w.value(schedulerKindName(kind));
    w.endArray();
    w.endObject();
    w.key("grid");
    w.beginObject();
    for (const PairRunSet &set : sets) {
        w.key(pairLabel(set));
        w.beginObject();
        for (const auto &[kind, stats] : set.byKind) {
            w.key(schedulerKindName(kind));
            writeRunStatsJson(w, stats);
        }
        w.endObject();
    }
    w.endObject();
    w.endObject();
    os << '\n';
}

void
profileSweepBench(const BenchOptions &opts, const std::string &title,
                  const std::string &paperRef,
                  double (*metric)(const SingleProfile &),
                  bool asPercent)
{
    banner(opts, title, paperRef);
    const NpuConfig config;
    const auto profiles = profileAllModels(
        config, opts.quick ? 4 : opts.requests, opts.jobs);

    std::vector<std::string> headers = {"model"};
    for (int b : standardBatchSweep())
        headers.push_back("b" + std::to_string(b));
    TextTable table(headers);
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header(headers);

    std::string current;
    std::vector<std::string> row;
    auto flush = [&] {
        if (current.empty())
            return;
        if (opts.csv) {
            csv.row(row);
        } else {
            table.addRow();
            for (const auto &cell : row)
                table.cell(cell);
        }
    };
    for (const SingleProfile &p : profiles) {
        if (p.model != current) {
            flush();
            current = p.model;
            row = {current};
        }
        if (p.oom) {
            row.push_back("-");
        } else {
            const double v = metric(p);
            row.push_back(asPercent ? formatPct(v)
                                    : formatDouble(v, 3));
        }
    }
    flush();
    if (!opts.csv)
        table.print();
}

} // namespace v10::bench
