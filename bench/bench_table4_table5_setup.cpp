/**
 * @file
 * Tables 4 and 5: the evaluation setup — the eleven ML models with
 * their domains and reference batches, and the NPU simulator
 * configuration.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "workload/model_zoo.h"
#include "workload/workload.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Tables 4 & 5: evaluation setup");
    banner(opts, "Evaluation setup", "Tables 4 and 5");

    const NpuConfig cfg;
    if (!opts.csv) {
        std::printf("Table 5 — NPU simulator configuration:\n");
        std::printf("  Systolic array (SA) dimension   %ux%u\n",
                    cfg.saDim, cfg.saDim);
        std::printf("  Vector unit (VU) dimension      8x128x%u "
                    "FP32 operations/cycle\n",
                    cfg.vuOpsPerLane);
        std::printf("  Frequency                       %.0f MHz\n",
                    cfg.freqGHz * 1e3);
        std::printf("  Vector Memory                   %s\n",
                    formatBytes(cfg.vmemBytes).c_str());
        std::printf("  HBM Memory Size & Bandwidth     %s, %.0f "
                    "GB/s\n",
                    formatBytes(cfg.hbmBytes).c_str(), cfg.hbmGBps);
        std::printf("  Scheduler Time Slice            %llu cycles "
                    "(~%.0f us)\n\n",
                    static_cast<unsigned long long>(cfg.timeSlice),
                    cfg.cyclesToUs(cfg.timeSlice));
        std::printf("Table 4 — ML models:\n");
    }

    TextTable table({"Name", "Abbrev.", "Description", "Batch",
                     "ops/request", "request (ms)"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"name", "abbrev", "domain", "batch",
                    "ops_per_request", "request_ms"});

    for (const ModelProfile &m : modelZoo()) {
        const Workload wl(m, m.refBatch, cfg);
        const double ms =
            cfg.cyclesToUs(wl.computeCycles()) / 1000.0;
        if (opts.csv) {
            csv.row({m.name, m.abbrev, m.domain,
                     std::to_string(m.refBatch),
                     std::to_string(wl.trace().ops.size()),
                     formatDouble(ms, 2)});
        } else {
            table.addRow();
            table.cell(m.name);
            table.cell(m.abbrev);
            table.cell(m.domain);
            table.cell(static_cast<long long>(m.refBatch));
            table.cell(
                static_cast<long long>(wl.trace().ops.size()));
            table.cell(ms, 2);
        }
    }
    if (!opts.csv)
        table.print();
    return 0;
}
