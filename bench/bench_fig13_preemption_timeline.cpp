/**
 * @file
 * Fig. 13: the SA operator preemption and restoration procedure —
 * the phase timeline ("1: preemption invoked" through "6: resume
 * normal execution") with cycle counts for the paper's example
 * 128x128 array (and the 3x3 didactic array), for both context
 * strategies.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "npu/sa_preemption.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fig. 13: SA preemption/restoration procedure");
    banner(opts, "SA context-switch timeline", "Fig. 13");

    TextTable table({"SA dim", "strategy", "exit", "restore",
                     "overlapped", "switch total", "context"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"dim", "strategy", "exit_cycles",
                    "restore_cycles", "overlap_cycles",
                    "switch_cycles", "context_bytes"});

    for (std::uint32_t dim : {8u, 128u, 256u}) {
        for (auto [strategy, name] :
             {std::pair{SaPreemptStrategy::V10Replay, "V10 replay"},
              std::pair{SaPreemptStrategy::NaiveDrain,
                        "naive drain"}}) {
            const SaPreemptCost c = saPreemptCost(dim, strategy);
            if (opts.csv) {
                csv.row({std::to_string(dim), name,
                         std::to_string(c.exitCycles),
                         std::to_string(c.restoreCycles),
                         std::to_string(c.overlappedCycles),
                         std::to_string(c.switchCycles()),
                         std::to_string(c.contextBytes)});
            } else {
                table.addRow();
                table.cell(std::to_string(dim) + "x" +
                           std::to_string(dim));
                table.cell(name);
                table.cell(static_cast<long long>(c.exitCycles));
                table.cell(static_cast<long long>(c.restoreCycles));
                table.cell(
                    static_cast<long long>(c.overlappedCycles));
                table.cell(std::to_string(c.switchCycles()) +
                           " cyc");
                table.cell(formatBytes(c.contextBytes));
            }
        }
    }
    if (!opts.csv) {
        table.print();
        const SaPreemptCost c =
            saPreemptCost(128, SaPreemptStrategy::V10Replay);
        std::printf(
            "\nFig. 13 phases for the 128x128 array (V10 replay):\n"
            "  (1) preemption invoked; execution continues — the SA "
            "still pops valid outputs\n"
            "  (2) further inputs are saved to vector memory as "
            "they are pushed (no wasted cycles)\n"
            "  (3) all partial sums depending on earlier inputs "
            "popped; execution pauses\n"
            "  (4) weight save of the preempted operator (%llu "
            "cycles) overlaps the incoming weight load\n"
            "  (5) preempted operator fully exited\n"
            "  (6) incoming operator replays its saved inputs "
            "(%llu cycles) and resumes\n"
            "  => one context switch occupies the SA for %llu "
            "cycles and stores %s per tenant\n"
            "     (paper: 384 cycles, 96 KB — 25%% less than the "
            "naive drain).\n",
            static_cast<unsigned long long>(c.exitCycles),
            static_cast<unsigned long long>(c.restoreCycles -
                                            c.overlappedCycles),
            static_cast<unsigned long long>(c.switchCycles()),
            formatBytes(c.contextBytes).c_str());
    }
    return 0;
}
