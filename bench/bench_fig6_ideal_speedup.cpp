/**
 * @file
 * Fig. 6: theoretical maximum speedup of a single DNN workload under
 * perfect intra-workload operator parallelism — total operator time
 * divided by the dependency-DAG critical path. The paper finds this
 * marginal (6.7% on average), motivating cross-workload overlap.
 */

#include "bench_common.h"

namespace {

double
metric(const v10::SingleProfile &p)
{
    return p.idealSpeedup;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = v10::bench::BenchOptions::parse(
        argc, argv,
        "Fig. 6: ideal intra-workload operator-parallel speedup");
    v10::bench::profileSweepBench(
        opts, "Ideal speedup (DAG critical-path bound)", "Fig. 6",
        metric, false);
    return 0;
}
