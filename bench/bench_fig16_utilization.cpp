/**
 * @file
 * Fig. 16: SA (a), VU (b), and HBM bandwidth (c) utilization of the
 * eleven collocated pairs under PMT and the three V10 variants.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/string_util.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv,
        "Fig. 16: hardware utilization of collocated pairs");
    banner(opts, "SA / VU / HBM utilization by design", "Fig. 16");

    ExperimentRunner runner;
    const auto sets = runEvaluationPairs(runner, allSchedulerKinds(),
                                         opts.requests, opts.jobs);
    maybeWriteStatsJson(opts, "bench_fig16_utilization", runner, sets);

    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"pair", "design", "sa_util", "vu_util",
                    "hbm_util"});

    const char *sections[] = {"(a) SA utilization",
                              "(b) VU utilization",
                              "(c) HBM bandwidth utilization"};
    for (int section = 0; section < 3; ++section) {
        TextTable table({"pair", "PMT", "V10-Base", "V10-Fair",
                         "V10-Full"});
        std::vector<double> pmt_vals;
        std::vector<double> full_vals;
        for (const PairRunSet &set : sets) {
            table.addRow();
            table.cell(pairLabel(set));
            for (SchedulerKind kind : allSchedulerKinds()) {
                const RunStats &s = set.byKind.at(kind);
                const double v = section == 0   ? s.saUtil
                                 : section == 1 ? s.vuUtil
                                                : s.hbmUtil;
                table.cellPct(v);
                if (kind == SchedulerKind::Pmt)
                    pmt_vals.push_back(v);
                if (kind == SchedulerKind::V10Full)
                    full_vals.push_back(v);
            }
        }
        if (!opts.csv) {
            std::printf("%s\n", sections[section]);
            table.print();
            std::vector<double> gains;
            for (std::size_t i = 0; i < pmt_vals.size(); ++i) {
                if (pmt_vals[i] > 0.0)
                    gains.push_back(full_vals[i] / pmt_vals[i]);
            }
            std::printf("geomean V10-Full / PMT: %.2fx\n\n",
                        geomean(gains));
        }
    }
    if (opts.csv) {
        for (const PairRunSet &set : sets) {
            for (SchedulerKind kind : allSchedulerKinds()) {
                const RunStats &s = set.byKind.at(kind);
                csv.row({pairLabel(set), schedulerKindName(kind),
                         formatDouble(s.saUtil, 4),
                         formatDouble(s.vuUtil, 4),
                         formatDouble(s.hbmUtil, 4)});
            }
        }
    }
    return 0;
}
