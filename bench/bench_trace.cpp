/**
 * @file
 * Microbenchmarks of the observability layer: LogHistogram recording
 * and quantile queries vs the sort-based SampleSet it replaced, span
 * emission/rendering throughput, and the tracing overhead of an
 * end-to-end traced serve run vs an untraced one (the ISSUE bound:
 * tracing off must cost <= 3%; here the traced/untraced pair makes
 * the delta directly measurable). Not wired into the CI perf gate —
 * run ad hoc, optionally with --perf-json=<path>.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "perf_json_main.h"
#include "serve/cluster_manager.h"
#include "trace/request_tracer.h"
#include "trace/slo_monitor.h"
#include "trace/trace_context.h"

namespace {

using namespace v10;

/** 100k adds + the report quantiles, HDR-style histogram. */
void
BM_LogHistogramAddQuantiles(benchmark::State &state)
{
    Rng rng(7);
    std::uint64_t items = 0;
    for (auto _ : state) {
        LogHistogram h;
        for (int i = 0; i < 100000; ++i)
            h.add(rng.exponential(250.0));
        double sink = 0.0;
        for (double p : {50.0, 99.0, 99.9})
            sink += h.percentile(p);
        benchmark::DoNotOptimize(sink);
        items += 100000;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_LogHistogramAddQuantiles);

/** The sort-based baseline the histogram replaced. */
void
BM_SampleSetAddQuantiles(benchmark::State &state)
{
    Rng rng(7);
    std::uint64_t items = 0;
    for (auto _ : state) {
        SampleSet s;
        for (int i = 0; i < 100000; ++i)
            s.add(rng.exponential(250.0));
        double sink = 0.0;
        for (double p : {50.0, 99.0, 99.9})
            sink += s.percentile(p);
        benchmark::DoNotOptimize(sink);
        items += 100000;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_SampleSetAddQuantiles);

/** Trace-ID derivation + sampling decision per request. */
void
BM_TraceIdDerive(benchmark::State &state)
{
    const TraceSampler sampler{8};
    std::uint64_t kept = 0;
    std::uint64_t items = 0;
    for (auto _ : state) {
        for (std::uint64_t seq = 0; seq < 100000; ++seq)
            kept += sampler.sampled(traceIdFor(11, 3, seq)) ? 1 : 0;
        items += 100000;
    }
    benchmark::DoNotOptimize(kept);
    state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_TraceIdDerive);

/** Span record + JSONL render, 10k spans per iteration. */
void
BM_SpanRecordRender(benchmark::State &state)
{
    std::uint64_t items = 0;
    for (auto _ : state) {
        RequestTracer tracer;
        for (std::uint64_t i = 0; i < 10000; ++i) {
            RequestSpan s;
            s.ctx = TraceContext::make(1, i % 32, i);
            s.tenant = "BERT#0";
            s.arrivalUs = static_cast<double>(i);
            s.startUs = s.arrivalUs + 3.0;
            s.endUs = s.startUs + 150.0;
            s.soloUs = 140.0;
            tracer.add(std::move(s));
        }
        std::ostringstream os;
        tracer.writeJsonl(os);
        benchmark::DoNotOptimize(os.str().size());
        items += 10000;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_SpanRecordRender);

/** SLO-monitor record + burn query, 100k completions. */
void
BM_SloMonitorRecord(benchmark::State &state)
{
    std::uint64_t items = 0;
    for (auto _ : state) {
        SloMonitor monitor(32, 2.0);
        for (int i = 0; i < 100000; ++i)
            monitor.record(static_cast<std::size_t>(i) % 32,
                           2.0 * static_cast<double>(i) / 100000.0,
                           i % 50 == 0);
        double sink = 0.0;
        for (std::size_t t = 0; t < 32; ++t)
            sink += monitor.status(t).longBurn;
        benchmark::DoNotOptimize(sink);
        items += 100000;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_SloMonitorRecord);

/** A mid-size serving scenario, optionally with a tracer attached. */
ClusterManager
traceScenario(bool traced, RequestTracer *tracer)
{
    ServeConfig cfg;
    cfg.numCores = 8;
    cfg.durationSec = 1.0;
    cfg.seed = 11;
    ClusterManager manager(cfg);
    for (int i = 0; i < 32; ++i) {
        ServeTenant t;
        t.model = "NCF";
        t.name = "t" + std::to_string(i);
        t.arrival.rps = 1200.0;
        t.serviceUsOverride = 150.0;
        t.slo.latencyTargetUs = 3000.0;
        if (!manager.addTenant(std::move(t)))
            panic("bench_trace: addTenant failed");
    }
    if (traced)
        manager.setRequestTracer(tracer);
    return manager;
}

/** End-to-end serve run without tracing (the overhead baseline). */
void
BM_ServeUntraced(benchmark::State &state)
{
    std::uint64_t completed = 0;
    for (auto _ : state) {
        ClusterManager manager = traceScenario(false, nullptr);
        auto report = manager.run();
        if (!report.ok())
            state.SkipWithError("run failed");
        else
            completed += report.value().completed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}
BENCHMARK(BM_ServeUntraced)->Unit(benchmark::kMillisecond);

/** The same run with full (1/1) span tracing attached. */
void
BM_ServeTraced(benchmark::State &state)
{
    std::uint64_t completed = 0;
    for (auto _ : state) {
        RequestTracer tracer;
        ClusterManager manager = traceScenario(true, &tracer);
        auto report = manager.run();
        if (!report.ok())
            state.SkipWithError("run failed");
        else
            completed += report.value().completed;
        benchmark::DoNotOptimize(tracer.spanCount());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}
BENCHMARK(BM_ServeTraced)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return v10::bench::perfJsonMain(argc, argv);
}
