/**
 * @file
 * Fig. 18: overall system throughput (sum of normalized per-tenant
 * progress, STP) of the collocated pairs, normalized to PMT.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/string_util.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fig. 18: system throughput vs PMT");
    banner(opts, "Overall throughput (normalized to PMT)", "Fig. 18");

    ExperimentRunner runner;
    const auto sets = runEvaluationPairs(runner, allSchedulerKinds(),
                                         opts.requests, opts.jobs);
    maybeWriteStatsJson(opts, "bench_fig18_throughput", runner, sets);

    TextTable table({"pair", "PMT", "V10-Base", "V10-Fair",
                     "V10-Full", "Full/PMT"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"pair", "pmt_stp", "base_stp", "fair_stp",
                    "full_stp", "full_vs_pmt"});

    std::vector<double> improvements;
    for (const PairRunSet &set : sets) {
        const double pmt = set.byKind.at(SchedulerKind::Pmt).stp();
        const double base =
            set.byKind.at(SchedulerKind::V10Base).stp();
        const double fair =
            set.byKind.at(SchedulerKind::V10Fair).stp();
        const double full =
            set.byKind.at(SchedulerKind::V10Full).stp();
        const double ratio = pmt > 0.0 ? full / pmt : 0.0;
        improvements.push_back(ratio);
        if (opts.csv) {
            csv.row({pairLabel(set), formatDouble(pmt, 4),
                     formatDouble(base, 4), formatDouble(fair, 4),
                     formatDouble(full, 4), formatDouble(ratio, 4)});
        } else {
            table.addRow();
            table.cell(pairLabel(set));
            table.cell(pmt, 3);
            table.cell(base, 3);
            table.cell(fair, 3);
            table.cell(full, 3);
            table.cell(formatDouble(ratio, 2) + "x");
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\ngeomean V10-Full throughput vs PMT: %.2fx "
                    "(paper: 1.57x average).\n",
                    geomean(improvements));
    }
    return 0;
}
