/**
 * @file
 * Shared main() for the google-benchmark microbench binaries, adding
 * a `--perf-json=<path>` flag: besides the normal console output, the
 * run writes a machine-readable summary — per-bench wall-clock,
 * events/sec where the bench reports items, and the process peak RSS
 * — for the CI perf-smoke job to diff against the committed baseline
 * (see docs/PERFORMANCE.md).
 */

#ifndef V10_BENCH_PERF_JSON_MAIN_H
#define V10_BENCH_PERF_JSON_MAIN_H

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/log.h"

namespace v10::bench {

/** One reported benchmark run (non-aggregate iterations only). */
struct PerfRow
{
    std::string name;
    double realTimeSec = 0.0;    ///< wall-clock per iteration
    double eventsPerSec = 0.0;   ///< 0 when the bench reports none
    std::uint64_t iterations = 0;
    /** Process peak RSS observed right after this bench (KiB);
     * monotone across rows, so growth localizes a memory hog. */
    std::uint64_t peakRssKib = 0;
};

/** Peak resident set size of this process, in KiB. */
inline std::uint64_t
peakRssKib()
{
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // ru_maxrss is KiB on Linux.
    return static_cast<std::uint64_t>(usage.ru_maxrss);
}

/** Console reporter that also collects rows for the JSON dump. */
class PerfCollectingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &report) override
    {
        for (const Run &run : report) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred)
                continue;
            PerfRow row;
            row.name = run.benchmark_name();
            row.iterations =
                static_cast<std::uint64_t>(run.iterations);
            row.realTimeSec =
                run.iterations > 0
                    ? run.real_accumulated_time /
                          static_cast<double>(run.iterations)
                    : run.real_accumulated_time;
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                row.eventsPerSec = it->second;
            row.peakRssKib = peakRssKib();
            rows.push_back(std::move(row));
        }
        ConsoleReporter::ReportRuns(report);
    }

    std::vector<PerfRow> rows;
};

/** Write the collected rows as the BENCH_core.json schema. */
inline bool
writePerfJson(const std::string &path,
              const std::vector<PerfRow> &rows)
{
    std::ofstream out(path);
    if (!out) {
        warn("perf-json: cannot open '", path, "' for writing");
        return false;
    }
    JsonWriter json(out);
    json.beginObject();
    json.kv("schema", "v10-bench-perf-v1");
    json.key("benches");
    json.beginArray();
    for (const PerfRow &row : rows) {
        json.beginObject();
        json.kv("name", row.name);
        json.kv("real_time_sec", row.realTimeSec);
        json.kv("events_per_sec", row.eventsPerSec);
        json.kv("iterations", row.iterations);
        json.kv("peak_rss_kib", row.peakRssKib);
        json.endObject();
    }
    json.endArray();
    json.kv("peak_rss_kib", peakRssKib());
    json.endObject();
    out << "\n";
    return out.good();
}

/**
 * Drop-in replacement for BENCHMARK_MAIN()'s body. Strips
 * --perf-json=<path> before handing the rest to google-benchmark.
 */
inline int
perfJsonMain(int argc, char **argv)
{
    std::string json_path;
    std::vector<char *> args;
    const std::string prefix = "--perf-json=";
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            json_path = arg.substr(prefix.size());
        else
            args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               args.data()))
        return 1;
    PerfCollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (!json_path.empty() &&
        !writePerfJson(json_path, reporter.rows))
        return 1;
    return 0;
}

} // namespace v10::bench

#endif // V10_BENCH_PERF_JSON_MAIN_H
