/**
 * @file
 * Fig. 4: MXU (systolic array) temporal utilization of each DNN
 * inference workload across batch sizes.
 */

#include "bench_common.h"

namespace {

double
metric(const v10::SingleProfile &p)
{
    return p.mxuUtil;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = v10::bench::BenchOptions::parse(
        argc, argv, "Fig. 4: MXU temporal utilization vs batch size");
    v10::bench::profileSweepBench(
        opts, "MXU temporal utilization", "Fig. 4", metric, true);
    return 0;
}
