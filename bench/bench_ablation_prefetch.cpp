/**
 * @file
 * Ablation of the DMA operator-prefetch window (not a paper figure;
 * quantifies the double-buffering assumption behind §3.2's Ready
 * bit): single-tenant idle time and collocated throughput across
 * prefetch depths.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "workload/model_zoo.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Ablation: DMA operator-prefetch depth");
    banner(opts, "Prefetch-window ablation",
           "§3.2 Ready-bit / double buffering");

    const std::vector<std::uint32_t> depths = {1, 2, 3, 4, 8, 16};

    TextTable table({"depth", "BERT idle", "RNRS idle",
                     "BERT+NCF STP ratio", "BERT+DLRM STP ratio"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"depth", "bert_idle", "rnrs_idle",
                    "bert_ncf_ratio", "bert_dlrm_ratio"});

    for (std::uint32_t depth : depths) {
        NpuConfig cfg;
        cfg.dmaPrefetchDepth = depth;
        ExperimentRunner runner(cfg);
        const double bert_idle =
            runner.singleTenant("BERT", 0).idleFrac;
        const double rnrs_idle =
            runner.singleTenant("RNRS", 0).idleFrac;
        auto ratio = [&](const char *a, const char *b) {
            const RunStats pmt = runner.runPair(
                SchedulerKind::Pmt, a, b, 1.0, 1.0, opts.requests);
            const RunStats full =
                runner.runPair(SchedulerKind::V10Full, a, b, 1.0,
                               1.0, opts.requests);
            return pmt.stp() > 0.0 ? full.stp() / pmt.stp() : 0.0;
        };
        const double ncf_ratio = ratio("BERT", "NCF");
        const double dlrm_ratio = ratio("BERT", "DLRM");
        if (opts.csv) {
            csv.row({std::to_string(depth),
                     formatDouble(bert_idle, 4),
                     formatDouble(rnrs_idle, 4),
                     formatDouble(ncf_ratio, 3),
                     formatDouble(dlrm_ratio, 3)});
        } else {
            table.addRow();
            table.cell(static_cast<long long>(depth));
            table.cellPct(bert_idle);
            table.cellPct(rnrs_idle);
            table.cell(formatDouble(ncf_ratio, 2) + "x");
            table.cell(formatDouble(dlrm_ratio, 2) + "x");
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf(
            "\nShallow windows leave single-tenant DMA stalls that "
            "inflate V10's apparent gain; depth >= 4 removes the "
            "artifact. The default is 8.\n");
    }
    return 0;
}
