/**
 * @file
 * Fig. 15: the clustering of the 11 ML models across batch sizes —
 * each point is one (model, batch) workload, placed by its
 * standardized features projected onto the first two principal
 * components and labeled with its K-Means cluster (k = 5, as in the
 * paper's figure).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "collocate/kmeans.h"
#include "collocate/pca.h"
#include "collocate/standardizer.h"
#include "common/string_util.h"
#include "v10/features.h"
#include "workload/model_zoo.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fig. 15: workload clustering scatter");
    banner(opts, "Clustering of (model, batch) workloads", "Fig. 15");

    const NpuConfig config;
    std::vector<WorkloadFeatures> points;
    for (const ModelProfile &m : modelZoo()) {
        for (int batch : standardBatchSweep()) {
            const SingleProfile p = profileSingle(
                config, m, batch, opts.quick ? 3 : 6);
            if (!p.oom)
                points.push_back(extractFeatures(p));
        }
    }

    std::vector<std::vector<double>> rows;
    for (const auto &f : points)
        rows.push_back(f.values);
    const Matrix raw = Matrix::fromRows(rows);
    const Standardizer standardizer(raw);
    const Matrix standardized = standardizer.transform(raw);
    const Pca pca(standardized, 2);
    const Matrix projected = pca.transform(standardized);
    KMeans km(5, 11);
    const KMeansResult fit = km.fit(projected);

    TextTable table({"model", "batch", "PC1", "PC2", "cluster",
                     "SA util", "HBM util"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"model", "batch", "pc1", "pc2", "cluster",
                    "sa_util", "hbm_util"});

    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &f = points[i];
        if (opts.csv) {
            csv.row({f.model, std::to_string(f.batch),
                     formatDouble(projected.at(i, 0), 4),
                     formatDouble(projected.at(i, 1), 4),
                     std::to_string(fit.labels[i]),
                     formatDouble(f.values[0], 4),
                     formatDouble(f.values[2], 4)});
        } else {
            table.addRow();
            table.cell(f.model);
            table.cell(static_cast<long long>(f.batch));
            table.cell(projected.at(i, 0), 3);
            table.cell(projected.at(i, 1), 3);
            table.cell(static_cast<long long>(fit.labels[i]));
            table.cellPct(f.values[0]);
            table.cellPct(f.values[2]);
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\ncluster membership (models, collapsed over "
                    "batches):\n");
        for (std::size_t c = 0; c < 5; ++c) {
            std::printf("  cluster %zu:", c);
            std::vector<std::string> seen;
            for (std::size_t i = 0; i < points.size(); ++i) {
                if (fit.labels[i] != c)
                    continue;
                if (std::find(seen.begin(), seen.end(),
                              points[i].model) == seen.end()) {
                    seen.push_back(points[i].model);
                    std::printf(" %s", points[i].model.c_str());
                }
            }
            std::printf("\n");
        }
        std::printf("\nPCA keeps %.0f%% of the feature variance in "
                    "two components; batch variants of a model stay "
                    "in or near one cluster (Fig. 15's structure).\n",
                    100.0 * pca.explainedVariance());
    }
    return 0;
}
