/**
 * @file
 * Microbenchmarks of the fleet-scale serving layer: arrival-stream
 * generation, the stream merge, and end-to-end ClusterManager runs
 * at the 100-tenant / 100k-request scale the acceptance scenario
 * uses. Run with --perf-json=<path> to emit the machine-readable
 * summary the CI perf-smoke job diffs against
 * bench/baselines/BENCH_serving.json.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "perf_json_main.h"
#include "serve/arrival.h"
#include "serve/cluster_manager.h"

namespace {

using namespace v10;

/** Generate one 100k-arrival Poisson stream. */
void
BM_ArrivalPoisson100k(benchmark::State &state)
{
    ArrivalSpec spec;
    spec.rps = 100000.0;
    std::uint64_t arrivals = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        ArrivalProcess process(spec, seed++);
        arrivals += process.generate(1.0).size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(arrivals));
}
BENCHMARK(BM_ArrivalPoisson100k);

/** Thinning pays per candidate: the diurnal generator at 100k. */
void
BM_ArrivalDiurnal100k(benchmark::State &state)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Diurnal;
    spec.rps = 100000.0;
    spec.amplitude = 0.7;
    spec.periodSec = 0.1;
    std::uint64_t arrivals = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        ArrivalProcess process(spec, seed++);
        arrivals += process.generate(1.0).size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(arrivals));
}
BENCHMARK(BM_ArrivalDiurnal100k);

/** Merge 100 tenant streams (~100k events) into one feed. */
void
BM_MergeStreams100Tenants(benchmark::State &state)
{
    std::vector<std::vector<double>> streams;
    ArrivalSpec spec;
    spec.rps = 1000.0;
    for (std::uint64_t t = 0; t < 100; ++t) {
        ArrivalProcess process(spec, Rng::deriveStream(5, t));
        streams.push_back(process.generate(1.0));
    }
    std::uint64_t events = 0;
    for (auto _ : state)
        events += mergeArrivalStreams(streams).size();
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MergeStreams100Tenants);

/** The acceptance scenario: 100 tenants, ~100k requests, serial
 * vs fanned across the executor. */
void
serve100k(benchmark::State &state, std::size_t jobs)
{
    std::uint64_t completed = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        ServeConfig cfg;
        cfg.numCores = 16;
        cfg.durationSec = 1.0;
        cfg.seed = seed++;
        cfg.queueCapacity = 128;
        cfg.jobs = jobs;
        ClusterManager manager(cfg);
        for (int i = 0; i < 100; ++i) {
            ServeTenant t;
            t.model = "BERT";
            t.name = "t" + std::to_string(i);
            t.arrival.rps = 1000.0;
            t.serviceUsOverride = 140.0; // rho ~ 0.875 per core
            if (!manager.addTenant(std::move(t)))
                state.SkipWithError("addTenant failed");
        }
        auto report = manager.run();
        if (!report.ok())
            state.SkipWithError("run failed");
        else
            completed += report.value().completed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}

void
BM_Serve100kSerial(benchmark::State &state)
{
    serve100k(state, 1);
}
BENCHMARK(BM_Serve100kSerial)->Unit(benchmark::kMillisecond);

void
BM_Serve100kJobs4(benchmark::State &state)
{
    serve100k(state, 4);
}
BENCHMARK(BM_Serve100kJobs4)->Unit(benchmark::kMillisecond);

/** Bursty traffic stresses the queue churn worst. */
void
BM_ServeBursty(benchmark::State &state)
{
    std::uint64_t completed = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        ServeConfig cfg;
        cfg.numCores = 8;
        cfg.durationSec = 2.0;
        cfg.seed = seed++;
        cfg.queueCapacity = 64;
        ClusterManager manager(cfg);
        for (int i = 0; i < 32; ++i) {
            ServeTenant t;
            t.model = "NCF";
            t.name = "b" + std::to_string(i);
            t.arrival.kind = ArrivalKind::Bursty;
            t.arrival.rps = 1500.0;
            t.arrival.meanOnSec = 0.05;
            t.arrival.meanOffSec = 0.15;
            t.serviceUsOverride = 120.0;
            if (!manager.addTenant(std::move(t)))
                state.SkipWithError("addTenant failed");
        }
        auto report = manager.run();
        if (!report.ok())
            state.SkipWithError("run failed");
        else
            completed += report.value().completed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}
BENCHMARK(BM_ServeBursty)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return v10::bench::perfJsonMain(argc, argv);
}
