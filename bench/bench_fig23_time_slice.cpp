/**
 * @file
 * Fig. 23: throughput of V10-Full across preemption-timer periods
 * (512 .. 1048576 cycles), normalized to PMT. Small slices pay
 * context-switch overhead; large slices reintroduce head-of-line
 * blocking; ~32768 cycles (Table 5) balances both.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "workload/model_zoo.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fig. 23: scheduler time-slice sweep");
    banner(opts, "Throughput vs scheduler time slice", "Fig. 23");

    const std::vector<Cycles> slices = {512,   1024,  4096,
                                        32768, 65536, 1048576};

    ExperimentRunner runner;
    std::vector<std::string> headers = {"pair"};
    for (Cycles s : slices)
        headers.push_back(std::to_string(s));
    TextTable table(headers);
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header(headers);

    std::map<Cycles, std::vector<double>> per_slice;
    for (const auto &[a, b] : evaluationPairs()) {
        const RunStats pmt = runner.runPair(SchedulerKind::Pmt, a, b,
                                            1.0, 1.0, opts.requests);
        std::vector<std::string> row = {a + "+" + b};
        for (Cycles s : slices) {
            SchedulerOptions so;
            so.sliceOverride = s;
            const RunStats full =
                runner.runPair(SchedulerKind::V10Full, a, b, 1.0, 1.0,
                               opts.requests, so);
            const double ratio =
                pmt.stp() > 0.0 ? full.stp() / pmt.stp() : 0.0;
            per_slice[s].push_back(ratio);
            row.push_back(formatDouble(ratio, 2) + "x");
        }
        if (opts.csv) {
            csv.row(row);
        } else {
            table.addRow();
            for (const auto &cell : row)
                table.cell(cell);
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\ngeomean by slice:");
        for (Cycles s : slices)
            std::printf("  %llu: %.2fx",
                        static_cast<unsigned long long>(s),
                        geomean(per_slice[s]));
        std::printf("\n(paper: 32768 cycles ~ 46us is the sweet "
                    "spot)\n");
    }
    return 0;
}
