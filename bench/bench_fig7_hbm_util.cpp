/**
 * @file
 * Fig. 7: HBM bandwidth utilization of each DNN inference workload
 * across batch sizes (decreasing with batch except Transformer,
 * whose beam-search decode grows memory traffic superlinearly).
 */

#include "bench_common.h"

namespace {

double
metric(const v10::SingleProfile &p)
{
    return p.hbmUtil;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = v10::bench::BenchOptions::parse(
        argc, argv, "Fig. 7: HBM bandwidth utilization vs batch size");
    v10::bench::profileSweepBench(
        opts, "HBM bandwidth utilization", "Fig. 7", metric, true);
    return 0;
}
