/**
 * @file
 * Focused microbenchmarks of the hybrid calendar event queue: ring
 * hits, heap overflow, mixed horizons, cancellation churn, batched
 * same-cycle dispatch, closure-size effects on SmallFn storage, and
 * periodic (every()) ticking. Run with --perf-json=<path> to emit
 * the machine-readable summary the CI perf-smoke job checks.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "perf_json_main.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {

using namespace v10;

/** Self-perpetuating chain with a fixed delta. */
struct FixedChain
{
    Simulator *sim;
    Cycles delta;
    std::uint64_t *budget;
    void
    operator()() const
    {
        if (*budget == 0)
            return;
        --*budget;
        sim->after(delta, FixedChain{*this});
    }
};

/** Schedule/fire chains whose deltas always hit the ring window. */
void
BM_RingScheduleFire(benchmark::State &state)
{
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        std::uint64_t budget = 64 * 1024;
        for (int i = 0; i < 64; ++i)
            sim.after(100 + static_cast<Cycles>(i) * 37,
                      FixedChain{&sim, 1021, &budget});
        while (sim.step()) {
        }
        events += sim.eventsRun();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_RingScheduleFire);

/** Chains whose deltas always overflow to the min-heap. */
void
BM_HeapScheduleFire(benchmark::State &state)
{
    constexpr Cycles kFar = EventQueue::kRingBuckets * 4;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        std::uint64_t budget = 64 * 1024;
        for (int i = 0; i < 64; ++i)
            sim.after(kFar + static_cast<Cycles>(i) * 977,
                      FixedChain{&sim, kFar + 1021, &budget});
        while (sim.step()) {
        }
        events += sim.eventsRun();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_HeapScheduleFire);

/** 90% ring / 10% heap — the measured workload split. */
void
BM_MixedHorizonScheduleFire(benchmark::State &state)
{
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        Rng rng(7);
        std::uint64_t budget = 64 * 1024;
        struct MixChain
        {
            Simulator *sim;
            Rng *rng;
            std::uint64_t *budget;
            void
            operator()() const
            {
                if (*budget == 0)
                    return;
                --*budget;
                const bool far = (rng->next() % 10) == 0;
                const Cycles delta =
                    far ? EventQueue::kRingBuckets + 4093 : 1021;
                sim->after(delta, MixChain{*this});
            }
        };
        for (int i = 0; i < 64; ++i)
            sim.after(100 + static_cast<Cycles>(i) * 37,
                      MixChain{&sim, &rng, &budget});
        while (sim.step()) {
        }
        events += sim.eventsRun();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MixedHorizonScheduleFire);

/**
 * The HBM re-estimation pattern: every fire cancels a pending event
 * and reschedules it (processor-sharing completion estimates move
 * whenever a transfer joins or leaves).
 */
void
BM_CancelRescheduleChurn(benchmark::State &state)
{
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        std::uint64_t budget = 32 * 1024;
        EventId pending = kNoEvent;
        struct Churn
        {
            Simulator *sim;
            std::uint64_t *budget;
            EventId *pending;
            void
            operator()() const
            {
                if (*budget == 0)
                    return;
                --*budget;
                sim->cancel(*pending);
                *pending = sim->after(4099, Churn{*this});
                sim->after(509, Churn{*this});
            }
        };
        pending = sim.after(4099, [] {});
        sim.after(509, Churn{&sim, &budget, &pending});
        while (sim.step()) {
        }
        events += sim.eventsRun();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_CancelRescheduleChurn);

/** Bursts of same-cycle events — the batched dispatch path. */
void
BM_SameCycleBurst(benchmark::State &state)
{
    const auto burst = static_cast<int>(state.range(0));
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        for (Cycles c = 1; c <= 256; ++c)
            for (int i = 0; i < burst; ++i)
                sim.at(c * 64, [] { benchmark::DoNotOptimize(0); });
        sim.run();
        events += sim.eventsRun();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SameCycleBurst)->Arg(4)->Arg(32);

/** Closure-size effect: inline storage vs arena spill. */
void
BM_EventFnCaptureSize(benchmark::State &state)
{
    const bool large = state.range(0) != 0;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1024; ++i) {
            const Cycles when = 1 + static_cast<Cycles>(i % 251);
            if (large) {
                // Four extra words past the inline buffer: spills
                // to the queue's slab arena.
                std::uint64_t a = i, b = i + 1, c = i + 2, d = i + 3,
                              e = i + 4, f = i + 5, g = i + 6;
                sim.at(when, [&sink, a, b, c, d, e, f, g] {
                    sink += a + b + c + d + e + f + g;
                });
            } else {
                sim.at(when, [&sink] { ++sink; });
            }
        }
        sim.run();
        benchmark::DoNotOptimize(sink);
        events += sim.eventsRun();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventFnCaptureSize)->Arg(0)->Arg(1);

/** Periodic sampling through every(): tick cost. */
void
BM_PeriodicTicks(benchmark::State &state)
{
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        std::uint64_t ticks = 0;
        sim.every(512, [&ticks] { ++ticks; });
        sim.every(1024, [&ticks] { ++ticks; });
        sim.runUntil(512 * 8192);
        benchmark::DoNotOptimize(ticks);
        events += sim.eventsRun();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PeriodicTicks);

} // namespace

int
main(int argc, char **argv)
{
    return v10::bench::perfJsonMain(argc, argv);
}
