/**
 * @file
 * Table 2: prediction accuracy and worst-case performance of the
 * Random / Heuristic / Clustering collocation schemes, evaluated
 * with leave-two-models-out cross validation against brute-force
 * simulated ground truth (STP of V10-Full over PMT, threshold 1.3x).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "v10/collocation_advisor.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv,
        "Table 2: collocation-scheme prediction accuracy");
    banner(opts, "Collocation prediction accuracy", "Table 2");

    CollocationStudy study(NpuConfig{},
                           opts.quick ? 6 : opts.requests, 1.3,
                           opts.jobs);
    study.build();

    const std::vector<SchemeOutcome> outcomes = {
        study.evaluateRandom(),
        study.evaluateHeuristic(),
        study.evaluateClustering(),
    };

    TextTable table({"Scheme", "Overall Accuracy", "True Positive",
                     "True Negative", "False Positive",
                     "False Negative", "Worst Perf."});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"scheme", "accuracy", "tp_rate", "tn_rate",
                    "fp_rate", "fn_rate", "worst_perf"});

    for (const SchemeOutcome &o : outcomes) {
        if (opts.csv) {
            csv.row({o.scheme, formatDouble(o.accuracy(), 4),
                     formatDouble(o.tpRate(), 4),
                     formatDouble(o.tnRate(), 4),
                     formatDouble(o.fpRate(), 4),
                     formatDouble(o.fnRate(), 4),
                     formatDouble(o.worstPerf, 3)});
        } else {
            table.addRow();
            table.cell(o.scheme);
            table.cellPct(o.accuracy(), 2);
            table.cellPct(o.tpRate(), 2);
            table.cellPct(o.tnRate(), 2);
            table.cellPct(o.fpRate(), 2);
            table.cellPct(o.fnRate(), 2);
            table.cell(formatDouble(o.worstPerf, 3) + "x");
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\nBeneficial pairs (>=1.3x) in ground truth: "
                    "%.1f%% of all model pairs.\n"
                    "(paper: Random 44.83%%, Heuristic 64.91%%, "
                    "Clustering 84.73%% accuracy)\n",
                    100.0 * study.positiveRate());
    }
    return 0;
}
