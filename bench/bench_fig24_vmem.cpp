/**
 * @file
 * Fig. 24: throughput of V10-Full over PMT, and the HBM bandwidth
 * utilization, across vector-memory capacities (8..64 MB). Smaller
 * partitions force operators to tile with less reuse, raising HBM
 * traffic; most inference workloads still win.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "workload/model_zoo.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fig. 24: vector-memory capacity sweep");
    banner(opts, "Throughput and HBM utilization vs vmem capacity",
           "Fig. 24");

    const std::vector<Bytes> capacities = {8_MiB,  16_MiB, 24_MiB,
                                           32_MiB, 48_MiB, 64_MiB};

    std::vector<std::string> headers = {"pair"};
    for (Bytes c : capacities)
        headers.push_back(std::to_string(c >> 20) + "MB");
    for (Bytes c : capacities)
        headers.push_back("hbm@" + std::to_string(c >> 20) + "MB");
    TextTable table(headers);
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header(headers);

    std::map<Bytes, std::vector<double>> gains;
    for (const auto &[a, b] : evaluationPairs()) {
        std::vector<std::string> ratio_cells;
        std::vector<std::string> hbm_cells;
        for (Bytes cap : capacities) {
            NpuConfig cfg;
            cfg.vmemBytes = cap;
            // Each capacity gets its own runner so single-tenant
            // references see the same vmem.
            ExperimentRunner runner(cfg);
            const RunStats pmt = runner.runPair(
                SchedulerKind::Pmt, a, b, 1.0, 1.0, opts.requests);
            const RunStats full =
                runner.runPair(SchedulerKind::V10Full, a, b, 1.0, 1.0,
                               opts.requests);
            const double ratio =
                pmt.stp() > 0.0 ? full.stp() / pmt.stp() : 0.0;
            gains[cap].push_back(ratio);
            ratio_cells.push_back(formatDouble(ratio, 2) + "x");
            hbm_cells.push_back(formatPct(full.hbmUtil));
        }
        std::vector<std::string> row = {a + "+" + b};
        row.insert(row.end(), ratio_cells.begin(), ratio_cells.end());
        row.insert(row.end(), hbm_cells.begin(), hbm_cells.end());
        if (opts.csv) {
            csv.row(row);
        } else {
            table.addRow();
            for (const auto &cell : row)
                table.cell(cell);
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\ngeomean V10-Full/PMT by capacity:");
        for (Bytes c : capacities)
            std::printf("  %lluMB: %.2fx",
                        static_cast<unsigned long long>(c >> 20),
                        geomean(gains[c]));
        std::printf("\n(paper: V10 outperforms PMT at every "
                    "capacity)\n");
    }
    return 0;
}
