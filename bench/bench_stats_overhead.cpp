/**
 * @file
 * Observability overhead check: runs the Fig. 18 collocation pairs
 * under V10-Full twice — once plain and once with the StatRegistry
 * plus a 10k-cycle IntervalSampler attached — and reports the
 * wall-clock overhead of the instrumented run together with a
 * bit-identity check of the scheduling results (the acceptance bar
 * is identical results and <= 2% overhead).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "metrics/interval_sampler.h"
#include "metrics/stat_registry.h"
#include "workload/model_zoo.h"

namespace {

using namespace v10;

constexpr Cycles kSampleInterval = 10000;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The fields the scheduler actually decides; must match exactly. */
bool
sameResults(const RunStats &a, const RunStats &b)
{
    if (a.windowCycles != b.windowCycles ||
        a.workloads.size() != b.workloads.size())
        return false;
    for (std::size_t t = 0; t < a.workloads.size(); ++t) {
        const auto &wa = a.workloads[t];
        const auto &wb = b.workloads[t];
        if (wa.requests != wb.requests ||
            wa.preemptions != wb.preemptions ||
            wa.saComputeCycles != wb.saComputeCycles ||
            wa.vuComputeCycles != wb.vuComputeCycles ||
            wa.avgLatencyUs != wb.avgLatencyUs)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv,
        "Observability overhead: plain vs instrumented runs");
    banner(opts,
           "StatRegistry + IntervalSampler overhead (target <= 2%)",
           "the PR 2 acceptance check, not a paper figure");

    ExperimentRunner runner;

    TextTable table({"pair", "plain_ms", "registry_ms", "sampled_ms",
                     "ovhd_off", "ovhd_on", "identical"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"pair", "plain_ms", "registry_ms", "sampled_ms",
                    "overhead_off_pct", "overhead_on_pct",
                    "identical"});

    std::vector<double> off_overheads;
    std::vector<double> on_overheads;
    bool all_identical = true;
    for (const auto &[a, b] : evaluationPairs()) {
        // Warm the compilation and single-tenant reference caches so
        // the timed runs measure only the collocated simulation.
        runner.runPair(SchedulerKind::V10Full, a, b, 1.0, 1.0,
                       opts.requests);

        // Best-of-3 to shed scheduler noise on loaded hosts.
        double plain_s = 1e30;
        double reg_s = 1e30;
        double samp_s = 1e30;
        RunStats plain_stats;
        RunStats reg_stats;
        RunStats samp_stats;
        for (int rep = 0; rep < 3; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            plain_stats = runner.runPair(SchedulerKind::V10Full, a, b,
                                         1.0, 1.0, opts.requests);
            plain_s = std::min(plain_s, secondsSince(t0));

            // Registry attached, sampling off: the <= 2% bar.
            StatRegistry reg_only;
            SchedulerOptions so_reg;
            so_reg.stats = &reg_only;
            t0 = std::chrono::steady_clock::now();
            reg_stats = runner.runPair(SchedulerKind::V10Full, a, b,
                                       1.0, 1.0, opts.requests,
                                       so_reg);
            reg_s = std::min(reg_s, secondsSince(t0));

            // Registry + interval sampling: the full-observability
            // cost (each tick is an extra event-queue wakeup, so
            // this one scales with simulated cycles / interval).
            StatRegistry registry;
            IntervalSampler sampler(kSampleInterval);
            SchedulerOptions so;
            so.stats = &registry;
            so.sampler = &sampler;
            t0 = std::chrono::steady_clock::now();
            samp_stats = runner.runPair(SchedulerKind::V10Full, a, b,
                                        1.0, 1.0, opts.requests, so);
            samp_s = std::min(samp_s, secondsSince(t0));
        }

        const bool identical = sameResults(plain_stats, reg_stats) &&
                               sameResults(plain_stats, samp_stats);
        all_identical = all_identical && identical;
        const double off_ovhd =
            plain_s > 0.0 ? reg_s / plain_s - 1.0 : 0.0;
        const double on_ovhd =
            plain_s > 0.0 ? samp_s / plain_s - 1.0 : 0.0;
        off_overheads.push_back(off_ovhd);
        on_overheads.push_back(on_ovhd);
        if (opts.csv) {
            csv.row({a + "+" + b, formatDouble(plain_s * 1e3, 2),
                     formatDouble(reg_s * 1e3, 2),
                     formatDouble(samp_s * 1e3, 2),
                     formatDouble(off_ovhd * 100.0, 2),
                     formatDouble(on_ovhd * 100.0, 2),
                     identical ? "yes" : "NO"});
        } else {
            table.addRow();
            table.cell(a + "+" + b);
            table.cell(plain_s * 1e3, 2);
            table.cell(reg_s * 1e3, 2);
            table.cell(samp_s * 1e3, 2);
            table.cell(formatPct(off_ovhd, 2));
            table.cell(formatPct(on_ovhd, 2));
            table.cell(identical ? "yes" : "NO");
        }
    }
    auto meanOf = [](const std::vector<double> &xs) {
        double s = 0.0;
        for (double x : xs)
            s += x;
        return xs.empty() ? 0.0
                          : s / static_cast<double>(xs.size());
    };
    if (!opts.csv) {
        table.print();
        std::printf("\nmean overhead, registry only (sampling off): "
                    "%.2f%%  (acceptance bar: <= 2%%)\n",
                    meanOf(off_overheads) * 100.0);
        std::printf("mean overhead, registry + %llu-cycle sampling: "
                    "%.2f%%  (informational)\n",
                    static_cast<unsigned long long>(kSampleInterval),
                    meanOf(on_overheads) * 100.0);
        std::printf("scheduling results identical with "
                    "instrumentation on: %s\n",
                    all_identical ? "yes" : "NO");
    }
    return all_identical ? 0 : 1;
}
