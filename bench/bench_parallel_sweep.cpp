/**
 * @file
 * google-benchmark microbenchmark of the parallel sweep subsystem:
 * the same evaluation grid executed through SweepRunner at different
 * --jobs widths. Reports wall-clock per sweep plus a "speedup"
 * counter (serial time / this width's time), so the JSON output
 * (--benchmark_format=json) records how well the fan-out scales on
 * the host. Results are bit-identical at every width; this bench
 * measures only time.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "v10/experiment.h"
#include "v10/sweep.h"

namespace {

using namespace v10;

/** The grid every width runs: 4 pairs x 2 scheduler kinds. */
std::vector<SweepCell>
sweepGrid()
{
    return SweepRunner::pairGrid({{"BERT", "NCF"},
                                  {"ENet", "SMask"},
                                  {"DLRM", "RsNt"},
                                  {"TFMR", "MNST"}},
                                 {SchedulerKind::Pmt,
                                  SchedulerKind::V10Full},
                                 4);
}

/** Serial reference seconds, measured once and shared so every
 * width's "speedup" counter uses the same baseline. */
double
serialSeconds()
{
    static const double seconds = [] {
        ExperimentRunner runner;
        SweepRunner sweep(runner, 1);
        // Warm the caches so the timed pass measures sweep fan-out,
        // not first-touch compilation.
        sweep.run(sweepGrid());
        const auto start = std::chrono::steady_clock::now();
        sweep.run(sweepGrid());
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }();
    return seconds;
}

void
BM_SweepAtJobs(benchmark::State &state)
{
    const auto jobs = static_cast<std::size_t>(state.range(0));
    ExperimentRunner runner;
    SweepRunner sweep(runner, jobs);
    sweep.run(sweepGrid()); // warm caches (see serialSeconds)
    double total = 0.0;
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        const std::vector<RunStats> results = sweep.run(sweepGrid());
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        state.SetIterationTime(elapsed);
        total += elapsed;
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(sweepGrid().size()));
    const double per_iter =
        total / static_cast<double>(state.iterations());
    state.counters["jobs"] = static_cast<double>(jobs);
    state.counters["serial_s"] = serialSeconds();
    state.counters["speedup"] =
        per_iter > 0.0 ? serialSeconds() / per_iter : 0.0;
}
BENCHMARK(BM_SweepAtJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
