/**
 * @file
 * Fig. 25: scalability — throughput of V10-Full over single-tenant
 * execution as the core grows from (1 SA, 1 VU) to (8 SAs, 8 VUs)
 * and 2..32 workloads are collocated. HBM bandwidth scales with the
 * FU count, as NPU designers do (§5.9). Throughput grows roughly
 * linearly until the tenant count reaches the FU count.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "v10/sweep.h"
#include "workload/model_zoo.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fig. 25: scaling FUs and collocated workloads");
    banner(opts, "Throughput scaling with FUs x workloads", "Fig. 25");

    const std::vector<std::uint32_t> fu_counts = {1, 2, 4, 8};
    const std::vector<int> tenant_counts = {2, 4, 6, 8, 12, 16, 24,
                                            32};
    const std::uint64_t requests = opts.quick ? 4 : 8;

    std::vector<std::string> headers = {"(SAs,VUs)"};
    for (int t : tenant_counts)
        headers.push_back(std::to_string(t) + "wl");
    TextTable table(headers);
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header(headers);

    for (std::uint32_t fus : fu_counts) {
        NpuConfig cfg = NpuConfig{}.scaledForFus(fus, fus);
        // The paper's scaling study abstracts HBM capacity; keep
        // the bandwidth model but waive the §3.6 deployment check.
        cfg.enforceHbmFit = false;
        ExperimentRunner runner(cfg);
        std::vector<std::string> row = {
            "(" + std::to_string(fus) + "," + std::to_string(fus) +
            ")"};
        // One sweep cell per collocation width, fanned over --jobs.
        std::vector<SweepCell> cells;
        for (int t : tenant_counts) {
            // Random workload picks, deterministic per (fus, t).
            Rng rng(0xF25u ^ (fus << 8) ^ static_cast<unsigned>(t));
            SweepCell cell;
            for (int i = 0; i < t; ++i) {
                const auto &zoo = modelZoo();
                const auto &m = zoo[rng.uniformInt(zoo.size())];
                cell.tenants.push_back(
                    TenantRequest{m.abbrev, 0, 1.0});
            }
            cell.requests = requests;
            cell.warmup = 1;
            cells.push_back(std::move(cell));
        }
        SweepRunner sweep(runner, opts.jobs);
        for (const RunStats &stats : sweep.run(cells))
            row.push_back(formatDouble(stats.stp(), 2) + "x");
        if (opts.csv) {
            csv.row(row);
        } else {
            table.addRow();
            for (const auto &cell : row)
                table.cell(cell);
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\nSTP is the aggregate progress relative to one "
                    "workload on a dedicated (1,1) core equivalent; "
                    "it saturates once workloads ~= FUs.\n");
    }
    return 0;
}
