/**
 * @file
 * Fleet-level dispatch study (§3.5 "Put It All Together", not a
 * numbered figure): a pool of services dispatched across NPU cores
 * under NoSharing / RandomPairing / ClusteredPairing, comparing
 * aggregate throughput, cores used, and per-core efficiency.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "v10/npu_cluster.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fleet dispatch: §3.5 end-to-end pipeline");
    banner(opts, "Cluster-level workload dispatch", "§3.5");

    ClusterConfig cfg;
    cfg.numCores = 10;
    cfg.requests = opts.quick ? 4 : opts.requests;
    NpuCluster cluster(cfg);
    for (const char *m : {"BERT", "NCF", "RsNt", "DLRM", "RNRS",
                          "SMask", "TFMR", "RtNt", "ENet", "MNST"})
        cluster.addWorkload(m);

    cluster.trainAdvisor(opts.quick ? 4 : 6);

    TextTable table({"dispatch", "cores", "fleet STP",
                     "STP per core", "mean SA util"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"dispatch", "cores", "fleet_stp", "stp_per_core",
                    "mean_sa_util"});

    for (DispatchPolicy policy :
         {DispatchPolicy::NoSharing, DispatchPolicy::RandomPairing,
          DispatchPolicy::ClusteredPairing}) {
        const ClusterResult r = cluster.dispatchAndRun(policy, 7);
        const double per_core =
            r.fleetStp / static_cast<double>(r.coresUsed);
        if (opts.csv) {
            csv.row({dispatchPolicyName(policy),
                     std::to_string(r.coresUsed),
                     formatDouble(r.fleetStp, 3),
                     formatDouble(per_core, 3),
                     formatDouble(r.meanSaUtil, 4)});
        } else {
            table.addRow();
            table.cell(dispatchPolicyName(policy));
            table.cell(static_cast<long long>(r.coresUsed));
            table.cell(r.fleetStp, 2);
            table.cell(per_core, 2);
            table.cellPct(r.meanSaUtil);
        }
        if (!opts.csv &&
            policy == DispatchPolicy::ClusteredPairing) {
            std::printf("clustered assignment:");
            for (const auto &core : r.assignment) {
                std::printf("  [");
                for (std::size_t i = 0; i < core.size(); ++i)
                    std::printf("%s%s", i ? "+" : "",
                                core[i].c_str());
                std::printf("]");
            }
            std::printf("\n");
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf(
            "\nClusteredPairing reaches the highest fleet "
            "throughput on roughly half of NoSharing's cores: it "
            "pairs the complementary services and deliberately "
            "leaves contending ones (e.g. RNRS, TFMR) on dedicated "
            "cores instead of forcing a bad pairing — the "
            "deployment story of §3.5.\n");
    }
    return 0;
}
