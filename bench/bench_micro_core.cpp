/**
 * @file
 * google-benchmark microbenchmarks of the simulation core: event
 * queue throughput, HBM processor-sharing updates, scheduler
 * decision cost, and trace generation — the primitives whose speed
 * bounds how many paper experiments the harness can run per second.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "npu/hbm.h"
#include "npu/npu_core.h"
#include "perf_json_main.h"
#include "sched/op_scheduler.h"
#include "sched/priority_policy.h"
#include "sched/rr_policy.h"
#include "sim/simulator.h"
#include "workload/model_zoo.h"
#include "workload/trace_gen.h"
#include "workload/workload.h"

namespace {

using namespace v10;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        for (int i = 0; i < 1024; ++i)
            sim.after(static_cast<Cycles>(i * 7 % 257),
                      [] { benchmark::DoNotOptimize(0); });
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_HbmProcessorSharing(benchmark::State &state)
{
    const auto streams = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        HbmModel hbm(sim, 471.0);
        int done = 0;
        for (int i = 0; i < streams; ++i)
            hbm.startTransfer(1_MiB + i * 1024, [&] { ++done; });
        sim.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * streams);
}
BENCHMARK(BM_HbmProcessorSharing)->Arg(2)->Arg(8)->Arg(32);

void
BM_TraceGeneration(benchmark::State &state)
{
    const NpuConfig config;
    const ModelProfile &model = findModel("RetinaNet");
    for (auto _ : state) {
        RequestTrace trace = generateTrace(model, 32, config);
        benchmark::DoNotOptimize(trace.ops.size());
    }
}
BENCHMARK(BM_TraceGeneration);

void
BM_CollocatedPairRun(benchmark::State &state)
{
    const NpuConfig config;
    const Workload bert(findModel("BERT"), 32, config);
    const Workload ncf(findModel("NCF"), 32, config);
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        NpuCore core(sim, config, 2, true);
        OperatorScheduler sched(sim, core,
                                {TenantSpec{&bert, 1.0},
                                 TenantSpec{&ncf, 1.0}},
                                OperatorScheduler::Variant::Full);
        const RunStats stats = sched.run(3, 1);
        benchmark::DoNotOptimize(stats.stp());
        events += sim.eventsRun();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_CollocatedPairRun)->Unit(benchmark::kMillisecond);

/**
 * The paper-pair event-core bench: replays the measured
 * scheduling-delta distribution of the BERT+NCF pair run (histogram
 * of the engine's schedule() deltas, captured with an instrumented
 * queue) through the per-event stepping path the scheduler engine
 * uses. Its events/sec is the event-core ceiling of the pair
 * simulation, with the operator-scheduler logic factored out.
 */
void
BM_PairEventPatternReplay(benchmark::State &state)
{
    // (log2 upper bound of delta, weight) — measured BERT+NCF mix.
    static constexpr struct
    {
        int log2;
        std::uint64_t weight;
    } kBins[] = {{10, 6910},  {11, 10100}, {12, 8250},  {13, 13390},
                 {14, 17170}, {15, 22855}, {16, 3305},  {17, 1825},
                 {18, 1785},  {19, 1525}};
    std::uint64_t total_weight = 0;
    for (const auto &bin : kBins)
        total_weight += bin.weight;

    const auto draw = [&](Rng &rng) -> Cycles {
        std::uint64_t r = rng.next() % total_weight;
        for (const auto &bin : kBins) {
            if (r < bin.weight) {
                const Cycles lo = Cycles{1} << (bin.log2 - 1);
                return lo + static_cast<Cycles>(rng.next() % lo);
            }
            r -= bin.weight;
        }
        return 1; // unreachable
    };

    constexpr int kLiveEvents = 64;
    constexpr std::uint64_t kChainLength = 2048;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        Rng rng(0xC0FFEEu);
        std::uint64_t budget = kLiveEvents * kChainLength;
        // Self-perpetuating chains: each fired event schedules its
        // successor at a drawn delta, like DMA-completion and
        // FU-retire chains do in the real run.
        struct Chain
        {
            Simulator *sim;
            Rng *rng;
            std::uint64_t *budget;
            const decltype(draw) *next_delta;
            void
            operator()() const
            {
                if (*budget == 0)
                    return;
                --*budget;
                sim->after((*next_delta)(*rng), Chain{*this});
            }
        };
        for (int i = 0; i < kLiveEvents; ++i)
            sim.after(draw(rng), Chain{&sim, &rng, &budget, &draw});
        while (sim.step()) {
        }
        events += sim.eventsRun();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PairEventPatternReplay);

void
BM_PolicyDecision(benchmark::State &state)
{
    // Host-side cost of one Algorithm 1 scheduling decision over N
    // tenants (the hardware pays Table 3's 22-284 cycles; this is
    // the simulator's corresponding hot path).
    const auto tenants = static_cast<std::uint32_t>(state.range(0));
    ContextTable table(tenants);
    for (WorkloadId i = 0; i < tenants; ++i) {
        table.row(i).ready = (i % 2) == 0;
        table.row(i).opType = (i % 3) ? OpKind::SA : OpKind::VU;
        table.row(i).activeCycles = 1000 + i * 37;
        table.row(i).totalCycles = 5000;
    }
    PriorityPolicy policy;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            policy.pickNext(table, OpKind::SA));
    }
}
BENCHMARK(BM_PolicyDecision)->Arg(2)->Arg(8)->Arg(32);

void
BM_RoundRobinDecision(benchmark::State &state)
{
    const auto tenants = static_cast<std::uint32_t>(state.range(0));
    ContextTable table(tenants);
    for (WorkloadId i = 0; i < tenants; ++i) {
        table.row(i).ready = true;
        table.row(i).opType = OpKind::SA;
        table.row(i).totalCycles = 5000;
    }
    RoundRobinPolicy policy;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            policy.pickNext(table, OpKind::SA));
    }
}
BENCHMARK(BM_RoundRobinDecision)->Arg(2)->Arg(32);

} // namespace

int
main(int argc, char **argv)
{
    return v10::bench::perfJsonMain(argc, argv);
}
