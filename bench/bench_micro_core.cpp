/**
 * @file
 * google-benchmark microbenchmarks of the simulation core: event
 * queue throughput, HBM processor-sharing updates, scheduler
 * decision cost, and trace generation — the primitives whose speed
 * bounds how many paper experiments the harness can run per second.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "npu/hbm.h"
#include "npu/npu_core.h"
#include "perf_json_main.h"
#include "sched/op_scheduler.h"
#include "sched/priority_policy.h"
#include "sched/rr_policy.h"
#include "sim/simulator.h"
#include "workload/model_zoo.h"
#include "workload/trace_gen.h"
#include "workload/workload.h"

namespace {

using namespace v10;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        for (int i = 0; i < 1024; ++i)
            sim.after(static_cast<Cycles>(i * 7 % 257),
                      [] { benchmark::DoNotOptimize(0); });
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_HbmProcessorSharing(benchmark::State &state)
{
    const auto streams = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        HbmModel hbm(sim, 471.0);
        int done = 0;
        for (int i = 0; i < streams; ++i)
            hbm.startTransfer(1_MiB + i * 1024, [&] { ++done; });
        sim.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * streams);
}
BENCHMARK(BM_HbmProcessorSharing)->Arg(2)->Arg(8)->Arg(32);

void
BM_TraceGeneration(benchmark::State &state)
{
    const NpuConfig config;
    const ModelProfile &model = findModel("RetinaNet");
    for (auto _ : state) {
        RequestTrace trace = generateTrace(model, 32, config);
        benchmark::DoNotOptimize(trace.ops.size());
    }
}
BENCHMARK(BM_TraceGeneration);

void
BM_CollocatedPairRun(benchmark::State &state)
{
    const NpuConfig config;
    const Workload bert(findModel("BERT"), 32, config);
    const Workload ncf(findModel("NCF"), 32, config);
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        NpuCore core(sim, config, 2, true);
        OperatorScheduler sched(sim, core,
                                {TenantSpec{&bert, 1.0},
                                 TenantSpec{&ncf, 1.0}},
                                OperatorScheduler::Variant::Full);
        const RunStats stats = sched.run(3, 1);
        benchmark::DoNotOptimize(stats.stp());
        events += sim.eventsRun();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_CollocatedPairRun)->Unit(benchmark::kMillisecond);

/** (log2 upper bound of delta, weight) — the measured BERT+NCF
 * scheduling-delta histogram (captured with an instrumented queue);
 * both pair-replay benches draw successor deltas from it. */
struct DeltaBin
{
    int log2;
    std::uint64_t weight;
};
constexpr DeltaBin kPairDeltaBins[] = {
    {10, 6910},  {11, 10100}, {12, 8250}, {13, 13390}, {14, 17170},
    {15, 22855}, {16, 3305},  {17, 1825}, {18, 1785},  {19, 1525}};

Cycles
drawPairDelta(Rng &rng)
{
    static const std::uint64_t total_weight = [] {
        std::uint64_t total = 0;
        for (const auto &bin : kPairDeltaBins)
            total += bin.weight;
        return total;
    }();
    std::uint64_t r = rng.next() % total_weight;
    for (const auto &bin : kPairDeltaBins) {
        if (r < bin.weight) {
            const Cycles lo = Cycles{1} << (bin.log2 - 1);
            return lo + static_cast<Cycles>(rng.next() % lo);
        }
        r -= bin.weight;
    }
    return 1; // unreachable
}

/**
 * The paper-pair event-core bench: replays the measured
 * scheduling-delta distribution of the BERT+NCF pair run through
 * the per-event stepping path the scheduler engine uses. Its
 * events/sec is the event-core ceiling of the pair simulation, with
 * the operator-scheduler logic factored out.
 */
void
BM_PairEventPatternReplay(benchmark::State &state)
{
    constexpr int kLiveEvents = 64;
    constexpr std::uint64_t kChainLength = 2048;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        Rng rng(0xC0FFEEu);
        std::uint64_t budget = kLiveEvents * kChainLength;
        // Self-perpetuating chains: each fired event schedules its
        // successor at a drawn delta, like DMA-completion and
        // FU-retire chains do in the real run.
        struct Chain
        {
            Simulator *sim;
            Rng *rng;
            std::uint64_t *budget;
            void
            operator()() const
            {
                if (*budget == 0)
                    return;
                --*budget;
                sim->after(drawPairDelta(*rng), Chain{*this});
            }
        };
        for (int i = 0; i < kLiveEvents; ++i)
            sim.after(drawPairDelta(rng),
                      Chain{&sim, &rng, &budget});
        while (sim.step()) {
        }
        events += sim.eventsRun();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PairEventPatternReplay);

/**
 * The domain-partitioned pair replay: the same measured BERT+NCF
 * delta distribution, but with the event streams partitioned onto
 * the four simulation domains (control, SA, VU, DMA/HBM) the way
 * the multi-core model shards per-core streams — every hardware
 * domain coupled to the DMA/HBM domain (the shared-bandwidth
 * arbitration point) with a declared lookahead, and a periodic
 * cross-domain ping exercising the outbox/barrier path. Run at
 * --engine-jobs 1/2/4 this measures the conservative windowed
 * engine's scaling; the per-domain checksums are identical for
 * every job count (test_domain_engine proves bit-identity, this
 * bench measures the speedup).
 */
void
BM_PairReplayEngineJobs(benchmark::State &state)
{
    const auto jobs = static_cast<std::size_t>(state.range(0));
    // Lookahead chosen from the histogram: the minimum drawn delta
    // is 512 cycles, so windows of 8192 cycles hold ~10^2 events
    // per domain and barriers amortize (see docs/PERFORMANCE.md).
    static constexpr Cycles kLookahead = 8192;
    static constexpr int kChainsPerDomain = 192;
    static constexpr std::uint64_t kChainLength = 512;
    static constexpr std::uint64_t kPingPeriod = 32;
    static constexpr SimDomain kHwDomains[] = {
        SimDomain::Control, SimDomain::Sa, SimDomain::Vu};

    struct DomainState
    {
        Rng rng{1};
        std::uint64_t budget = 0;
        std::uint64_t hops = 0;
        std::uint64_t pings = 0;
    };

    std::uint64_t events = 0;
    std::uint64_t checksum = 0;
    for (auto _ : state) {
        Simulator sim;
        for (SimDomain d : kHwDomains) {
            sim.couple(d, SimDomain::DmaHbm, kLookahead);
            sim.couple(SimDomain::DmaHbm, d, kLookahead);
        }
        sim.setEngineJobs(jobs);

        std::array<DomainState, kNumSimDomains> domains;
        for (std::size_t r = 0; r < kNumSimDomains; ++r) {
            domains[r].rng = Rng(0xC0FFEEu + 0x9E37u * (r + 1));
            domains[r].budget = kChainsPerDomain * kChainLength;
        }

        struct Chain
        {
            Simulator *sim;
            DomainState *ds;
            DomainState *peer; ///< ping sink across the coupling
            SimDomain domain;
            SimDomain peer_domain;
            void
            operator()() const
            {
                if (ds->budget == 0)
                    return;
                --ds->budget;
                const Cycles delta = drawPairDelta(ds->rng);
                if (++ds->hops % kPingPeriod == 0) {
                    // Cross-domain message along the declared HBM
                    // coupling; must respect the lookahead.
                    DomainState *sink = peer;
                    const Cycles hop =
                        delta < kLookahead ? kLookahead : delta;
                    sim->at(peer_domain, sim->now() + hop,
                            [sink] { ++sink->pings; });
                }
                sim->after(domain, delta, Chain{*this});
            }
        };

        for (std::size_t r = 0; r < kNumSimDomains; ++r) {
            const auto domain = static_cast<SimDomain>(r);
            // Hardware domains ping DMA/HBM; DMA/HBM pings control.
            const SimDomain peer = domain == SimDomain::DmaHbm
                                       ? SimDomain::Control
                                       : SimDomain::DmaHbm;
            DomainState &ds = domains[r];
            DomainState &sink = domains[simDomainRank(peer)];
            for (int i = 0; i < kChainsPerDomain; ++i)
                sim.after(domain, drawPairDelta(ds.rng),
                          Chain{&sim, &ds, &sink, domain, peer});
        }
        sim.run();
        events += sim.eventsRun();
        // Identical for every job count: per-domain event order is
        // window-isolated and pings commute (pure counters).
        for (const DomainState &ds : domains)
            checksum ^= ds.hops + 0x1000 * ds.pings;
        checksum ^= sim.now();
    }
    benchmark::DoNotOptimize(checksum);
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PairReplayEngineJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void
BM_PolicyDecision(benchmark::State &state)
{
    // Host-side cost of one Algorithm 1 scheduling decision over N
    // tenants (the hardware pays Table 3's 22-284 cycles; this is
    // the simulator's corresponding hot path).
    const auto tenants = static_cast<std::uint32_t>(state.range(0));
    ContextTable table(tenants);
    for (WorkloadId i = 0; i < tenants; ++i) {
        table.row(i).ready = (i % 2) == 0;
        table.row(i).opType = (i % 3) ? OpKind::SA : OpKind::VU;
        table.row(i).activeCycles = 1000 + i * 37;
        table.row(i).totalCycles = 5000;
    }
    PriorityPolicy policy;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            policy.pickNext(table, OpKind::SA));
    }
}
BENCHMARK(BM_PolicyDecision)->Arg(2)->Arg(8)->Arg(32);

void
BM_RoundRobinDecision(benchmark::State &state)
{
    const auto tenants = static_cast<std::uint32_t>(state.range(0));
    ContextTable table(tenants);
    for (WorkloadId i = 0; i < tenants; ++i) {
        table.row(i).ready = true;
        table.row(i).opType = OpKind::SA;
        table.row(i).totalCycles = 5000;
    }
    RoundRobinPolicy policy;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            policy.pickNext(table, OpKind::SA));
    }
}
BENCHMARK(BM_RoundRobinDecision)->Arg(2)->Arg(32);

} // namespace

int
main(int argc, char **argv)
{
    return v10::bench::perfJsonMain(argc, argv);
}
