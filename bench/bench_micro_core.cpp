/**
 * @file
 * google-benchmark microbenchmarks of the simulation core: event
 * queue throughput, HBM processor-sharing updates, scheduler
 * decision cost, and trace generation — the primitives whose speed
 * bounds how many paper experiments the harness can run per second.
 */

#include <benchmark/benchmark.h>

#include "npu/hbm.h"
#include "npu/npu_core.h"
#include "sched/op_scheduler.h"
#include "sched/priority_policy.h"
#include "sched/rr_policy.h"
#include "sim/simulator.h"
#include "workload/model_zoo.h"
#include "workload/trace_gen.h"
#include "workload/workload.h"

namespace {

using namespace v10;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        for (int i = 0; i < 1024; ++i)
            sim.after(static_cast<Cycles>(i * 7 % 257),
                      [] { benchmark::DoNotOptimize(0); });
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_HbmProcessorSharing(benchmark::State &state)
{
    const auto streams = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        HbmModel hbm(sim, 471.0);
        int done = 0;
        for (int i = 0; i < streams; ++i)
            hbm.startTransfer(1_MiB + i * 1024, [&] { ++done; });
        sim.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * streams);
}
BENCHMARK(BM_HbmProcessorSharing)->Arg(2)->Arg(8)->Arg(32);

void
BM_TraceGeneration(benchmark::State &state)
{
    const NpuConfig config;
    const ModelProfile &model = findModel("RetinaNet");
    for (auto _ : state) {
        RequestTrace trace = generateTrace(model, 32, config);
        benchmark::DoNotOptimize(trace.ops.size());
    }
}
BENCHMARK(BM_TraceGeneration);

void
BM_CollocatedPairRun(benchmark::State &state)
{
    const NpuConfig config;
    const Workload bert(findModel("BERT"), 32, config);
    const Workload ncf(findModel("NCF"), 32, config);
    for (auto _ : state) {
        Simulator sim;
        NpuCore core(sim, config, 2, true);
        OperatorScheduler sched(sim, core,
                                {TenantSpec{&bert, 1.0},
                                 TenantSpec{&ncf, 1.0}},
                                OperatorScheduler::Variant::Full);
        const RunStats stats = sched.run(3, 1);
        benchmark::DoNotOptimize(stats.stp());
    }
}
BENCHMARK(BM_CollocatedPairRun)->Unit(benchmark::kMillisecond);

void
BM_PolicyDecision(benchmark::State &state)
{
    // Host-side cost of one Algorithm 1 scheduling decision over N
    // tenants (the hardware pays Table 3's 22-284 cycles; this is
    // the simulator's corresponding hot path).
    const auto tenants = static_cast<std::uint32_t>(state.range(0));
    ContextTable table(tenants);
    for (WorkloadId i = 0; i < tenants; ++i) {
        table.row(i).ready = (i % 2) == 0;
        table.row(i).opType = (i % 3) ? OpKind::SA : OpKind::VU;
        table.row(i).activeCycles = 1000 + i * 37;
        table.row(i).totalCycles = 5000;
    }
    PriorityPolicy policy;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            policy.pickNext(table, OpKind::SA));
    }
}
BENCHMARK(BM_PolicyDecision)->Arg(2)->Arg(8)->Arg(32);

void
BM_RoundRobinDecision(benchmark::State &state)
{
    const auto tenants = static_cast<std::uint32_t>(state.range(0));
    ContextTable table(tenants);
    for (WorkloadId i = 0; i < tenants; ++i) {
        table.row(i).ready = true;
        table.row(i).opType = OpKind::SA;
        table.row(i).totalCycles = 5000;
    }
    RoundRobinPolicy policy;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            policy.pickNext(table, OpKind::SA));
    }
}
BENCHMARK(BM_RoundRobinDecision)->Arg(2)->Arg(32);

} // namespace

BENCHMARK_MAIN();
