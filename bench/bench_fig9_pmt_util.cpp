/**
 * @file
 * Fig. 9: per-workload MXU/VPU utilization breakdown of the 15
 * characterization pairs under preemptive multitasking (PMT) — the
 * motivation study showing that time sharing alone leaves both
 * compute units underutilized.
 */

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "workload/model_zoo.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fig. 9: NPU utilization under PMT");
    banner(opts, "Per-workload MXU/VPU utilization under PMT",
           "Fig. 9");

    ExperimentRunner runner;
    TextTable table({"pair", "DNN1 MXU", "DNN2 MXU", "MXU total",
                     "DNN1 VPU", "DNN2 VPU", "VPU total"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"pair", "dnn1_mxu", "dnn2_mxu", "mxu_total",
                    "dnn1_vpu", "dnn2_vpu", "vpu_total"});

    double mxu_sum = 0.0;
    double vpu_sum = 0.0;
    std::size_t n = 0;
    for (const auto &[a, b] : characterizationPairs()) {
        const RunStats stats = runner.runPair(
            SchedulerKind::Pmt, a, b, 1.0, 1.0, opts.requests);
        const auto &w1 = stats.workloads[0];
        const auto &w2 = stats.workloads[1];
        mxu_sum += stats.saUtil;
        vpu_sum += stats.vuUtil;
        ++n;
        if (opts.csv) {
            csv.row({a + "+" + b, formatDouble(w1.saUtil, 4),
                     formatDouble(w2.saUtil, 4),
                     formatDouble(stats.saUtil, 4),
                     formatDouble(w1.vuUtil, 4),
                     formatDouble(w2.vuUtil, 4),
                     formatDouble(stats.vuUtil, 4)});
        } else {
            table.addRow();
            table.cell(a + "+" + b);
            table.cellPct(w1.saUtil);
            table.cellPct(w2.saUtil);
            table.cellPct(stats.saUtil);
            table.cellPct(w1.vuUtil);
            table.cellPct(w2.vuUtil);
            table.cellPct(stats.vuUtil);
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\nAverage under PMT: MXU %.1f%%, VPU %.1f%% — "
                    "time sharing alone cannot overlap the units "
                    "(paper: ~50%% combined).\n",
                    100.0 * mxu_sum / n, 100.0 * vpu_sum / n);
    }
    return 0;
}
