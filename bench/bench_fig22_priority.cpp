/**
 * @file
 * Fig. 22: effect of workload priorities. (a) per-tenant performance
 * vs ideal (dedicated core) as the priority split varies from 50-50
 * to 90-10 under V10-Full and PMT; (b) overall throughput of
 * V10-Full across splits, normalized to PMT at the same split.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "workload/model_zoo.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fig. 22: varying workload priorities");
    banner(opts, "Priority enforcement", "Fig. 22");

    const std::vector<std::pair<int, int>> splits = {
        {50, 50}, {60, 40}, {70, 30}, {80, 20}, {90, 10}};

    ExperimentRunner runner;
    TextTable table({"pair", "split", "Full NP1", "Full NP2",
                     "PMT NP1", "PMT NP2", "Full STP/PMT"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"pair", "split", "full_np1", "full_np2",
                    "pmt_np1", "pmt_np2", "full_stp_vs_pmt"});

    for (const auto &[a, b] : evaluationPairs()) {
        for (const auto &[p1, p2] : splits) {
            const double pr1 = p1 / 100.0;
            const double pr2 = p2 / 100.0;
            const RunStats full =
                runner.runPair(SchedulerKind::V10Full, a, b, pr1, pr2,
                               opts.requests);
            const RunStats pmt = runner.runPair(
                SchedulerKind::Pmt, a, b, pr1, pr2, opts.requests);
            const double ratio =
                pmt.stp() > 0.0 ? full.stp() / pmt.stp() : 0.0;
            const std::string split_str =
                std::to_string(p1) + "%-" + std::to_string(p2) + "%";
            if (opts.csv) {
                csv.row({a + "+" + b, split_str,
                         formatDouble(
                             full.workloads[0].normalizedProgress, 4),
                         formatDouble(
                             full.workloads[1].normalizedProgress, 4),
                         formatDouble(
                             pmt.workloads[0].normalizedProgress, 4),
                         formatDouble(
                             pmt.workloads[1].normalizedProgress, 4),
                         formatDouble(ratio, 4)});
            } else {
                table.addRow();
                table.cell(a + "+" + b);
                table.cell(split_str);
                table.cell(full.workloads[0].normalizedProgress, 2);
                table.cell(full.workloads[1].normalizedProgress, 2);
                table.cell(pmt.workloads[0].normalizedProgress, 2);
                table.cell(pmt.workloads[1].normalizedProgress, 2);
                table.cell(formatDouble(ratio, 2) + "x");
            }
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\nDNN1 holds the higher priority; V10 sustains "
                    "its progress while letting the low-priority "
                    "tenant harvest idle units (paper Fig. 22).\n");
    }
    return 0;
}
