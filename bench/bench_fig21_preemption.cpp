/**
 * @file
 * Fig. 21: context-switch overhead (fraction of single-tenant
 * request time) and preemptions per request for PMT vs V10-Full —
 * V10 preempts far more often at far finer granularity while keeping
 * overhead under ~2%.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv,
        "Fig. 21: preemption overhead and frequency, PMT vs V10-Full");
    banner(opts, "Context-switch overhead & preemptions per request",
           "Fig. 21");

    ExperimentRunner runner;
    const std::vector<SchedulerKind> kinds = {SchedulerKind::Pmt,
                                              SchedulerKind::V10Full};
    const auto sets = runEvaluationPairs(runner, kinds, opts.requests,
                                         opts.jobs);
    maybeWriteStatsJson(opts, "bench_fig21_preemption", runner, sets);

    TextTable table({"pair", "tenant", "PMT ovhd", "Full ovhd",
                     "PMT preempts/req", "Full preempts/req"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"pair", "tenant", "pmt_overhead", "full_overhead",
                    "pmt_preempts_per_req", "full_preempts_per_req"});

    for (const PairRunSet &set : sets) {
        for (int tenant = 0; tenant < 2; ++tenant) {
            const auto &pmt =
                set.byKind.at(SchedulerKind::Pmt).workloads[tenant];
            const auto &full = set.byKind.at(SchedulerKind::V10Full)
                                   .workloads[tenant];
            if (opts.csv) {
                csv.row({pairLabel(set), pmt.label,
                         formatDouble(pmt.ctxOverheadFrac, 5),
                         formatDouble(full.ctxOverheadFrac, 5),
                         formatDouble(pmt.preemptsPerRequest(), 3),
                         formatDouble(full.preemptsPerRequest(), 3)});
            } else {
                table.addRow();
                table.cell(pairLabel(set));
                table.cell(pmt.label);
                table.cellPct(pmt.ctxOverheadFrac, 2);
                table.cellPct(full.ctxOverheadFrac, 2);
                table.cell(pmt.preemptsPerRequest(), 2);
                table.cell(full.preemptsPerRequest(), 2);
            }
        }
    }
    if (!opts.csv) {
        table.print();
        std::printf("\nBoth designs stay under ~2%% overhead; "
                    "V10-Full preempts orders of magnitude more "
                    "often (finer-grained sharing).\n");
    }
    return 0;
}
