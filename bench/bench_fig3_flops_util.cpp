/**
 * @file
 * Fig. 3: overall FLOPS utilization of each DNN inference workload
 * across batch sizes. Missing cells ("-") are batches that fail due
 * to insufficient memory, as in the paper.
 */

#include "bench_common.h"

namespace {

double
metric(const v10::SingleProfile &p)
{
    return p.flopsUtil;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = v10::bench::BenchOptions::parse(
        argc, argv, "Fig. 3: FLOPS utilization vs batch size");
    v10::bench::profileSweepBench(
        opts, "Overall FLOPS utilization", "Fig. 3", metric, true);
    return 0;
}
