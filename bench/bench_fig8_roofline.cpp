/**
 * @file
 * Fig. 8: roofline coordinates — operational intensity (FLOPs/byte)
 * vs achieved TFLOP/s — for every (model, batch) point, plus the
 * configured compute and bandwidth roofs.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

int
main(int argc, char **argv)
{
    using namespace v10;
    using namespace v10::bench;

    const auto opts = BenchOptions::parse(
        argc, argv, "Fig. 8: roofline of DNN inference workloads");
    banner(opts, "Roofline (operational intensity vs TFLOP/s)",
           "Fig. 8");

    const NpuConfig config;
    if (!opts.csv) {
        std::printf("Peak compute: %.1f TFLOP/s   Peak bandwidth: "
                    "%.0f GB/s   Ridge point: %.1f FLOPs/byte\n\n",
                    config.peakTflops(), config.hbmGBps,
                    config.peakTflops() * 1e12 /
                        (config.hbmGBps * 1e9));
    }

    const auto profiles =
        profileAllModels(config, opts.quick ? 4 : opts.requests);

    TextTable table({"model", "batch", "FLOPs/byte", "TFLOP/s",
                     "% of compute roof", "% of bandwidth roof"});
    CsvWriter csv(std::cout);
    if (opts.csv)
        csv.header({"model", "batch", "op_intensity", "tflops",
                    "pct_compute_roof", "pct_bw_roof"});

    for (const auto &p : profiles) {
        if (p.oom)
            continue;
        // The bandwidth roof at this intensity (GB/s * OI).
        const double bw_roof_tflops =
            config.hbmGBps * 1e9 * p.opIntensity / 1e12;
        if (opts.csv) {
            csv.row({p.model, std::to_string(p.batch),
                     formatDouble(p.opIntensity, 3),
                     formatDouble(p.tflops, 4),
                     formatDouble(
                         100.0 * p.tflops / config.peakTflops(), 2),
                     formatDouble(100.0 * p.tflops / bw_roof_tflops,
                                  2)});
        } else {
            table.addRow();
            table.cell(p.model);
            table.cell(static_cast<long long>(p.batch));
            table.cell(p.opIntensity, 3);
            table.cell(p.tflops, 4);
            table.cellPct(p.tflops / config.peakTflops());
            table.cellPct(p.tflops / bw_roof_tflops);
        }
    }
    if (!opts.csv)
        table.print();
    return 0;
}
