#include "isa/instruction.h"

#include <sstream>

#include "common/log.h"

namespace v10 {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::PushW: return "pushw";
      case Opcode::Push:  return "push";
      case Opcode::Pop:   return "pop";
      case Opcode::Ld:    return "ld";
      case Opcode::St:    return "st";
      case Opcode::Valu:  return "valu";
      case Opcode::Sync:  return "sync";
    }
    panic("opcodeName: bad opcode");
}

Cycles
opcodeCycles(Opcode op)
{
    switch (op) {
      case Opcode::PushW:
      case Opcode::Push:
      case Opcode::Pop:
        return 8; // eight 128-wide vectors, one per cycle (§2.1)
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::Valu:
      case Opcode::Sync:
        return 1;
    }
    panic("opcodeCycles: bad opcode");
}

std::string
Instruction::disassemble() const
{
    std::ostringstream os;
    os << opcodeName(opcode);
    switch (opcode) {
      case Opcode::PushW:
      case Opcode::Push:
        os << " v" << src;
        break;
      case Opcode::Pop:
        os << " v" << dst;
        break;
      case Opcode::Ld:
        os << " v" << dst << ", [vmem+" << vmemOffset << "]";
        break;
      case Opcode::St:
        os << " v" << src << ", [vmem+" << vmemOffset << "]";
        break;
      case Opcode::Valu:
        os << " v" << dst << ", v" << src;
        break;
      case Opcode::Sync:
        break;
    }
    return os.str();
}

} // namespace v10
