/**
 * @file
 * NPU instruction definitions, following the ISA sketched in §2.1 of
 * the paper:
 *
 *  - pushw %src      send eight 128-wide weight vectors to the SA
 *  - push  %src      send eight 128-wide input vectors to the SA
 *  - pop   %dst      read eight 128-wide vectors out of the SA
 *  - ld    %dst,[m]  load a vector register from vector memory
 *  - st    %src,[m]  store a vector register to vector memory
 *  - valu  op        element-wise SIMD operation in the vector unit
 *  - sync            barrier between dependent operators
 *
 * push/pushw/pop each take 8 cycles (one 128-wide vector per cycle);
 * ld/st take 1 cycle against the software-managed vector memory; a
 * valu instruction performs one 8x128x2-FLOP SIMD step per cycle.
 */

#ifndef V10_ISA_INSTRUCTION_H
#define V10_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace v10 {

/** NPU opcode set. */
enum class Opcode : std::uint8_t {
    PushW, ///< stream a weight block into the systolic array
    Push,  ///< stream an input block into the systolic array
    Pop,   ///< drain an output block from the systolic array
    Ld,    ///< vector-memory load into a vector register
    St,    ///< vector-register store to vector memory
    Valu,  ///< element-wise SIMD ALU operation
    Sync,  ///< dependency barrier between operators
};

/** Human-readable mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** Cycle cost of one instruction of the given opcode. */
Cycles opcodeCycles(Opcode op);

/**
 * One decoded NPU instruction. Operands are register indices or
 * vector-memory offsets; the simulator executes instruction *streams*
 * at phase granularity, so this struct exists for trace inspection,
 * the disassembler, and the preemption module's context accounting.
 */
struct Instruction
{
    Opcode opcode = Opcode::Sync;
    /** Destination vector register (Pop/Ld) or 0. */
    std::uint16_t dst = 0;
    /** Source vector register (Push/PushW/St/Valu) or 0. */
    std::uint16_t src = 0;
    /** Vector-memory byte offset for Ld/St. */
    std::uint32_t vmemOffset = 0;

    /** Cycle cost of this instruction. */
    Cycles cycles() const { return opcodeCycles(opcode); }

    /** "push v3"-style disassembly. */
    std::string disassemble() const;
};

} // namespace v10

#endif // V10_ISA_INSTRUCTION_H
