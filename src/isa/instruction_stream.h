/**
 * @file
 * Lazy expansion of a tensor operator into its NPU instruction
 * stream.
 *
 * Long operators expand to hundreds of thousands of instructions, so
 * the stream is a generator rather than a materialized vector: the
 * instruction count and total cycle cost are computed analytically
 * (and are what the timing model charges), while individual
 * instructions can be enumerated on demand for the disassembler,
 * tests, and the preemption module.
 */

#ifndef V10_ISA_INSTRUCTION_STREAM_H
#define V10_ISA_INSTRUCTION_STREAM_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace v10 {

/**
 * Shape parameters of a systolic-array operator: a weight-stationary
 * matmul/convolution streaming @p rows input rows through a
 * dim x dim array.
 */
struct SaOpShape
{
    std::uint32_t dim = 128; ///< systolic array dimension
    std::uint64_t rows = 0;  ///< input rows streamed through the SA
};

/**
 * Shape parameters of a vector-unit operator: an element-wise /
 * reduction kernel over @p elements values, with one Ld + one St per
 * register-file tile.
 */
struct VuOpShape
{
    std::uint64_t elements = 0;  ///< total elements processed
    std::uint32_t laneWidth = 1024; ///< elements per SIMD step (8x128)
    std::uint32_t aluSteps = 1;  ///< Valu instructions per tile
};

/**
 * Generator over the instruction stream of one operator.
 */
class InstructionStream
{
  public:
    /** Build the stream of a systolic-array operator. */
    static InstructionStream forSaOp(const SaOpShape &shape);

    /** Build the stream of a vector-unit operator. */
    static InstructionStream forVuOp(const VuOpShape &shape);

    /** Total number of instructions in the stream. */
    std::uint64_t instructionCount() const { return count_; }

    /**
     * Total cycle cost of executing the stream back to back. For SA
     * operators this matches the weight-stationary pipeline model
     * (dim weight-load cycles + rows streaming cycles + 2*dim drain)
     * because push and pop overlap in steady state.
     */
    Cycles totalCycles() const { return total_cycles_; }

    /** Instruction at stream position @p index (0-based). */
    Instruction at(std::uint64_t index) const;

    /** Materialize the first @p n instructions (for tests/tools). */
    std::vector<Instruction> prefix(std::uint64_t n) const;

    /**
     * Invoke @p fn for every instruction; intended only for short
     * streams (tools and tests).
     */
    void forEach(const std::function<void(const Instruction &)> &fn)
        const;

  private:
    InstructionStream() = default;

    enum class Kind { SA, VU };

    Kind kind_ = Kind::SA;
    SaOpShape sa_{};
    VuOpShape vu_{};
    std::uint64_t count_ = 0;
    Cycles total_cycles_ = 0;
};

} // namespace v10

#endif // V10_ISA_INSTRUCTION_STREAM_H
