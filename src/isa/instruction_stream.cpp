#include "isa/instruction_stream.h"

#include "common/log.h"

namespace v10 {

namespace {

/** Vector-register file size (32 8x128 registers, §2.1). */
constexpr std::uint16_t kNumVregs = 32;

} // namespace

InstructionStream
InstructionStream::forSaOp(const SaOpShape &shape)
{
    if (shape.dim == 0 || shape.dim % 8 != 0)
        fatal("SA dim must be a positive multiple of 8, got ",
              shape.dim);
    InstructionStream s;
    s.kind_ = Kind::SA;
    s.sa_ = shape;

    const std::uint64_t weight_blocks = shape.dim / 8;
    const std::uint64_t input_blocks = (shape.rows + 7) / 8;
    // ld+pushw per weight block, ld+push+pop+st per input block,
    // one trailing sync.
    s.count_ = 2 * weight_blocks + 4 * input_blocks + 1;
    // Weight-stationary pipeline: dim cycles of weight load, rows
    // cycles of streaming (push/pop overlap), 2*dim cycles of drain.
    s.total_cycles_ = static_cast<Cycles>(shape.dim) + shape.rows +
                      2 * static_cast<Cycles>(shape.dim);
    return s;
}

InstructionStream
InstructionStream::forVuOp(const VuOpShape &shape)
{
    if (shape.laneWidth == 0)
        fatal("VU lane width must be positive");
    if (shape.aluSteps == 0)
        fatal("VU op needs at least one ALU step");
    InstructionStream s;
    s.kind_ = Kind::VU;
    s.vu_ = shape;

    const std::uint64_t tiles =
        (shape.elements + shape.laneWidth - 1) / shape.laneWidth;
    // ld + aluSteps*valu + st per tile, one trailing sync.
    s.count_ = tiles * (2 + shape.aluSteps) + 1;
    s.total_cycles_ = s.count_; // every VU-side instruction is 1 cycle
    return s;
}

Instruction
InstructionStream::at(std::uint64_t index) const
{
    if (index >= count_)
        panic("InstructionStream::at: index ", index, " >= ", count_);

    Instruction inst;
    if (kind_ == Kind::SA) {
        const std::uint64_t weight_blocks = sa_.dim / 8;
        if (index < 2 * weight_blocks) {
            const std::uint64_t block = index / 2;
            const auto reg =
                static_cast<std::uint16_t>(block % kNumVregs);
            if (index % 2 == 0) {
                inst.opcode = Opcode::Ld;
                inst.dst = reg;
                inst.vmemOffset =
                    static_cast<std::uint32_t>(block * 8 * sa_.dim * 2);
            } else {
                inst.opcode = Opcode::PushW;
                inst.src = reg;
            }
            return inst;
        }
        index -= 2 * weight_blocks;
        const std::uint64_t input_blocks = (sa_.rows + 7) / 8;
        if (index < 4 * input_blocks) {
            const std::uint64_t block = index / 4;
            const auto in_reg =
                static_cast<std::uint16_t>(block % (kNumVregs / 2));
            const auto out_reg = static_cast<std::uint16_t>(
                kNumVregs / 2 + block % (kNumVregs / 2));
            switch (index % 4) {
              case 0:
                inst.opcode = Opcode::Ld;
                inst.dst = in_reg;
                inst.vmemOffset =
                    static_cast<std::uint32_t>(block * 8 * sa_.dim * 2);
                break;
              case 1:
                inst.opcode = Opcode::Push;
                inst.src = in_reg;
                break;
              case 2:
                inst.opcode = Opcode::Pop;
                inst.dst = out_reg;
                break;
              default:
                inst.opcode = Opcode::St;
                inst.src = out_reg;
                inst.vmemOffset =
                    static_cast<std::uint32_t>(block * 8 * sa_.dim * 4);
                break;
            }
            return inst;
        }
        inst.opcode = Opcode::Sync;
        return inst;
    }

    // VU operator: [ld, valu*aluSteps, st] per tile, then sync.
    const std::uint64_t group = 2 + vu_.aluSteps;
    const std::uint64_t tiles =
        (vu_.elements + vu_.laneWidth - 1) / vu_.laneWidth;
    if (index < tiles * group) {
        const std::uint64_t tile = index / group;
        const std::uint64_t pos = index % group;
        const auto reg = static_cast<std::uint16_t>(tile % kNumVregs);
        if (pos == 0) {
            inst.opcode = Opcode::Ld;
            inst.dst = reg;
            inst.vmemOffset =
                static_cast<std::uint32_t>(tile * vu_.laneWidth * 4);
        } else if (pos == group - 1) {
            inst.opcode = Opcode::St;
            inst.src = reg;
            inst.vmemOffset =
                static_cast<std::uint32_t>(tile * vu_.laneWidth * 4);
        } else {
            inst.opcode = Opcode::Valu;
            inst.dst = reg;
            inst.src = reg;
        }
        return inst;
    }
    inst.opcode = Opcode::Sync;
    return inst;
}

std::vector<Instruction>
InstructionStream::prefix(std::uint64_t n) const
{
    const std::uint64_t limit = std::min(n, count_);
    std::vector<Instruction> out;
    out.reserve(limit);
    for (std::uint64_t i = 0; i < limit; ++i)
        out.push_back(at(i));
    return out;
}

void
InstructionStream::forEach(
    const std::function<void(const Instruction &)> &fn) const
{
    for (std::uint64_t i = 0; i < count_; ++i)
        fn(at(i));
}

} // namespace v10
