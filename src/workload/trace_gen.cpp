#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/rng.h"

namespace v10 {

std::size_t
RequestTrace::saOpCount() const
{
    std::size_t n = 0;
    for (const auto &op : ops)
        n += op.kind == OpKind::SA;
    return n;
}

std::size_t
RequestTrace::vuOpCount() const
{
    return ops.size() - saOpCount();
}

double
RequestTrace::meanSaOpCycles() const
{
    const std::size_t n = saOpCount();
    return n ? static_cast<double>(saCycles) / static_cast<double>(n)
             : 0.0;
}

double
RequestTrace::meanVuOpCycles() const
{
    const std::size_t n = vuOpCount();
    return n ? static_cast<double>(vuCycles) / static_cast<double>(n)
             : 0.0;
}

namespace {

/** SA operator mnemonics, cycled deterministically. */
const char *const kSaNames[] = {"matmul", "conv2d", "fc", "einsum"};

/** VU operator mnemonics, cycled deterministically. */
const char *const kVuNames[] = {"relu",    "add",     "reduce",
                                "softmax", "shuffle", "reshape",
                                "mul",     "layernorm"};

/**
 * Sample @p n lognormal durations around @p meanUs with coefficient
 * of variation @p cv, then rescale so the sample mean is exactly
 * meanUs (Table 1 reports means; the bench must reproduce them).
 */
std::vector<double>
sampleDurationsUs(Rng &rng, int n, double meanUs, double cv)
{
    std::vector<double> out(static_cast<std::size_t>(n));
    double sum = 0.0;
    for (auto &d : out) {
        d = rng.lognormal(meanUs, cv);
        sum += d;
    }
    const double actual_mean = sum / static_cast<double>(n);
    const double scale = actual_mean > 0.0 ? meanUs / actual_mean : 1.0;
    for (auto &d : out)
        d *= scale;
    return out;
}

} // namespace

RequestTrace
generateTrace(const ModelProfile &profile, int batch,
              const NpuConfig &config)
{
    // ModelProfile::validate() is void (fatals internally).
    // v10lint: allow(error-discarded-result)
    profile.validate();
    if (batch <= 0)
        fatal("generateTrace: batch must be positive");

    Rng rng(profile.seed ^
            (static_cast<std::uint64_t>(batch) * 0x9E3779B97F4A7C15ull));

    const Cycles sa_min =
        3 * static_cast<Cycles>(config.saDim) + 1; // rows >= 1
    const Cycles vu_min = 4; // one tile: ld + valu + st + sync

    // --- Operator durations. ---
    const auto sa_us = sampleDurationsUs(
        rng, profile.saOpsPerRequest, profile.saOpUs(batch),
        profile.saOpCv);
    const auto vu_us = sampleDurationsUs(
        rng, profile.vuOpsPerRequest, profile.vuOpUs(batch),
        profile.vuOpCv);

    const double sa_eff = profile.saEff(batch);
    const double vu_lane_flops =
        static_cast<double>(config.vuLanes) * config.vuOpsPerLane;

    std::vector<TensorOperator> sa_ops;
    sa_ops.reserve(sa_us.size());
    for (std::size_t i = 0; i < sa_us.size(); ++i) {
        TensorOperator op;
        op.kind = OpKind::SA;
        op.name = std::string(kSaNames[i % std::size(kSaNames)]) +
                  "." + std::to_string(i);
        Cycles cycles = std::max(sa_min, config.usToCycles(sa_us[i]));
        op.saRows = cycles - 3 * static_cast<Cycles>(config.saDim);
        op.computeCycles =
            3 * static_cast<Cycles>(config.saDim) + op.saRows;
        // Achieved FLOPs: one dim x dim MAC block per streamed row,
        // derated by the padding efficiency.
        op.flops = static_cast<double>(op.saRows) * config.saDim *
                   config.saDim * 2.0 * sa_eff;
        sa_ops.push_back(std::move(op));
    }

    std::vector<TensorOperator> vu_ops;
    vu_ops.reserve(vu_us.size());
    for (std::size_t i = 0; i < vu_us.size(); ++i) {
        TensorOperator op;
        op.kind = OpKind::VU;
        op.name = std::string(kVuNames[i % std::size(kVuNames)]) +
                  "." + std::to_string(i);
        const Cycles target =
            std::max(vu_min, config.usToCycles(vu_us[i]));
        // [ld, valu, st] per tile plus a trailing sync.
        const std::uint64_t tiles = std::max<std::uint64_t>(
            1, (static_cast<std::uint64_t>(target) - 1) / 3);
        op.vuElements = tiles * config.vuLanes;
        op.computeCycles = tiles * 3 + 1;
        op.flops = static_cast<double>(tiles) * vu_lane_flops *
                   profile.vuEff;
        vu_ops.push_back(std::move(op));
    }

    // --- Interleave: spread VU operators across the SA stream the
    // way fused DNN layers do (matmul -> activations -> ...). ---
    RequestTrace trace;
    trace.ops.reserve(sa_ops.size() + vu_ops.size());
    const std::size_t n_sa = sa_ops.size();
    const std::size_t n_vu = vu_ops.size();
    std::size_t vu_next = 0;
    for (std::size_t i = 0; i < n_sa; ++i) {
        trace.ops.push_back(std::move(sa_ops[i]));
        // VU ops following SA op i: even split with remainder spread
        // over the earliest layers.
        const std::size_t until = n_vu * (i + 1) / n_sa;
        while (vu_next < until)
            trace.ops.push_back(std::move(vu_ops[vu_next++]));
    }
    while (vu_next < n_vu)
        trace.ops.push_back(std::move(vu_ops[vu_next++]));

    // --- Dependencies: a chain with occasional side branches
    // (residual connections, parallel heads), Fig. 6. ---
    for (std::size_t i = 0; i < trace.ops.size(); ++i) {
        trace.ops[i].id = static_cast<OpId>(i);
        if (i == 0)
            continue;
        if (i >= 2 && rng.uniform() < profile.branchProb) {
            trace.ops[i].deps = {static_cast<std::uint32_t>(i - 2)};
        } else {
            trace.ops[i].deps = {static_cast<std::uint32_t>(i - 1)};
        }
    }

    // --- Dispatch gaps and aggregate cycles/flops. ---
    Cycles gap_total = 0;
    for (auto &op : trace.ops) {
        op.gapCycles =
            profile.opGapFixedCycles +
            static_cast<Cycles>(profile.opGapFrac *
                                static_cast<double>(op.computeCycles));
        gap_total += op.gapCycles;
        if (op.kind == OpKind::SA)
            trace.saCycles += op.computeCycles;
        else
            trace.vuCycles += op.computeCycles;
        trace.totalFlops += op.flops;
    }

    // --- DMA bytes: distribute the Fig. 7 bandwidth target across
    // operators proportionally to duration, with VU operators
    // vuByteRate x hungrier per cycle. The wall-clock base includes
    // the dispatch gaps so the measured utilization hits the target.
    const double wall_scale =
        static_cast<double>(trace.computeCycles() + gap_total) /
        std::max<double>(1.0,
                         static_cast<double>(trace.computeCycles()));
    const double total_bytes =
        wall_scale * profile.requestBytes(batch);
    const double denom =
        static_cast<double>(trace.saCycles) +
        profile.vuByteRate * static_cast<double>(trace.vuCycles);
    const double sa_rate = denom > 0.0 ? total_bytes / denom : 0.0;
    for (auto &op : trace.ops) {
        const double rate = op.kind == OpKind::SA
                                ? sa_rate
                                : sa_rate * profile.vuByteRate;
        op.dmaBytes = static_cast<Bytes>(
            rate * static_cast<double>(op.computeCycles));
        op.workingSetBytes =
            std::min<Bytes>(op.dmaBytes, profile.workingSetCap);
        trace.totalDmaBytes += op.dmaBytes;
    }

    return trace;
}

} // namespace v10
