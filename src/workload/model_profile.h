/**
 * @file
 * Per-model calibration profile.
 *
 * The paper's artifact replays instruction traces captured on real
 * Google Cloud TPUs; those captures are not public. Each ModelProfile
 * instead encodes every per-model statistic the paper publishes —
 * Table 1 operator lengths, the SA/VU intensity split behind
 * Figs. 4/5, the Fig. 3 FLOPS-efficiency ceiling, the Fig. 7 HBM
 * bandwidth target, and memory footprints behind the OOM notes — and
 * the trace generator synthesizes operator streams matching them.
 * See DESIGN.md §2 for the substitution rationale.
 */

#ifndef V10_WORKLOAD_MODEL_PROFILE_H
#define V10_WORKLOAD_MODEL_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace v10 {

/**
 * Calibration parameters for one DNN inference model (Table 4).
 */
struct ModelProfile
{
    std::string name;   ///< "BERT", "ResNet-RS", ...
    std::string abbrev; ///< "BERT", "RNRS", ... (Table 4)
    std::string domain; ///< "NLP", "Recommendation", ...

    /** Reference batch size (32; ShapeMask 8, Mask-RCNN 16). */
    int refBatch = 32;

    /** Mean SA operator length at refBatch, microseconds (Table 1). */
    double saOpUsRef = 0.0;

    /** Mean VU operator length at refBatch, microseconds (Table 1). */
    double vuOpUsRef = 0.0;

    /** SA operators per inference request (batch-invariant). */
    int saOpsPerRequest = 0;

    /** VU operators per inference request (batch-invariant). */
    int vuOpsPerRequest = 0;

    /** Coefficient of variation of SA operator lengths. */
    double saOpCv = 1.0;

    /** Coefficient of variation of VU operator lengths. */
    double vuOpCv = 0.7;

    /** Batch-invariant fraction of SA operator time (weight load,
     * pipeline fill; the rest scales linearly with batch). */
    double saFixedFrac = 0.25;

    /** Batch-invariant fraction of VU operator time. */
    double vuFixedFrac = 0.10;

    /** Asymptotic SA FLOPS efficiency (padding limit, Fig. 3). */
    double saEffMax = 0.7;

    /** Batch at which SA efficiency reaches half of saEffMax. */
    double saEffBatchHalf = 24.0;

    /** VU achieved fraction of peak SIMD issue while busy. */
    double vuEff = 0.8;

    /** Target HBM bandwidth utilization at refBatch (Fig. 7). */
    double hbmBwUtilRef = 0.3;

    /** Fraction of DMA traffic that is batch-invariant (weights). */
    double weightBytesFrac = 0.5;

    /** Activation-byte growth exponent in batch (Transformer's beam
     * search makes this superlinear, footnote 1). */
    double memGrowthExp = 1.0;

    /** VU-to-SA ratio of DMA bytes per busy cycle (element-wise
     * operators are memory-hungrier). */
    double vuByteRate = 3.0;

    /** Per-operator on-chip working-set cap (Fig. 24 spill model). */
    Bytes workingSetCap = 4_MiB;

    /** Resident model bytes in HBM (weights, embeddings). */
    Bytes modelBytes = 512_MiB;

    /** Activation bytes per batched sample. */
    Bytes actBytesPerSample = 16_MiB;

    /** Probability that an operator forms a parallel side branch in
     * the dependency DAG (Fig. 6 slack). */
    double branchProb = 0.08;

    /**
     * Post-operator dispatch gap as a fraction of the operator's
     * duration (kernel launch / infeed / sync bubbles). Calibrates
     * the single-tenant MXU/VPU temporal utilization of Figs. 4/5
     * ("MXU idle for 48% of the total execution time on average").
     */
    double opGapFrac = 0.15;

    /** Fixed per-operator dispatch gap in cycles. */
    Cycles opGapFixedCycles = 300;

    /** Per-model RNG seed for deterministic trace synthesis. */
    std::uint64_t seed = 1;

    /** Mean SA operator length at @p batch, microseconds. */
    double saOpUs(int batch) const;

    /** Mean VU operator length at @p batch, microseconds. */
    double vuOpUs(int batch) const;

    /** SA FLOPS efficiency (fraction of peak while busy) at batch. */
    double saEff(int batch) const;

    /** HBM footprint of the workload at @p batch. */
    Bytes memFootprint(int batch) const;

    /**
     * True if @p batch fits the per-tenant HBM region (half the
     * 32 GB device by default, §3.6's segmentation scheme).
     */
    bool fitsMemory(int batch, Bytes regionBytes) const;

    /**
     * Largest batch from the standard sweep (1..2048) that fits the
     * given HBM region.
     */
    int maxBatch(Bytes regionBytes) const;

    /**
     * Total DMA bytes for one request at @p batch. The volume is a
     * property of the model: hbmBwUtilRef is defined against the
     * reference Table 5 core (330 GB/s at 700 MHz), so the bytes do
     * not change when the workload is compiled for a scaled core.
     */
    double requestBytes(int batch) const;

    /**
     * Canonical "BERT@32"-style cache key for this model at
     * @p batch. Every layer that memoizes per-(model, batch) state
     * (experiment caches, cluster feature caches, the collocation
     * study) keys on this so their entries line up.
     */
    std::string key(int batch) const;

    /** Sanity-check parameter ranges; fatal() on nonsense. */
    void validate() const;
};

/** The standard batch-size sweep used by the characterization figs. */
const std::vector<int> &standardBatchSweep();

/** Reference core bandwidth (Table 5): 330 GB/s at 700 MHz. */
inline constexpr double kRefHbmBytesPerCycle = 330.0 / 0.7;

/** Reference core frequency in GHz (Table 5). */
inline constexpr double kRefFreqGHz = 0.7;

} // namespace v10

#endif // V10_WORKLOAD_MODEL_PROFILE_H
