#include "workload/operator.h"

namespace v10 {

const char *
opKindName(OpKind kind)
{
    return kind == OpKind::SA ? "SA" : "VU";
}

double
TensorOperator::efficiencyVsPeak(double peakFlopsPerCycle) const
{
    if (computeCycles == 0 || peakFlopsPerCycle <= 0.0)
        return 0.0;
    return flops /
           (static_cast<double>(computeCycles) * peakFlopsPerCycle);
}

} // namespace v10
