/**
 * @file
 * A deployed inference workload: one model at one batch size, with
 * its compiled request trace, dependency graph, and derived
 * statistics. Workloads are what V10's scheduler collocates on an
 * NPU core and what the clustering mechanism featurizes.
 */

#ifndef V10_WORKLOAD_WORKLOAD_H
#define V10_WORKLOAD_WORKLOAD_H

#include <memory>
#include <string>

#include "npu/npu_config.h"
#include "workload/model_profile.h"
#include "workload/op_graph.h"
#include "workload/trace_gen.h"

namespace v10 {

/**
 * One tenant workload (model @ batch) ready for deployment.
 */
class Workload
{
  public:
    /**
     * Compile (synthesize) the workload's trace for the given
     * hardware.
     * @param batch inference batch size; 0 selects the model's
     *        reference batch (Table 4)
     */
    Workload(const ModelProfile &profile, int batch,
             const NpuConfig &config);

    /** Convenience: look up the model by name/abbreviation. */
    static Workload fromName(const std::string &nameOrAbbrev,
                             int batch, const NpuConfig &config);

    /**
     * Wrap a pre-built operator trace (loaded from a trace file or
     * constructed by hand) instead of synthesizing one. The profile
     * is only used for labeling and memory accounting.
     */
    Workload(const ModelProfile &profile, int batch,
             RequestTrace trace);

    /** Load a trace saved by saveTraceFile() and wrap it. */
    static Workload fromTraceFile(const std::string &path);

    /** The calibration profile. */
    const ModelProfile &profile() const { return profile_; }

    /** Inference batch size. */
    int batch() const { return batch_; }

    /** "BERT@32"-style label. */
    std::string label() const;

    /** The compiled request trace (replayed every request). */
    const RequestTrace &trace() const { return trace_; }

    /** Dependency-graph analysis (Fig. 6). */
    const OpGraph &graph() const { return *graph_; }

    /** Sum of all operator durations: the stall-free request time. */
    Cycles computeCycles() const { return trace_.computeCycles(); }

    /** Fraction of busy time spent on the systolic array. */
    double saTimeFrac() const;

    /** Achieved FLOPs per request. */
    double flopsPerRequest() const { return trace_.totalFlops; }

    /** Off-chip bytes per request. */
    Bytes bytesPerRequest() const { return trace_.totalDmaBytes; }

    /** HBM footprint at this batch. */
    Bytes memFootprint() const;

  private:
    ModelProfile profile_;
    int batch_;
    RequestTrace trace_;
    std::unique_ptr<OpGraph> graph_;
};

} // namespace v10

#endif // V10_WORKLOAD_WORKLOAD_H
