/**
 * @file
 * The tensor operator: V10's unit of scheduling and preemption. A
 * compiled DNN model is a stream of operators, each of which executes
 * either on the systolic array (matmul/convolution) or on the vector
 * unit (element-wise, reduction, shuffle, ...), per §2.1.
 */

#ifndef V10_WORKLOAD_OPERATOR_H
#define V10_WORKLOAD_OPERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace v10 {

/** Which functional-unit kind an operator executes on. */
enum class OpKind : std::uint8_t { SA, VU };

/** Printable name of an operator kind ("SA"/"VU"). */
const char *opKindName(OpKind kind);

/**
 * One tensor operator of a compiled inference request.
 *
 * Timing is phase-granular: computeCycles is the busy time on the
 * owning functional unit; dmaBytes is the off-chip traffic needed to
 * stage its inputs/instructions (prefetched by the DMA engine while
 * the previous operator executes, §3.2).
 */
struct TensorOperator
{
    /** Position within the request trace. */
    OpId id = 0;

    /** Functional-unit kind this operator requires. */
    OpKind kind = OpKind::SA;

    /** Mnemonic ("matmul.3", "eltwise.17"). */
    std::string name;

    /** Busy cycles on the functional unit. */
    Cycles computeCycles = 0;

    /**
     * Dispatch gap after this operator: kernel launch, infeed sync
     * and pipeline bubbles on the workload's own critical path. The
     * functional unit is free during the gap (another tenant can use
     * it), but this workload's next operator cannot start — the
     * source of the single-tenant temporal idleness in Figs. 4/5.
     */
    Cycles gapCycles = 0;

    /** Achieved FLOPs (below peak * cycles due to padding). */
    double flops = 0.0;

    /** Off-chip bytes staged before execution (pre-inflation). */
    Bytes dmaBytes = 0;

    /** On-chip working set; drives the Fig. 24 spill model. */
    Bytes workingSetBytes = 0;

    /** SA operators: input rows streamed (consistent with cycles). */
    std::uint64_t saRows = 0;

    /** VU operators: elements processed. */
    std::uint64_t vuElements = 0;

    /**
     * Dependency edges: indices (into the request's operator list)
     * of operators that must complete first. Used by the DAG
     * analysis (Fig. 6); execution itself is sequential per §3.2.
     */
    std::vector<std::uint32_t> deps;

    /** Achieved fraction of the FU's peak FLOPs while busy. */
    double efficiencyVsPeak(double peakFlopsPerCycle) const;
};

} // namespace v10

#endif // V10_WORKLOAD_OPERATOR_H
