#include "workload/model_zoo.h"

#include "common/log.h"

namespace v10 {

namespace {

/**
 * Build the Table 4 model list. Per-model numbers trace back to the
 * paper as follows:
 *  - saOpUsRef / vuOpUsRef: Table 1 verbatim.
 *  - operator counts: chosen so the SA-vs-VU busy-time split matches
 *    the Figs. 4/5 narrative (BERT/ResNet/ResNet-RS/Transformer are
 *    MXU-intensive; DLRM/NCF/ShapeMask are VPU-intensive).
 *  - saEffMax/saEffBatchHalf: tuned so Fig. 3 FLOPS utilization at
 *    the reference batch lands where the paper reports it (< 50%).
 *  - hbmBwUtilRef: Fig. 7 at the reference batch.
 *  - memGrowthExp > 1 only for Transformer (footnote 1: beam search
 *    grows memory traffic with batch).
 *  - modelBytes/actBytesPerSample: sized so the largest batch that
 *    fits a 16 GiB HBM region matches the batches that "fail due to
 *    insufficient memory" in Fig. 3.
 */
std::vector<ModelProfile>
buildZoo()
{
    std::vector<ModelProfile> zoo;

    ModelProfile m;

    // --- BERT: NLP, heavily MXU-bound, long SA operators. ---
    m = ModelProfile{};
    m.name = "BERT";
    m.abbrev = "BERT";
    m.domain = "Natural Language Processing";
    m.refBatch = 32;
    m.saOpUsRef = 877.0;
    m.vuOpUsRef = 34.7;
    m.saOpsPerRequest = 24;
    m.vuOpsPerRequest = 53;
    m.saOpCv = 0.9;
    m.vuOpCv = 0.7;
    m.saEffMax = 0.75;
    m.saEffBatchHalf = 20.0;
    m.hbmBwUtilRef = 0.25;
    m.weightBytesFrac = 0.45;
    m.workingSetCap = 12_MiB;
    m.modelBytes = 680_MiB;
    m.actBytesPerSample = 24_MiB;
    m.branchProb = 0.04;
    m.opGapFrac = 0.05;
    m.seed = 0xB3470001;
    zoo.push_back(m);

    // --- DLRM: recommendation, VPU/memory-bound, tiny operators. ---
    m = ModelProfile{};
    m.name = "DLRM";
    m.abbrev = "DLRM";
    m.domain = "Recommendation";
    m.refBatch = 32;
    m.saOpUsRef = 17.0;
    m.vuOpUsRef = 4.43;
    m.saOpsPerRequest = 2;
    m.vuOpsPerRequest = 62;
    m.saOpCv = 0.5;
    m.vuOpCv = 0.6;
    m.saEffMax = 0.5;
    m.saEffBatchHalf = 32.0;
    m.hbmBwUtilRef = 0.70;
    m.weightBytesFrac = 0.55; // embedding-table reads dominate
    m.vuByteRate = 4.0;
    m.workingSetCap = 2_MiB;
    m.modelBytes = 2_GiB; // embedding tables
    m.actBytesPerSample = 4_MiB;
    m.branchProb = 0.20;
    m.opGapFrac = 0.08;
    m.seed = 0xB3470002;
    zoo.push_back(m);

    // --- EfficientNet: balanced image classifier. ---
    m = ModelProfile{};
    m.name = "EfficientNet";
    m.abbrev = "ENet";
    m.domain = "Image Classification";
    m.refBatch = 32;
    m.saOpUsRef = 105.0;
    m.vuOpUsRef = 69.0;
    m.saOpsPerRequest = 40;
    m.vuOpsPerRequest = 26;
    m.saOpCv = 0.8;
    m.vuOpCv = 0.8;
    m.saEffMax = 0.65;
    m.saEffBatchHalf = 28.0;
    m.hbmBwUtilRef = 0.35;
    m.workingSetCap = 6_MiB;
    m.modelBytes = 100_MiB;
    m.actBytesPerSample = 12_MiB;
    m.branchProb = 0.08;
    m.opGapFrac = 0.08;
    m.seed = 0xB3470003;
    zoo.push_back(m);

    // --- Mask-RCNN: detection+segmentation, reference batch 16. ---
    m = ModelProfile{};
    m.name = "Mask-RCNN";
    m.abbrev = "MRCN";
    m.domain = "Object Detection & Segmentation";
    m.refBatch = 16;
    m.saOpUsRef = 138.0;
    m.vuOpUsRef = 14.6;
    m.saOpsPerRequest = 60;
    m.vuOpsPerRequest = 142;
    m.saOpCv = 1.0;
    m.vuOpCv = 0.9;
    m.saEffMax = 0.6;
    m.saEffBatchHalf = 16.0;
    m.hbmBwUtilRef = 0.30;
    m.workingSetCap = 8_MiB;
    m.modelBytes = 512_MiB;
    m.actBytesPerSample = 200_MiB;
    m.branchProb = 0.10;
    m.opGapFrac = 0.06;
    m.seed = 0xB3470004;
    zoo.push_back(m);

    // --- MNIST: tiny classifier, few operators. ---
    m = ModelProfile{};
    m.name = "MNIST";
    m.abbrev = "MNST";
    m.domain = "Image Classification";
    m.refBatch = 32;
    m.saOpUsRef = 180.0;
    m.vuOpUsRef = 202.0;
    m.saOpsPerRequest = 6;
    m.vuOpsPerRequest = 4;
    m.saOpCv = 0.6;
    m.vuOpCv = 0.6;
    m.saEffMax = 0.45;
    m.saEffBatchHalf = 48.0;
    m.hbmBwUtilRef = 0.45;
    m.workingSetCap = 1_MiB;
    m.modelBytes = 16_MiB;
    m.actBytesPerSample = 512_KiB;
    m.branchProb = 0.05;
    m.opGapFrac = 0.08;
    m.seed = 0xB3470005;
    zoo.push_back(m);

    // --- NCF: recommendation, VPU-intensive (pairs with BERT). ---
    m = ModelProfile{};
    m.name = "NCF";
    m.abbrev = "NCF";
    m.domain = "Recommendation";
    m.refBatch = 32;
    m.saOpUsRef = 430.0;
    m.vuOpUsRef = 17.1;
    m.saOpsPerRequest = 2;
    m.vuOpsPerRequest = 150;
    m.saOpCv = 0.5;
    m.vuOpCv = 0.7;
    m.saEffMax = 0.5;
    m.saEffBatchHalf = 32.0;
    m.hbmBwUtilRef = 0.60;
    m.vuByteRate = 3.5;
    m.workingSetCap = 2_MiB;
    m.modelBytes = 1_GiB;
    m.actBytesPerSample = 2_MiB;
    m.branchProb = 0.15;
    m.opGapFrac = 0.10;
    m.seed = 0xB3470006;
    zoo.push_back(m);

    // --- ResNet: convolution-heavy classifier. ---
    m = ModelProfile{};
    m.name = "ResNet";
    m.abbrev = "RsNt";
    m.domain = "Image Classification";
    m.refBatch = 32;
    m.saOpUsRef = 154.0;
    m.vuOpUsRef = 12.8;
    m.saOpsPerRequest = 53;
    m.vuOpsPerRequest = 112;
    m.saOpCv = 0.8;
    m.vuOpCv = 0.7;
    m.saEffMax = 0.80;
    m.saEffBatchHalf = 24.0;
    m.hbmBwUtilRef = 0.35;
    m.workingSetCap = 6_MiB;
    m.modelBytes = 100_MiB;
    m.actBytesPerSample = 12_MiB;
    m.branchProb = 0.06;
    m.opGapFrac = 0.05;
    m.seed = 0xB3470007;
    zoo.push_back(m);

    // --- ResNet-RS: scaled-up ResNet, very long SA operators. ---
    m = ModelProfile{};
    m.name = "ResNet-RS";
    m.abbrev = "RNRS";
    m.domain = "Image Classification";
    m.refBatch = 32;
    m.saOpUsRef = 3200.0;
    m.vuOpUsRef = 61.9;
    m.saOpsPerRequest = 14;
    m.vuOpsPerRequest = 80;
    m.saOpCv = 1.1;
    m.vuOpCv = 0.8;
    m.saEffMax = 0.85;
    m.saEffBatchHalf = 20.0;
    m.hbmBwUtilRef = 0.20;
    m.workingSetCap = 16_MiB;
    m.modelBytes = 400_MiB;
    m.actBytesPerSample = 48_MiB;
    m.branchProb = 0.05;
    m.opGapFrac = 0.04;
    m.seed = 0xB3470008;
    zoo.push_back(m);

    // --- RetinaNet: detection, many tiny VU operators. ---
    m = ModelProfile{};
    m.name = "RetinaNet";
    m.abbrev = "RtNt";
    m.domain = "Object Detection";
    m.refBatch = 32;
    m.saOpUsRef = 157.0;
    m.vuOpUsRef = 4.08;
    m.saOpsPerRequest = 20;
    m.vuOpsPerRequest = 380;
    m.saOpCv = 0.9;
    m.vuOpCv = 0.8;
    m.saEffMax = 0.7;
    m.saEffBatchHalf = 24.0;
    m.hbmBwUtilRef = 0.40;
    m.workingSetCap = 4_MiB;
    m.modelBytes = 300_MiB;
    m.actBytesPerSample = 50_MiB;
    m.branchProb = 0.12;
    m.opGapFrac = 0.08;
    m.seed = 0xB3470009;
    zoo.push_back(m);

    // --- ShapeMask: segmentation, VPU-bound, reference batch 8. ---
    m = ModelProfile{};
    m.name = "ShapeMask";
    m.abbrev = "SMask";
    m.domain = "Object Detection & Segmentation";
    m.refBatch = 8;
    m.saOpUsRef = 1910.0;
    m.vuOpUsRef = 20.2;
    m.saOpsPerRequest = 3;
    m.vuOpsPerRequest = 392;
    m.saOpCv = 0.8;
    m.vuOpCv = 0.9;
    m.saEffMax = 0.6;
    m.saEffBatchHalf = 12.0;
    m.hbmBwUtilRef = 0.50;
    m.workingSetCap = 10_MiB;
    m.modelBytes = 512_MiB;
    m.actBytesPerSample = 400_MiB;
    m.branchProb = 0.12;
    m.opGapFrac = 0.08;
    m.seed = 0xB347000A;
    zoo.push_back(m);

    // --- Transformer: NLP with beam-search decode (footnote 1). ---
    m = ModelProfile{};
    m.name = "Transformer";
    m.abbrev = "TFMR";
    m.domain = "Natural Language Processing";
    m.refBatch = 32;
    m.saOpUsRef = 6650.0;
    m.vuOpUsRef = 55.4;
    m.saOpsPerRequest = 4;
    m.vuOpsPerRequest = 65;
    m.saOpCv = 1.0;
    m.vuOpCv = 0.8;
    m.saEffMax = 0.55;
    m.saEffBatchHalf = 24.0;
    m.hbmBwUtilRef = 0.45;
    m.weightBytesFrac = 0.30;
    m.memGrowthExp = 1.35;
    m.workingSetCap = 20_MiB;
    m.modelBytes = 1200_MiB;
    m.actBytesPerSample = 45_MiB;
    m.branchProb = 0.03;
    m.opGapFrac = 0.04;
    m.seed = 0xB347000B;
    zoo.push_back(m);

    for (const auto &profile : zoo)
        // ModelProfile::validate() is void (fatals internally).
        // v10lint: allow(error-discarded-result)
        profile.validate();
    return zoo;
}

} // namespace

const std::vector<ModelProfile> &
modelZoo()
{
    static const std::vector<ModelProfile> zoo = buildZoo();
    return zoo;
}

const ModelProfile &
findModel(const std::string &nameOrAbbrev)
{
    const ModelProfile *m = tryFindModel(nameOrAbbrev);
    if (m == nullptr)
        fatal("findModel: unknown model '", nameOrAbbrev, "'");
    return *m;
}

const ModelProfile *
tryFindModel(const std::string &nameOrAbbrev)
{
    for (const ModelProfile &m : modelZoo()) {
        if (m.name == nameOrAbbrev || m.abbrev == nameOrAbbrev)
            return &m;
    }
    return nullptr;
}

bool
hasModel(const std::string &nameOrAbbrev)
{
    for (const ModelProfile &m : modelZoo()) {
        if (m.name == nameOrAbbrev || m.abbrev == nameOrAbbrev)
            return true;
    }
    return false;
}

const std::vector<std::pair<std::string, std::string>> &
evaluationPairs()
{
    static const std::vector<std::pair<std::string, std::string>>
        pairs = {
            {"BERT", "NCF"},   {"BERT", "RtNt"},  {"RsNt", "RtNt"},
            {"NCF", "RsNt"},   {"BERT", "TFMR"},  {"BERT", "DLRM"},
            {"RNRS", "SMask"}, {"ENet", "RsNt"},  {"MNST", "NCF"},
            {"DLRM", "RsNt"},  {"RNRS", "MRCN"},
        };
    return pairs;
}

const std::vector<std::pair<std::string, std::string>> &
characterizationPairs()
{
    static const std::vector<std::pair<std::string, std::string>>
        pairs = [] {
            auto all = evaluationPairs();
            all.insert(all.end(), {{"MNST", "RNRS"},
                                   {"BERT", "RsNt"},
                                   {"DLRM", "RtNt"},
                                   {"DLRM", "NCF"}});
            return all;
        }();
    return pairs;
}

} // namespace v10
