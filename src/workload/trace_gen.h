/**
 * @file
 * Synthetic operator-trace generation.
 *
 * Given a ModelProfile and a batch size, emits the operator stream of
 * one inference request such that:
 *  - the sample means of SA/VU operator lengths match the profile's
 *    Table 1 values exactly at the reference batch (durations are
 *    lognormally spread and then rescaled);
 *  - SA operator cycles are consistent with the weight-stationary
 *    pipeline model (dim + rows + 2*dim);
 *  - total DMA bytes hit the profile's Fig. 7 bandwidth target;
 *  - the dependency DAG carries the small residual parallelism that
 *    bounds Fig. 6's ideal speedup.
 *
 * Generation is deterministic: (model seed, batch) fully determine
 * the trace.
 */

#ifndef V10_WORKLOAD_TRACE_GEN_H
#define V10_WORKLOAD_TRACE_GEN_H

#include <vector>

#include "npu/npu_config.h"
#include "workload/model_profile.h"
#include "workload/operator.h"

namespace v10 {

/**
 * One inference request's compiled operator stream plus aggregate
 * statistics (cached at generation time).
 */
struct RequestTrace
{
    std::vector<TensorOperator> ops;

    Cycles saCycles = 0;      ///< total SA busy cycles
    Cycles vuCycles = 0;      ///< total VU busy cycles
    double totalFlops = 0.0;  ///< achieved FLOPs per request
    Bytes totalDmaBytes = 0;  ///< off-chip traffic per request

    /** Sum of all operator durations (no stalls). */
    Cycles computeCycles() const { return saCycles + vuCycles; }

    /** Number of SA operators. */
    std::size_t saOpCount() const;

    /** Number of VU operators. */
    std::size_t vuOpCount() const;

    /** Mean SA operator length in cycles (0 if none). */
    double meanSaOpCycles() const;

    /** Mean VU operator length in cycles (0 if none). */
    double meanVuOpCycles() const;
};

/**
 * Generate the request trace of @p profile at @p batch on hardware
 * @p config.
 */
RequestTrace generateTrace(const ModelProfile &profile, int batch,
                           const NpuConfig &config);

} // namespace v10

#endif // V10_WORKLOAD_TRACE_GEN_H
