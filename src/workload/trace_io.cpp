#include "workload/trace_io.h"

#include <fstream>
#include <sstream>

#include "common/log.h"

namespace v10 {

void
saveTrace(std::ostream &os, const TraceHeader &header,
          const RequestTrace &trace)
{
    os << "# v10-trace v1\n";
    os << "model " << header.model << " batch " << header.batch
       << " ops " << trace.ops.size() << '\n';
    for (const TensorOperator &op : trace.ops) {
        os << "op " << op.id << ' ' << opKindName(op.kind) << ' '
           << op.name << ' ' << op.computeCycles << ' ' << op.flops
           << ' ' << op.dmaBytes << ' ' << op.workingSetBytes << ' '
           << (op.kind == OpKind::SA ? op.saRows : op.vuElements)
           << " deps";
        for (auto d : op.deps)
            os << ' ' << d;
        os << '\n';
    }
}

RequestTrace
loadTrace(std::istream &is, TraceHeader &header)
{
    std::string line;
    if (!std::getline(is, line) || line != "# v10-trace v1")
        fatal("loadTrace: bad magic line");
    if (!std::getline(is, line))
        fatal("loadTrace: missing header line");
    {
        std::istringstream hs(line);
        std::string kw_model, kw_batch, kw_ops;
        std::size_t op_count = 0;
        hs >> kw_model >> header.model >> kw_batch >> header.batch >>
            kw_ops >> op_count;
        if (!hs || kw_model != "model" || kw_batch != "batch" ||
            kw_ops != "ops")
            fatal("loadTrace: malformed header: ", line);
    }

    RequestTrace trace;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string kw_op, kind_str, kw_deps;
        TensorOperator op;
        std::uint64_t geometry = 0;
        ls >> kw_op >> op.id >> kind_str >> op.name >>
            op.computeCycles >> op.flops >> op.dmaBytes >>
            op.workingSetBytes >> geometry >> kw_deps;
        if (!ls || kw_op != "op" || kw_deps != "deps")
            fatal("loadTrace: malformed op line: ", line);
        if (kind_str == "SA") {
            op.kind = OpKind::SA;
            op.saRows = geometry;
        } else if (kind_str == "VU") {
            op.kind = OpKind::VU;
            op.vuElements = geometry;
        } else {
            fatal("loadTrace: bad op kind '", kind_str, "'");
        }
        std::uint32_t dep = 0;
        while (ls >> dep)
            op.deps.push_back(dep);

        if (op.kind == OpKind::SA)
            trace.saCycles += op.computeCycles;
        else
            trace.vuCycles += op.computeCycles;
        trace.totalFlops += op.flops;
        trace.totalDmaBytes += op.dmaBytes;
        trace.ops.push_back(std::move(op));
    }
    return trace;
}

void
saveTraceFile(const std::string &path, const TraceHeader &header,
              const RequestTrace &trace)
{
    std::ofstream os(path);
    if (!os)
        fatal("saveTraceFile: cannot open ", path);
    saveTrace(os, header, trace);
}

RequestTrace
loadTraceFile(const std::string &path, TraceHeader &header)
{
    std::ifstream is(path);
    if (!is)
        fatal("loadTraceFile: cannot open ", path);
    return loadTrace(is, header);
}

} // namespace v10
