#include "workload/trace_io.h"

#include <fstream>
#include <sstream>

#include "common/log.h"

namespace v10 {

void
saveTrace(std::ostream &os, const TraceHeader &header,
          const RequestTrace &trace)
{
    os << "# v10-trace v1\n";
    os << "model " << header.model << " batch " << header.batch
       << " ops " << trace.ops.size() << '\n';
    for (const TensorOperator &op : trace.ops) {
        os << "op " << op.id << ' ' << opKindName(op.kind) << ' '
           << op.name << ' ' << op.computeCycles << ' ' << op.flops
           << ' ' << op.dmaBytes << ' ' << op.workingSetBytes << ' '
           << (op.kind == OpKind::SA ? op.saRows : op.vuElements)
           << " deps";
        for (auto d : op.deps)
            os << ' ' << d;
        os << '\n';
    }
}

Result<RequestTrace>
parseTrace(std::istream &is, TraceHeader &header,
           const std::string &source)
{
    std::string line;
    std::size_t lineno = 0;

    ++lineno;
    if (!std::getline(is, line) || line != "# v10-trace v1")
        return parseError("bad magic line (want '# v10-trace v1')",
                          source, lineno, line);
    ++lineno;
    if (!std::getline(is, line))
        return parseError("missing header line", source, lineno);
    std::size_t declared_ops = 0;
    {
        std::istringstream hs(line);
        std::string kw_model, kw_batch, kw_ops;
        hs >> kw_model >> header.model >> kw_batch >> header.batch >>
            kw_ops >> declared_ops;
        if (!hs || kw_model != "model" || kw_batch != "batch" ||
            kw_ops != "ops")
            return parseError("malformed header line", source, lineno,
                              line);
        if (header.batch <= 0)
            return parseError("batch must be positive", source,
                              lineno, std::to_string(header.batch));
    }

    RequestTrace trace;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string kw_op, kind_str, kw_deps;
        TensorOperator op;
        std::uint64_t geometry = 0;
        ls >> kw_op >> op.id >> kind_str >> op.name >>
            op.computeCycles >> op.flops >> op.dmaBytes >>
            op.workingSetBytes >> geometry >> kw_deps;
        if (!ls || kw_op != "op" || kw_deps != "deps")
            return parseError("malformed op line", source, lineno,
                              line);
        if (kind_str == "SA") {
            op.kind = OpKind::SA;
            op.saRows = geometry;
        } else if (kind_str == "VU") {
            op.kind = OpKind::VU;
            op.vuElements = geometry;
        } else {
            return parseError("bad op kind (want SA or VU)", source,
                              lineno, kind_str);
        }
        if (op.computeCycles == 0)
            return parseError("computeCycles must be positive",
                              source, lineno, op.name);
        if (op.flops < 0.0)
            return parseError("flops must be non-negative", source,
                              lineno, op.name);
        std::uint32_t dep = 0;
        while (ls >> dep) {
            if (dep >= trace.ops.size())
                return parseError(
                    "dependency must reference an earlier operator",
                    source, lineno, std::to_string(dep));
            op.deps.push_back(dep);
        }
        if (!ls.eof())
            return parseError("malformed dependency list", source,
                              lineno, line);

        if (op.kind == OpKind::SA)
            trace.saCycles += op.computeCycles;
        else
            trace.vuCycles += op.computeCycles;
        trace.totalFlops += op.flops;
        trace.totalDmaBytes += op.dmaBytes;
        trace.ops.push_back(std::move(op));
    }
    if (trace.ops.size() != declared_ops)
        return parseError("operator count mismatch (header declares " +
                              std::to_string(declared_ops) +
                              ", file has " +
                              std::to_string(trace.ops.size()) + ")",
                          source, lineno);
    return trace;
}

Result<RequestTrace>
parseTraceFile(const std::string &path, TraceHeader &header)
{
    std::ifstream is(path);
    if (!is)
        return parseError("cannot open trace file", path);
    return parseTrace(is, header, path);
}

RequestTrace
loadTrace(std::istream &is, TraceHeader &header)
{
    Result<RequestTrace> r = parseTrace(is, header);
    if (!r)
        fatal("loadTrace: ", r.error().toString());
    return r.take();
}

void
saveTraceFile(const std::string &path, const TraceHeader &header,
              const RequestTrace &trace)
{
    std::ofstream os(path);
    if (!os)
        fatal("saveTraceFile: cannot open ", path);
    saveTrace(os, header, trace);
}

RequestTrace
loadTraceFile(const std::string &path, TraceHeader &header)
{
    Result<RequestTrace> r = parseTraceFile(path, header);
    if (!r)
        fatal("loadTraceFile: ", r.error().toString());
    return r.take();
}

} // namespace v10
