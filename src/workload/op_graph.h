/**
 * @file
 * Operator dependency DAG analysis, used for the Fig. 6 study: the
 * critical path (longest dependency chain, weighted by operator
 * duration) lower-bounds execution time under perfect operator-level
 * parallelism, so total/critical is the "ideal speedup" a compiler
 * could extract from a single workload.
 */

#ifndef V10_WORKLOAD_OP_GRAPH_H
#define V10_WORKLOAD_OP_GRAPH_H

#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "workload/operator.h"

namespace v10 {

/**
 * Dependency analysis over a request's operator list. Non-owning
 * view; the operator vector must outlive the graph.
 */
class OpGraph
{
  public:
    /** Build over @p ops; validates that deps are acyclic-by-index
     * (every edge points to an earlier operator). */
    explicit OpGraph(const std::vector<TensorOperator> &ops);

    /**
     * Structural validation for operator lists from untrusted
     * sources (hand-edited traces, generators under test): checks
     * dependency bounds, self-dependencies, and — via Kahn's
     * topological sort over arbitrary edges — dependency cycles.
     * The cycle diagnostic names the operators on the cycle in
     * order ("a -> b -> a"). Unlike the constructor, edges are NOT
     * required to point to earlier indices.
     */
    static Status validate(const std::vector<TensorOperator> &ops);

    /** Sum of all operator durations (sequential execution time). */
    Cycles totalCycles() const { return total_; }

    /** Longest dependency chain, weighted by duration. */
    Cycles criticalPathCycles() const { return critical_; }

    /**
     * Ideal speedup of perfect intra-workload operator parallelism
     * over sequential execution (Fig. 6): total / critical, >= 1.
     */
    double idealSpeedup() const;

    /**
     * Width histogram helper: the maximum number of operators with
     * no mutual dependency path that could run concurrently
     * (antichain bound via level population).
     */
    std::size_t maxParallelism() const { return max_parallelism_; }

    /** Per-operator earliest start times under ideal parallelism. */
    const std::vector<Cycles> &earliestStarts() const
    {
        return earliest_start_;
    }

  private:
    Cycles total_ = 0;
    Cycles critical_ = 0;
    std::size_t max_parallelism_ = 0;
    std::vector<Cycles> earliest_start_;
};

} // namespace v10

#endif // V10_WORKLOAD_OP_GRAPH_H
