#include "workload/op_graph.h"

#include <algorithm>
#include <map>

#include "common/log.h"

namespace v10 {

OpGraph::OpGraph(const std::vector<TensorOperator> &ops)
{
    earliest_start_.assign(ops.size(), 0);
    std::vector<Cycles> finish(ops.size(), 0);

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const TensorOperator &op = ops[i];
        total_ += op.computeCycles;
        Cycles start = 0;
        for (std::uint32_t dep : op.deps) {
            if (dep >= i)
                fatal("OpGraph: op ", i, " depends on op ", dep,
                      " which is not earlier in the trace");
            start = std::max(start, finish[dep]);
        }
        earliest_start_[i] = start;
        finish[i] = start + op.computeCycles;
        critical_ = std::max(critical_, finish[i]);
    }

    // Estimate peak width: count operators whose [start, finish)
    // windows overlap, sweeping event boundaries.
    std::map<Cycles, int> delta;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        delta[earliest_start_[i]] += 1;
        delta[finish[i]] -= 1;
    }
    int width = 0;
    int peak = 0;
    for (const auto &[cycle, d] : delta) {
        width += d;
        peak = std::max(peak, width);
    }
    max_parallelism_ = static_cast<std::size_t>(peak);
}

double
OpGraph::idealSpeedup() const
{
    if (critical_ == 0)
        return 1.0;
    return static_cast<double>(total_) / static_cast<double>(critical_);
}

} // namespace v10
