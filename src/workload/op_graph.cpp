#include "workload/op_graph.h"

#include <algorithm>
#include <map>

#include "common/log.h"

namespace v10 {

OpGraph::OpGraph(const std::vector<TensorOperator> &ops)
{
    earliest_start_.assign(ops.size(), 0);
    std::vector<Cycles> finish(ops.size(), 0);

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const TensorOperator &op = ops[i];
        total_ += op.computeCycles;
        Cycles start = 0;
        for (std::uint32_t dep : op.deps) {
            if (dep >= i)
                fatal("OpGraph: op ", i, " depends on op ", dep,
                      " which is not earlier in the trace");
            start = std::max(start, finish[dep]);
        }
        earliest_start_[i] = start;
        finish[i] = start + op.computeCycles;
        critical_ = std::max(critical_, finish[i]);
    }

    // Estimate peak width: count operators whose [start, finish)
    // windows overlap, sweeping event boundaries.
    std::map<Cycles, int> delta;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        delta[earliest_start_[i]] += 1;
        delta[finish[i]] -= 1;
    }
    int width = 0;
    int peak = 0;
    for (const auto &[cycle, d] : delta) {
        width += d;
        peak = std::max(peak, width);
    }
    max_parallelism_ = static_cast<std::size_t>(peak);
}

Status
OpGraph::validate(const std::vector<TensorOperator> &ops)
{
    const std::size_t n = ops.size();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::uint32_t dep : ops[i].deps) {
            if (dep >= n)
                return parseError(
                    "op " + std::to_string(i) + " ('" + ops[i].name +
                        "') depends on nonexistent op " +
                        std::to_string(dep),
                    "op-graph", 0, ops[i].name);
            if (dep == i)
                return parseError("op " + std::to_string(i) + " ('" +
                                      ops[i].name +
                                      "') depends on itself",
                                  "op-graph", 0, ops[i].name);
        }
    }

    // Kahn's topological sort over the (dep -> op) edges; leftover
    // positive in-degrees are exactly the nodes on or downstream of
    // a dependency cycle.
    std::vector<std::size_t> indegree(n, 0);
    std::vector<std::vector<std::size_t>> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        indegree[i] = ops[i].deps.size();
        for (std::uint32_t dep : ops[i].deps)
            out[dep].push_back(i);
    }
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < n; ++i) {
        if (indegree[i] == 0)
            frontier.push_back(i);
    }
    std::size_t processed = 0;
    while (!frontier.empty()) {
        const std::size_t u = frontier.back();
        frontier.pop_back();
        ++processed;
        for (std::size_t v : out[u]) {
            if (--indegree[v] == 0)
                frontier.push_back(v);
        }
    }
    if (processed == n)
        return Status::ok();

    // Walk backwards along unresolved dependencies until a node
    // repeats; the revisited suffix is a concrete cycle to report.
    std::size_t start = 0;
    while (indegree[start] == 0)
        ++start;
    std::vector<std::size_t> path;
    std::vector<char> seen(n, 0);
    std::size_t cur = start;
    while (!seen[cur]) {
        seen[cur] = 1;
        path.push_back(cur);
        for (std::uint32_t dep : ops[cur].deps) {
            if (indegree[dep] != 0) {
                cur = dep;
                break;
            }
        }
    }
    std::string diag = "dependency cycle: ";
    bool in_cycle = false;
    for (std::size_t node : path) {
        if (node == cur)
            in_cycle = true;
        if (!in_cycle)
            continue;
        diag += "'" + ops[node].name + "' -> ";
    }
    diag += "'" + ops[cur].name + "'";
    return parseError(diag, "op-graph", 0, ops[cur].name);
}

double
OpGraph::idealSpeedup() const
{
    if (critical_ == 0)
        return 1.0;
    return static_cast<double>(total_) / static_cast<double>(critical_);
}

} // namespace v10
