/**
 * @file
 * The eleven MLPerf / TPU-reference inference models of Table 4, with
 * calibration parameters matching every per-model statistic published
 * in the paper (see ModelProfile and DESIGN.md §2).
 */

#ifndef V10_WORKLOAD_MODEL_ZOO_H
#define V10_WORKLOAD_MODEL_ZOO_H

#include <string>
#include <vector>

#include "workload/model_profile.h"

namespace v10 {

/** All Table 4 models, in the paper's order. */
const std::vector<ModelProfile> &modelZoo();

/** Lookup by full name or abbreviation; fatal() if unknown. */
const ModelProfile &findModel(const std::string &nameOrAbbrev);

/** Recoverable lookup; nullptr if unknown (CLI validation paths). */
const ModelProfile *tryFindModel(const std::string &nameOrAbbrev);

/** True if a model with this name/abbreviation exists. */
bool hasModel(const std::string &nameOrAbbrev);

/**
 * The 11 collocation pairs of the evaluation figures (Figs. 16-24),
 * in the paper's order, as (DNN1, DNN2) abbreviations.
 */
const std::vector<std::pair<std::string, std::string>> &
evaluationPairs();

/**
 * The 15 pairs of the Fig. 9 characterization (evaluationPairs plus
 * the four contention-heavy pairs).
 */
const std::vector<std::pair<std::string, std::string>> &
characterizationPairs();

} // namespace v10

#endif // V10_WORKLOAD_MODEL_ZOO_H
