#include "workload/model_profile.h"

#include <cmath>

#include "common/log.h"

namespace v10 {

double
ModelProfile::saOpUs(int batch) const
{
    const double scale = static_cast<double>(batch) / refBatch;
    return saOpUsRef * (saFixedFrac + (1.0 - saFixedFrac) * scale);
}

double
ModelProfile::vuOpUs(int batch) const
{
    const double scale = static_cast<double>(batch) / refBatch;
    return vuOpUsRef * (vuFixedFrac + (1.0 - vuFixedFrac) * scale);
}

double
ModelProfile::saEff(int batch) const
{
    const double b = static_cast<double>(batch);
    return saEffMax * b / (b + saEffBatchHalf);
}

Bytes
ModelProfile::memFootprint(int batch) const
{
    return modelBytes +
           actBytesPerSample * static_cast<Bytes>(batch);
}

bool
ModelProfile::fitsMemory(int batch, Bytes regionBytes) const
{
    return memFootprint(batch) <= regionBytes;
}

std::string
ModelProfile::key(int batch) const
{
    return abbrev + "@" + std::to_string(batch);
}

int
ModelProfile::maxBatch(Bytes regionBytes) const
{
    int best = 0;
    for (int b : standardBatchSweep()) {
        if (fitsMemory(b, regionBytes))
            best = b;
    }
    return best;
}

double
ModelProfile::requestBytes(int batch) const
{
    const double cyc_per_us = kRefFreqGHz * 1e3;
    const double ref_cycles =
        (saOpsPerRequest * saOpUs(refBatch) +
         vuOpsPerRequest * vuOpUs(refBatch)) *
        cyc_per_us;
    const double ref_bytes =
        hbmBwUtilRef * kRefHbmBytesPerCycle * ref_cycles;
    const double growth =
        std::pow(static_cast<double>(batch) / refBatch, memGrowthExp);
    return ref_bytes *
           (weightBytesFrac + (1.0 - weightBytesFrac) * growth);
}

void
ModelProfile::validate() const
{
    if (name.empty() || abbrev.empty())
        fatal("ModelProfile: missing name");
    if (refBatch <= 0)
        fatal(name, ": refBatch must be positive");
    if (saOpUsRef <= 0.0 || vuOpUsRef <= 0.0)
        fatal(name, ": Table 1 operator lengths must be positive");
    if (saOpsPerRequest <= 0 || vuOpsPerRequest <= 0)
        fatal(name, ": operator counts must be positive");
    if (saEffMax <= 0.0 || saEffMax > 1.0)
        fatal(name, ": saEffMax must be in (0, 1]");
    if (vuEff <= 0.0 || vuEff > 1.0)
        fatal(name, ": vuEff must be in (0, 1]");
    if (hbmBwUtilRef <= 0.0 || hbmBwUtilRef >= 1.0)
        fatal(name, ": hbmBwUtilRef must be in (0, 1)");
    if (weightBytesFrac < 0.0 || weightBytesFrac > 1.0)
        fatal(name, ": weightBytesFrac must be in [0, 1]");
    if (branchProb < 0.0 || branchProb > 0.5)
        fatal(name, ": branchProb must be in [0, 0.5]");
    if (saFixedFrac < 0.0 || saFixedFrac >= 1.0 ||
        vuFixedFrac < 0.0 || vuFixedFrac >= 1.0)
        fatal(name, ": fixed-time fractions must be in [0, 1)");
    if (vuByteRate <= 0.0)
        fatal(name, ": vuByteRate must be positive");
    if (opGapFrac < 0.0 || opGapFrac >= 1.0)
        fatal(name, ": opGapFrac must be in [0, 1)");
}

const std::vector<int> &
standardBatchSweep()
{
    static const std::vector<int> sweep = {1,   8,   32,  64,  128,
                                           256, 512, 1024, 2048};
    return sweep;
}

} // namespace v10
