/**
 * @file
 * Text serialization of request traces, mirroring the paper's
 * trace-replay workflow: traces can be generated once, saved, and
 * replayed by the simulator (or inspected/edited by hand).
 *
 * Format (one operator per line):
 *
 *   # v10-trace v1
 *   model <name> batch <batch> ops <count>
 *   op <id> <SA|VU> <name> <cycles> <flops> <dmaBytes> <wsBytes>
 *      <rowsOrElements> deps <d0> <d1> ...
 */

#ifndef V10_WORKLOAD_TRACE_IO_H
#define V10_WORKLOAD_TRACE_IO_H

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "workload/trace_gen.h"

namespace v10 {

/** Metadata carried alongside a serialized trace. */
struct TraceHeader
{
    std::string model;
    int batch = 0;
};

/** Write @p trace with @p header to @p os. */
void saveTrace(std::ostream &os, const TraceHeader &header,
               const RequestTrace &trace);

/**
 * Parse a trace written by saveTrace(), recoverably.
 *
 * Strict validation: version magic, header keywords, operator kind,
 * positive compute cycles, dependencies referencing strictly earlier
 * operators, and an operator count matching the header. Errors carry
 * @p source, the 1-based line number, and the offending token.
 *
 * @param is input stream
 * @param header receives the metadata
 * @param source label used in diagnostics (file path, "<stream>")
 * @return the reconstructed trace (aggregates recomputed), or a
 *         ParseError
 */
Result<RequestTrace> parseTrace(std::istream &is, TraceHeader &header,
                                const std::string &source =
                                    "<trace>");

/** parseTrace() over a file; a missing file is a ParseError too. */
Result<RequestTrace> parseTraceFile(const std::string &path,
                                    TraceHeader &header);

/** Legacy wrapper: parseTrace() that fatal()s on malformed input. */
RequestTrace loadTrace(std::istream &is, TraceHeader &header);

/** saveTrace() to a file path; fatal() if unwritable. */
void saveTraceFile(const std::string &path, const TraceHeader &header,
                   const RequestTrace &trace);

/** Legacy wrapper: parseTraceFile() that fatal()s on any error. */
RequestTrace loadTraceFile(const std::string &path,
                           TraceHeader &header);

} // namespace v10

#endif // V10_WORKLOAD_TRACE_IO_H
