#include "workload/workload.h"

#include "common/log.h"
#include "workload/model_zoo.h"
#include "workload/trace_io.h"

namespace v10 {

Workload::Workload(const ModelProfile &profile, int batch,
                   const NpuConfig &config)
    : profile_(profile),
      batch_(batch > 0 ? batch : profile.refBatch),
      trace_(generateTrace(profile, batch_, config)),
      graph_(std::make_unique<OpGraph>(trace_.ops))
{
}

Workload
Workload::fromName(const std::string &nameOrAbbrev, int batch,
                   const NpuConfig &config)
{
    return Workload(findModel(nameOrAbbrev), batch, config);
}

Workload::Workload(const ModelProfile &profile, int batch,
                   RequestTrace trace)
    : profile_(profile),
      batch_(batch > 0 ? batch : profile.refBatch),
      trace_(std::move(trace)),
      graph_(std::make_unique<OpGraph>(trace_.ops))
{
    if (trace_.ops.empty())
        fatal("Workload: empty trace");
}

Workload
Workload::fromTraceFile(const std::string &path)
{
    TraceHeader header;
    RequestTrace trace = loadTraceFile(path, header);
    if (!hasModel(header.model))
        fatal("Workload::fromTraceFile: trace references unknown "
              "model '",
              header.model, "'");
    return Workload(findModel(header.model), header.batch,
                    std::move(trace));
}

std::string
Workload::label() const
{
    return profile_.abbrev + "@" + std::to_string(batch_);
}

double
Workload::saTimeFrac() const
{
    const auto total = static_cast<double>(trace_.computeCycles());
    if (total <= 0.0)
        return 0.0;
    return static_cast<double>(trace_.saCycles) / total;
}

Bytes
Workload::memFootprint() const
{
    return profile_.memFootprint(batch_);
}

} // namespace v10
