#include "v10/report.h"

#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "common/json.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "metrics/run_report.h"
#include "v10/experiment.h"
#include "v10/sweep.h"
#include "workload/model_zoo.h"

namespace v10 {

namespace {

/** Markdown table row helper. */
void
row(std::ostream &os, const std::vector<std::string> &cells)
{
    os << "|";
    for (const auto &c : cells)
        os << ' ' << c << " |";
    os << '\n';
}

void
separator(std::ostream &os, std::size_t cols)
{
    os << "|";
    for (std::size_t i = 0; i < cols; ++i)
        os << "---|";
    os << '\n';
}

} // namespace

void
writeEvaluationReport(std::ostream &os, const ReportOptions &options)
{
    ExperimentRunner runner(options.config);

    os << "# " << options.title << "\n\n";
    os << "Hardware: `" << options.config.summary() << "`\n\n";
    os << "Measured requests per tenant per run: "
       << options.requests << " (after warmup). All numbers are "
       << "deterministic.\n\n";

    // --- Run everything once (pair x design grid, fanned over
    // options.jobs threads; the grid is bit-identical for any jobs
    // count). ---
    struct PairData
    {
        std::string label;
        std::map<SchedulerKind, RunStats> byKind;
    };
    SweepRunner sweep(runner, options.jobs);
    const auto &kinds = allSchedulerKinds();
    SchedulerOptions cell_base;
    cell_base.engineJobs = options.engineJobs;
    std::vector<RunStats> grid = sweep.runPairs(
        evaluationPairs(), kinds, options.requests, cell_base);
    std::vector<PairData> pairs;
    std::size_t cell = 0;
    for (const auto &[a, b] : evaluationPairs()) {
        PairData data;
        data.label = a + "+" + b;
        for (SchedulerKind kind : kinds)
            data.byKind.emplace(kind, std::move(grid[cell++]));
        pairs.push_back(std::move(data));
    }

    // --- Headline geomeans. ---
    std::vector<double> util_gain;
    std::vector<double> stp_gain;
    std::vector<double> lat_gain;
    std::vector<double> tail_gain;
    for (const auto &p : pairs) {
        const RunStats &pmt = p.byKind.at(SchedulerKind::Pmt);
        const RunStats &full = p.byKind.at(SchedulerKind::V10Full);
        if (pmt.combinedUtil > 0.0)
            util_gain.push_back(full.combinedUtil /
                                pmt.combinedUtil);
        if (pmt.stp() > 0.0)
            stp_gain.push_back(full.stp() / pmt.stp());
        for (int t = 0; t < 2; ++t) {
            lat_gain.push_back(pmt.workloads[t].avgLatencyUs /
                               full.workloads[t].avgLatencyUs);
            tail_gain.push_back(pmt.workloads[t].p95LatencyUs /
                                full.workloads[t].p95LatencyUs);
        }
    }

    os << "## Headline (V10-Full vs PMT, geomean over "
       << pairs.size() << " pairs)\n\n";
    row(os, {"metric", "paper", "this run"});
    separator(os, 3);
    row(os, {"NPU utilization", "1.64x",
             formatDouble(geomean(util_gain), 2) + "x"});
    row(os, {"aggregated throughput", "1.57x",
             formatDouble(geomean(stp_gain), 2) + "x"});
    row(os, {"average latency", "1.56x",
             formatDouble(geomean(lat_gain), 2) + "x"});
    row(os, {"95th-percentile latency", "1.74x",
             formatDouble(geomean(tail_gain), 2) + "x"});
    os << '\n';

    // --- Per-pair throughput (Fig. 18). ---
    os << "## Throughput by design (STP; Fig. 18)\n\n";
    row(os, {"pair", "PMT", "V10-Base", "V10-Fair", "V10-Full",
             "Full/PMT"});
    separator(os, 6);
    for (const auto &p : pairs) {
        const double pmt = p.byKind.at(SchedulerKind::Pmt).stp();
        const double full =
            p.byKind.at(SchedulerKind::V10Full).stp();
        row(os,
            {p.label, formatDouble(pmt, 3),
             formatDouble(p.byKind.at(SchedulerKind::V10Base).stp(),
                          3),
             formatDouble(p.byKind.at(SchedulerKind::V10Fair).stp(),
                          3),
             formatDouble(full, 3),
             formatDouble(pmt > 0.0 ? full / pmt : 0.0, 2) + "x"});
    }
    os << '\n';

    // --- Utilization & overlap (Figs. 16/17). ---
    os << "## Utilization and overlap under V10-Full "
          "(Figs. 16/17)\n\n";
    row(os, {"pair", "SA", "VU", "HBM", "SA&VU overlap",
             "fairness"});
    separator(os, 6);
    for (const auto &p : pairs) {
        const RunStats &full = p.byKind.at(SchedulerKind::V10Full);
        row(os, {p.label, formatPct(full.saUtil),
                 formatPct(full.vuUtil), formatPct(full.hbmUtil),
                 formatPct(full.overlapBothFrac),
                 formatDouble(full.fairness(), 2)});
    }
    os << '\n';

    // --- Preemption economics (Fig. 21). ---
    os << "## Preemption economics (Fig. 21)\n\n";
    row(os, {"pair", "PMT ovhd", "Full ovhd", "PMT preempts/req",
             "Full preempts/req"});
    separator(os, 5);
    for (const auto &p : pairs) {
        const auto &pmt0 =
            p.byKind.at(SchedulerKind::Pmt).workloads[0];
        const auto &full0 =
            p.byKind.at(SchedulerKind::V10Full).workloads[0];
        row(os, {p.label, formatPct(pmt0.ctxOverheadFrac, 2),
                 formatPct(full0.ctxOverheadFrac, 2),
                 formatDouble(pmt0.preemptsPerRequest(), 1),
                 formatDouble(full0.preemptsPerRequest(), 1)});
    }
    os << '\n';
    os << "Generated by `v10sim report`; see EXPERIMENTS.md for the "
          "full paper-vs-measured discussion.\n";

    // --- Structured JSON companion (--stats-json). ---
    if (!options.statsJsonPath.empty()) {
        std::ofstream js(options.statsJsonPath);
        if (!js)
            fatal("report: cannot open stats JSON path '",
                  options.statsJsonPath, "'");
        JsonWriter w(js);
        w.beginObject();
        w.key("manifest");
        w.beginObject();
        w.kv("tool", "v10sim report");
        w.kv("config", options.config.summary());
        w.kv("requests", options.requests);
        w.key("schedulers");
        w.beginArray();
        for (SchedulerKind kind : kinds)
            w.value(schedulerKindName(kind));
        w.endArray();
        w.endObject();
        w.key("grid");
        w.beginObject();
        for (const auto &p : pairs) {
            w.key(p.label);
            w.beginObject();
            for (const auto &[kind, stats] : p.byKind) {
                w.key(schedulerKindName(kind));
                writeRunStatsJson(w, stats);
            }
            w.endObject();
        }
        w.endObject();
        w.endObject();
        js << '\n';
    }
}

void
writeEvaluationReportFile(const std::string &path,
                          const ReportOptions &options)
{
    std::ofstream os(path);
    if (!os)
        fatal("writeEvaluationReportFile: cannot open ", path);
    writeEvaluationReport(os, options);
}

} // namespace v10
