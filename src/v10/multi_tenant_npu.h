/**
 * @file
 * The top-level public API of the V10 framework — what a downstream
 * user instantiates to study multi-tenant serving on an NPU:
 *
 * @code
 *   v10::MultiTenantNpu npu;                       // Table 5 core
 *   npu.addWorkload("BERT");                       // reference batch
 *   npu.addWorkload("NCF", 32, 1.0);
 *   v10::RunStats stats = npu.run();
 *   std::cout << stats.summary() << "\n";
 * @endcode
 */

#ifndef V10_V10_MULTI_TENANT_NPU_H
#define V10_V10_MULTI_TENANT_NPU_H

#include <string>
#include <vector>

#include "v10/experiment.h"

namespace v10 {

/**
 * Facade over the simulator + scheduler + metrics stack.
 */
class MultiTenantNpu
{
  public:
    /**
     * @param config hardware configuration (default: Table 5)
     * @param kind scheduler design (default: the full V10)
     */
    explicit MultiTenantNpu(NpuConfig config = NpuConfig{},
                            SchedulerKind kind =
                                SchedulerKind::V10Full);

    /**
     * Deploy a workload.
     * @param model Table 4 name or abbreviation
     * @param batch inference batch size (0 = reference batch)
     * @param priority relative priority for SLA enforcement
     */
    void addWorkload(const std::string &model, int batch = 0,
                     double priority = 1.0);

    /** Remove all deployed workloads. */
    void clearWorkloads();

    /** Select the scheduler design. */
    void setScheduler(SchedulerKind kind) { kind_ = kind; }

    /** Current scheduler design. */
    SchedulerKind scheduler() const { return kind_; }

    /** Override the preemption-timer period (0 = Table 5 value). */
    void setTimeSlice(Cycles cycles) { options_.sliceOverride = cycles; }

    /** Engine worker-pool size for the domain-partitioned simulator
     * (0 = serial merged); never changes results, only strategy. */
    void setEngineJobs(std::size_t jobs) { options_.engineJobs = jobs; }

    /** Hardware configuration in use. */
    const NpuConfig &config() const { return runner_.config(); }

    /** Deployed workloads. */
    const std::vector<TenantRequest> &workloads() const
    {
        return tenants_;
    }

    /**
     * Run the closed-loop measurement (§5.1) and return the full
     * statistics record, with normalized progress filled in against
     * dedicated-core references.
     */
    RunStats run(std::uint64_t requests =
                     ExperimentRunner::kDefaultRequests,
                 std::uint64_t warmup =
                     ExperimentRunner::kDefaultWarmup);

    /** Dedicated-core reference statistics for one workload. */
    const RunStats &singleTenantReference(const std::string &model,
                                          int batch = 0);

  private:
    ExperimentRunner runner_;
    SchedulerKind kind_;
    SchedulerOptions options_;
    std::vector<TenantRequest> tenants_;
};

} // namespace v10

#endif // V10_V10_MULTI_TENANT_NPU_H
