/**
 * @file
 * The experiment runner: builds a fresh simulator + NPU core +
 * scheduler for a set of tenant workloads, runs the closed-loop
 * measurement of §5.1, and normalizes per-tenant progress against
 * cached single-tenant (dedicated core) references.
 */

#ifndef V10_V10_EXPERIMENT_H
#define V10_V10_EXPERIMENT_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/once_cache.h"
#include "metrics/run_stats.h"
#include "npu/npu_config.h"
#include "sched/scheduler_factory.h"
#include "workload/workload.h"

namespace v10 {

/** One tenant request: model, batch, priority, offered load. */
struct TenantRequest
{
    std::string model;     ///< name or abbreviation (Table 4)
    int batch = 0;         ///< 0 = the model's reference batch
    double priority = 1.0; ///< relative priority
    /** Open-loop offered load in requests/s (0 = closed loop). */
    double arrivalRps = 0.0;
};

/**
 * Runs experiments over one hardware configuration, caching
 * workload compilation and single-tenant references.
 *
 * Thread safety: run(), runPair(), workload(), singleTenant(), and
 * singleTenantRps() may be called concurrently from any number of
 * SweepRunner / ParallelExecutor workers. The compilation and
 * reference caches compute each entry exactly once (concurrent
 * requesters block on the in-flight computation), and every
 * simulation builds its own Simulator + core + scheduler, so
 * parallel sweeps are bit-identical to serial ones.
 */
class ExperimentRunner
{
  public:
    /** @param config hardware configuration (validated) */
    explicit ExperimentRunner(NpuConfig config = NpuConfig{});

    /** Default measured requests per tenant per run. */
    static constexpr std::uint64_t kDefaultRequests = 25;

    /** Default warmup requests per tenant per run. */
    static constexpr std::uint64_t kDefaultWarmup = 3;

    /** The hardware configuration. */
    const NpuConfig &config() const { return config_; }

    /**
     * Run @p kind over the given tenants; fills each workload's
     * normalizedProgress from the cached single-tenant rate.
     */
    RunStats run(SchedulerKind kind,
                 const std::vector<TenantRequest> &tenants,
                 std::uint64_t requests = kDefaultRequests,
                 std::uint64_t warmup = kDefaultWarmup,
                 const SchedulerOptions &options = SchedulerOptions{});

    /** Two-tenant convenience used by the pair figures. */
    RunStats runPair(SchedulerKind kind, const std::string &modelA,
                     const std::string &modelB,
                     double priorityA = 1.0, double priorityB = 1.0,
                     std::uint64_t requests = kDefaultRequests,
                     const SchedulerOptions &options =
                         SchedulerOptions{});

    /**
     * Single-tenant (dedicated core) reference run for a workload;
     * cached per (model, batch).
     */
    const RunStats &singleTenant(const std::string &model, int batch);

    /** Single-tenant request completion rate (requests/second). */
    double singleTenantRps(const std::string &model, int batch);

    /** Compiled workload, cached per (model, batch). */
    const Workload &workload(const std::string &model, int batch);

    /** Resolve batch 0 to the model's reference batch. */
    int resolveBatch(const std::string &model, int batch) const;

    /**
     * Test instrumentation: invoked (possibly from a worker thread)
     * each time a cache entry is actually *computed* — with key
     * "wl:BERT@32" for a workload compilation and "ref:BERT@32" for
     * a single-tenant reference run. Cache hits do not fire it, so
     * the concurrency tests can assert exactly-once computation.
     * Set it before the first concurrent use; the hook itself must
     * be thread-safe.
     */
    void setComputeHook(
        std::function<void(const std::string &)> hook)
    {
        compute_hook_ = std::move(hook);
    }

  private:
    NpuConfig config_;
    OnceCache<Workload> workloads_;
    OnceCache<RunStats> single_cache_;
    std::function<void(const std::string &)> compute_hook_;

    std::string key(const std::string &model, int batch) const;
    void noteCompute(const std::string &what,
                     const std::string &key) const;
};

} // namespace v10

#endif // V10_V10_EXPERIMENT_H
