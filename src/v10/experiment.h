/**
 * @file
 * The experiment runner: builds a fresh simulator + NPU core +
 * scheduler for a set of tenant workloads, runs the closed-loop
 * measurement of §5.1, and normalizes per-tenant progress against
 * cached single-tenant (dedicated core) references.
 */

#ifndef V10_V10_EXPERIMENT_H
#define V10_V10_EXPERIMENT_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "metrics/run_stats.h"
#include "npu/npu_config.h"
#include "sched/scheduler_factory.h"
#include "workload/workload.h"

namespace v10 {

/** One tenant request: model, batch, priority, offered load. */
struct TenantRequest
{
    std::string model;     ///< name or abbreviation (Table 4)
    int batch = 0;         ///< 0 = the model's reference batch
    double priority = 1.0; ///< relative priority
    /** Open-loop offered load in requests/s (0 = closed loop). */
    double arrivalRps = 0.0;
};

/**
 * Runs experiments over one hardware configuration, caching
 * workload compilation and single-tenant references.
 */
class ExperimentRunner
{
  public:
    /** @param config hardware configuration (validated) */
    explicit ExperimentRunner(NpuConfig config = NpuConfig{});

    /** Default measured requests per tenant per run. */
    static constexpr std::uint64_t kDefaultRequests = 25;

    /** Default warmup requests per tenant per run. */
    static constexpr std::uint64_t kDefaultWarmup = 3;

    /** The hardware configuration. */
    const NpuConfig &config() const { return config_; }

    /**
     * Run @p kind over the given tenants; fills each workload's
     * normalizedProgress from the cached single-tenant rate.
     */
    RunStats run(SchedulerKind kind,
                 const std::vector<TenantRequest> &tenants,
                 std::uint64_t requests = kDefaultRequests,
                 std::uint64_t warmup = kDefaultWarmup,
                 const SchedulerOptions &options = SchedulerOptions{});

    /** Two-tenant convenience used by the pair figures. */
    RunStats runPair(SchedulerKind kind, const std::string &modelA,
                     const std::string &modelB,
                     double priorityA = 1.0, double priorityB = 1.0,
                     std::uint64_t requests = kDefaultRequests,
                     const SchedulerOptions &options =
                         SchedulerOptions{});

    /**
     * Single-tenant (dedicated core) reference run for a workload;
     * cached per (model, batch).
     */
    const RunStats &singleTenant(const std::string &model, int batch);

    /** Single-tenant request completion rate (requests/second). */
    double singleTenantRps(const std::string &model, int batch);

    /** Compiled workload, cached per (model, batch). */
    const Workload &workload(const std::string &model, int batch);

    /** Resolve batch 0 to the model's reference batch. */
    int resolveBatch(const std::string &model, int batch) const;

  private:
    NpuConfig config_;
    std::map<std::string, std::unique_ptr<Workload>> workloads_;
    std::map<std::string, RunStats> single_cache_;

    std::string key(const std::string &model, int batch) const;
};

} // namespace v10

#endif // V10_V10_EXPERIMENT_H
