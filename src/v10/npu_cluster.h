/**
 * @file
 * The §3.5 "Put It All Together" layer: a fleet of V10 NPU cores
 * serving a pool of inference workloads. Before deployment the
 * advisor is trained offline (profile -> PCA -> K-Means ->
 * inter-cluster pair profiling, Fig. 14); at dispatch time workload
 * groups with complementary resource demands are placed on the same
 * core and every core runs the V10 operator scheduler.
 *
 * Dispatch policies under comparison:
 *  - NoSharing: one workload per core (Fig. 1a);
 *  - RandomPairing: arbitrary pairs (the Table 2 "Random" scheme);
 *  - ClusteredPairing: greedy best-predicted pairs, collocating only
 *    above the 1.3x threshold (§3.4).
 */

#ifndef V10_V10_NPU_CLUSTER_H
#define V10_V10_NPU_CLUSTER_H

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "v10/collocation_advisor.h"
#include "v10/experiment.h"

namespace v10 {

/** Fleet-level dispatch schemes. */
enum class DispatchPolicy {
    NoSharing,
    RandomPairing,
    ClusteredPairing,
};

/** Printable name of a dispatch policy. */
const char *dispatchPolicyName(DispatchPolicy policy);

/** Configuration of the serving fleet. */
struct ClusterConfig
{
    NpuConfig core{};          ///< per-core hardware (Table 5)
    std::size_t numCores = 4;  ///< cores in the fleet
    SchedulerKind scheduler = SchedulerKind::V10Full;
    std::uint64_t requests = 10; ///< measured requests per tenant
    std::uint64_t warmup = 2;
    double collocationThreshold = 1.3;
    /** Threads for advisor training and per-core fleet simulation;
     * results are identical for any value (1 = serial). */
    std::size_t jobs = 1;
};

/** Outcome of one fleet dispatch + run. */
struct ClusterResult
{
    DispatchPolicy policy = DispatchPolicy::NoSharing;

    /** Tenants placed on each core (empty cores omitted). */
    std::vector<std::vector<std::string>> assignment;

    /** Per-core run statistics, aligned with assignment. */
    std::vector<RunStats> perCore;

    /** Sum of normalized progress across every workload: the
     * fleet's aggregate throughput in dedicated-core units. */
    double fleetStp = 0.0;

    /** Cores actually used. */
    std::size_t coresUsed = 0;

    /** Mean SA utilization over used cores. */
    double meanSaUtil = 0.0;
};

/**
 * A fleet of NPU cores with the V10 collocation pipeline.
 */
class NpuCluster
{
  public:
    explicit NpuCluster(ClusterConfig config = ClusterConfig{});

    /** Add a workload to the serving pool; fatal on bad input. */
    void addWorkload(const std::string &model, int batch = 0,
                     double priority = 1.0);

    /** Structured-error variant of addWorkload (unknown model). */
    Status tryAddWorkload(const std::string &model, int batch = 0,
                          double priority = 1.0);

    /** Number of pooled workloads. */
    std::size_t poolSize() const { return pool_.size(); }

    /**
     * Offline training (Fig. 14): profile the pool's distinct
     * workloads, featurize them, and train the clustering
     * collocator against simulated pair performance. Fatal on an
     * empty pool.
     */
    void trainAdvisor(std::uint64_t profileRequests = 6);

    /** Structured-error variant of trainAdvisor (empty pool). */
    Status tryTrainAdvisor(std::uint64_t profileRequests = 6);

    /** True after trainAdvisor(). */
    bool advisorTrained() const { return advisor_ != nullptr; }

    /**
     * Assign the pool to cores under @p policy and simulate every
     * core. ClusteredPairing requires trainAdvisor() first.
     * Fatal on an empty pool, missing training, or overflow.
     * @param seed randomization seed (RandomPairing shuffle)
     */
    ClusterResult dispatchAndRun(DispatchPolicy policy,
                                 std::uint64_t seed = 1);

    /**
     * Structured-error variant of dispatchAndRun: an empty pool, an
     * untrained advisor under ClusteredPairing, and a fleet smaller
     * than the grouping needs all return a ParseError instead of
     * killing the process.
     */
    Result<ClusterResult> tryDispatchAndRun(DispatchPolicy policy,
                                            std::uint64_t seed = 1);

    /** The advisor's predicted gain for two pooled workloads;
     * fatal when the advisor is untrained. */
    double predictedGain(const std::string &modelA,
                         const std::string &modelB);

    /** Structured-error variant of predictedGain (untrained
     * advisor, unknown model). */
    Result<double> tryPredictedGain(const std::string &modelA,
                                    const std::string &modelB);

  private:
    /** Distinct (model, batch) keys in the pool. */
    std::vector<std::string> distinctModels() const;

    /** Features of a pooled workload (profiled lazily). */
    const WorkloadFeatures &features(const std::string &model,
                                     int batch);

    /** Greedy best-predicted pairing above the threshold. */
    std::vector<std::vector<std::size_t>> pairClustered();

    /** Seeded random pairing. */
    std::vector<std::vector<std::size_t>>
    pairRandom(std::uint64_t seed);

    ClusterConfig config_;
    ExperimentRunner runner_;
    std::vector<TenantRequest> pool_;
    std::map<std::string, WorkloadFeatures> feature_cache_;
    std::unique_ptr<ClusteringCollocator> advisor_;
    std::uint64_t profile_requests_ = 6;
};

} // namespace v10

#endif // V10_V10_NPU_CLUSTER_H
