/**
 * @file
 * Parallel experiment sweeps: fans independent (scheduler,
 * tenant-mix, run-length) cells of an experiment grid across a
 * ParallelExecutor and collects RunStats in cell order.
 *
 * Every cell builds its own Simulator + NPU core + scheduler inside
 * ExperimentRunner::run(), and the runner's caches compute each
 * shared workload / single-tenant reference exactly once, so a sweep
 * with jobs=N is bit-identical to the same sweep with jobs=1 (proved
 * by tests/test_parallel_executor.cpp across all scheduler kinds).
 */

#ifndef V10_V10_SWEEP_H
#define V10_V10_SWEEP_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel_executor.h"
#include "common/result.h"
#include "v10/experiment.h"

namespace v10 {

/** One cell of an experiment sweep grid. */
struct SweepCell
{
    SchedulerKind kind = SchedulerKind::V10Full;
    std::vector<TenantRequest> tenants;
    std::uint64_t requests = ExperimentRunner::kDefaultRequests;
    std::uint64_t warmup = ExperimentRunner::kDefaultWarmup;
    SchedulerOptions options{};
    std::string label; ///< optional display label ("BERT+NCF/PMT")
};

/**
 * Structured validation of one sweep cell: known models, positive
 * batch/priority, finite non-negative arrival rates, a positive
 * request target. @p index labels the cell in the diagnostic.
 */
Status validateSweepCell(const SweepCell &cell, std::size_t index);

/** validateSweepCell() over a whole grid; first failure wins. */
Status validateSweepCells(const std::vector<SweepCell> &cells);

/**
 * Runs sweep cells over a shared ExperimentRunner with a fixed
 * number of jobs. Results are returned in submission order
 * regardless of completion order.
 */
class SweepRunner
{
  public:
    /**
     * @param runner shared experiment runner (its caches are
     *        thread-safe; the reference must outlive the sweep)
     * @param jobs concurrency; 1 = serial, 0 = hardware threads
     */
    explicit SweepRunner(ExperimentRunner &runner,
                         std::size_t jobs = 1);

    /** Configured concurrency. */
    std::size_t jobs() const { return exec_.jobs(); }

    /** The underlying runner. */
    ExperimentRunner &runner() { return runner_; }

    /** Run every cell; result i corresponds to cells[i]. */
    std::vector<RunStats> run(const std::vector<SweepCell> &cells);

    /**
     * Convenience pair grid: run every (pair, kind) combination,
     * returned row-major (pair-major, kind-minor) — the layout the
     * figure benches consume.
     */
    std::vector<RunStats>
    runPairs(const std::vector<std::pair<std::string, std::string>>
                 &pairs,
             const std::vector<SchedulerKind> &kinds,
             std::uint64_t requests,
             const SchedulerOptions &base = SchedulerOptions{});

    /** Build the cells runPairs() executes (exposed for tests);
     * every cell inherits @p base (per-run engine knobs). */
    static std::vector<SweepCell> pairGrid(
        const std::vector<std::pair<std::string, std::string>>
            &pairs,
        const std::vector<SchedulerKind> &kinds,
        std::uint64_t requests,
        const SchedulerOptions &base = SchedulerOptions{});

  private:
    ExperimentRunner &runner_;
    ParallelExecutor exec_;
};

} // namespace v10

#endif // V10_V10_SWEEP_H
