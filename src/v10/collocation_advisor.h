/**
 * @file
 * The clustering-based workload collocation mechanism of §3.4, plus
 * the Random and Heuristic baselines and the cross-validation study
 * behind Table 2.
 *
 * Training: standardize features -> PCA -> K-Means -> profile the
 * average pairwise collocation performance between clusters.
 * Inference: map both workloads to clusters and predict the cluster
 * pair's profiled performance; collocate when it clears the 1.3x
 * threshold.
 */

#ifndef V10_V10_COLLOCATION_ADVISOR_H
#define V10_V10_COLLOCATION_ADVISOR_H

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "collocate/kmeans.h"
#include "collocate/pca.h"
#include "collocate/standardizer.h"
#include "common/once_cache.h"
#include "npu/npu_config.h"
#include "v10/experiment.h"
#include "v10/features.h"

namespace v10 {

/** Measured collocation performance of a model pair (by abbrev). */
using PairPerfFn =
    std::function<double(const std::string &, const std::string &)>;

/**
 * The trained clustering collocator.
 */
class ClusteringCollocator
{
  public:
    /** Training hyper-parameters. */
    struct Options
    {
        std::size_t clusters = 5;      ///< K-Means k (Fig. 15)
        std::size_t pcaComponents = 2; ///< kept principal components
        double threshold = 1.3;        ///< beneficial-pair cutoff
        std::uint64_t seed = 11;
        /** Threads for the pairwise profiling of train(); the
         * profiled matrix is identical for any value (@p perf must
         * be thread-safe when > 1). */
        std::size_t jobs = 1;
    };

    explicit ClusteringCollocator(Options options);

    /** Defaults: Options{}. */
    ClusteringCollocator();

    /**
     * Offline training (Fig. 14 left): cluster the training
     * workloads and profile inter-cluster pair performance via
     * @p perf (which sees only training workloads).
     */
    void train(const std::vector<WorkloadFeatures> &training,
               const PairPerfFn &perf);

    /** Online inference: predicted collocation performance. */
    double predictPerf(const WorkloadFeatures &a,
                       const WorkloadFeatures &b) const;

    /** Collocate? (predicted perf >= threshold) */
    bool predictBeneficial(const WorkloadFeatures &a,
                           const WorkloadFeatures &b) const;

    /** Cluster of a workload under the trained model. */
    std::size_t clusterOf(const WorkloadFeatures &features) const;

    /** Number of clusters. */
    std::size_t clusters() const { return options_.clusters; }

    /** Profiled mean performance of a cluster pair (NaN if the
     * training set had no sample pair). */
    double clusterPairPerf(std::size_t a, std::size_t b) const;

    /** Labels of the training samples (Fig. 15 scatter). */
    const std::vector<std::size_t> &trainingLabels() const
    {
        return training_labels_;
    }

  private:
    Options options_;
    bool trained_ = false;
    std::unique_ptr<Standardizer> standardizer_;
    std::unique_ptr<Pca> pca_;
    KMeansResult kmeans_;
    std::vector<std::size_t> training_labels_;
    std::vector<std::vector<double>> cluster_perf_;
    std::vector<std::vector<int>> cluster_perf_count_;
    double global_mean_perf_ = 1.0;
};

/** Heuristic baseline: collocate when aggregated SA, VU, and HBM
 * utilizations each stay within capacity (§3.4). */
bool heuristicPredict(const WorkloadFeatures &a,
                      const WorkloadFeatures &b);

/**
 * Confusion-matrix outcome of one collocation scheme (Table 2).
 * Rates follow the paper's convention: TP+FN = 100% of actual
 * positives, TN+FP = 100% of actual negatives.
 */
struct SchemeOutcome
{
    std::string scheme;
    int tp = 0, tn = 0, fp = 0, fn = 0;
    double worstPerf = 0.0; ///< worst actual perf among predicted
                            ///< positives (1.0 if none predicted)

    double accuracy() const;
    double tpRate() const;
    double tnRate() const;
    double fpRate() const;
    double fnRate() const;
};

/**
 * The Table 2 study: ground-truth collocation performance for every
 * model pair (brute force), and leave-two-models-out cross
 * validation of the three schemes.
 */
class CollocationStudy
{
  public:
    /**
     * @param config hardware configuration
     * @param requests measured requests per simulation (larger =
     *        slower, steadier ground truth)
     * @param threshold beneficial-pair cutoff (paper: 1.3x)
     * @param jobs threads for the O(models²) brute-force profiling
     *        of build(); results are identical for any value
     */
    explicit CollocationStudy(const NpuConfig &config,
                              std::uint64_t requests = 12,
                              double threshold = 1.3,
                              std::size_t jobs = 1);

    /** Profile all models, simulate all pair perfs (idempotent). */
    void build();

    /** Ground truth: STP(V10-Full) / STP(PMT) for a model pair. */
    double pairPerf(const std::string &a, const std::string &b);

    /** Features of one model at its reference batch. */
    const WorkloadFeatures &features(const std::string &model);

    /** All model abbreviations under study. */
    const std::vector<std::string> &models() const { return models_; }

    /** Evaluate the always-collocate Random baseline on all pairs. */
    SchemeOutcome evaluateRandom();

    /** Evaluate the Heuristic baseline on all pairs. */
    SchemeOutcome evaluateHeuristic();

    /**
     * Evaluate the clustering scheme with leave-two-models-out cross
     * validation: for every pair of held-out models, train on the
     * remaining nine and predict every pair that involves a held-out
     * model (§3.4's protocol).
     */
    SchemeOutcome evaluateClustering();

    /** evaluateClustering with explicit hyper-parameters. */
    SchemeOutcome
    evaluateClustering(ClusteringCollocator::Options options);

    /** Fraction of pairs that are actually beneficial. */
    double positiveRate();

    /** All pairs with their ground-truth performance, sorted
     * ascending (for inspection and the bench's --truth mode). */
    std::vector<std::pair<std::string, double>> groundTruth();

  private:
    /** Record one prediction into an outcome. */
    void score(SchemeOutcome &outcome, double actual,
               bool predicted) const;

    ExperimentRunner runner_;
    std::uint64_t requests_;
    double threshold_;
    std::size_t jobs_;
    bool built_ = false;
    std::vector<std::string> models_;
    std::map<std::string, WorkloadFeatures> features_;
    /** One feature point per (model, batch) variant (Fig. 15). */
    std::vector<WorkloadFeatures> variant_features_;
    /** Ground-truth pair performance; compute-once and safe to
     * populate from build()'s parallel workers. */
    OnceCache<double> perf_;

    std::string pairKey(const std::string &a,
                        const std::string &b) const;
};

} // namespace v10

#endif // V10_V10_COLLOCATION_ADVISOR_H
