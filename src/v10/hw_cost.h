/**
 * @file
 * Hardware cost model of V10's tensor operator scheduler (Table 3).
 *
 * The paper prototyped the scheduler in Verilog and synthesized it
 * with the FreePDK-15nm library; without the flow we embed the four
 * synthesized design points verbatim and extrapolate the same trends
 * for other configurations:
 *  - context-table storage from the Fig. 11 row layout (exact),
 *  - arbitration latency growing with tenants and FU-port count,
 *  - area/power linear in table size and logarithmic in tenants,
 * all normalized to a Google TPUv3 core.
 */

#ifndef V10_V10_HW_COST_H
#define V10_V10_HW_COST_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace v10 {

/**
 * Table 3 row: cost of one scheduler configuration.
 */
struct SchedulerHwCost
{
    std::uint32_t numSa = 1;
    std::uint32_t numVu = 1;
    std::uint32_t workloads = 2;

    Bytes contextTableBytes = 0; ///< Fig. 11 layout, exact
    Cycles latencyCycles = 0;    ///< scheduling-decision latency
    double areaPct = 0.0;        ///< % of a TPUv3 core
    double powerPct = 0.0;       ///< % of a TPUv3 core

    /** True if this point was synthesized in the paper (vs
     * extrapolated by the model). */
    bool synthesized = false;
};

/**
 * Cost of a scheduler with the given FU counts and tenant count.
 */
SchedulerHwCost schedulerHwCost(std::uint32_t numSa,
                                std::uint32_t numVu,
                                std::uint32_t workloads);

/** The four synthesized configurations of Table 3, in order. */
const std::vector<SchedulerHwCost> &table3Configs();

} // namespace v10

#endif // V10_V10_HW_COST_H
