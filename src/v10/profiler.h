/**
 * @file
 * Single-workload profiler: the §2.2 characterization study. Runs
 * each (model, batch) dedicated on one core and extracts the metrics
 * behind Figs. 3-8 (FLOPS utilization, MXU/VPU temporal utilization,
 * HBM bandwidth, roofline coordinates, DAG ideal speedup).
 */

#ifndef V10_V10_PROFILER_H
#define V10_V10_PROFILER_H

#include <string>
#include <vector>

#include "npu/npu_config.h"
#include "workload/model_profile.h"

namespace v10 {

/**
 * Characterization results of one (model, batch) point.
 */
struct SingleProfile
{
    std::string model;  ///< abbreviation
    int batch = 0;
    bool oom = false;   ///< did not fit the HBM region (skipped)

    double flopsUtil = 0.0;   ///< Fig. 3
    double mxuUtil = 0.0;     ///< Fig. 4 (SA temporal utilization)
    double vpuUtil = 0.0;     ///< Fig. 5 (VU temporal utilization)
    double idealSpeedup = 1.0;///< Fig. 6 (DAG bound)
    double hbmUtil = 0.0;     ///< Fig. 7
    double opIntensity = 0.0; ///< Fig. 8 x-axis (FLOPs/byte)
    double tflops = 0.0;      ///< Fig. 8 y-axis (achieved TFLOP/s)

    double meanSaOpUs = 0.0;  ///< Table 1
    double meanVuOpUs = 0.0;  ///< Table 1
    double maxSaOpUs = 0.0;
    double maxVuOpUs = 0.0;

    double requestLatencyUs = 0.0;
    double requestsPerSec = 0.0;
};

/**
 * HBM region available to one hosted workload for the out-of-memory
 * check (§3.6 segments the HBM; we host two tenants per device).
 */
inline constexpr Bytes kHbmRegionBytes = 16_GiB;

/** Profile one (model, batch); sets oom instead of running when the
 * footprint exceeds kHbmRegionBytes. */
SingleProfile profileSingle(const NpuConfig &config,
                            const ModelProfile &model, int batch,
                            std::uint64_t requests = 8);

/**
 * Profile every Table 4 model over the standard batch sweep.
 * @param jobs fan the independent (model, batch) simulations over
 *        this many threads (1 = serial); the output order and every
 *        profile value are identical for any jobs count.
 */
std::vector<SingleProfile>
profileAllModels(const NpuConfig &config, std::uint64_t requests = 8,
                 std::size_t jobs = 1);

} // namespace v10

#endif // V10_V10_PROFILER_H
