#include "v10/features.h"

#include <cmath>

#include "common/log.h"

namespace v10 {

namespace {

/** log10 with a floor to keep tiny operator lengths finite. */
double
safeLog10(double v)
{
    return std::log10(std::max(v, 1e-3));
}

} // namespace

const std::vector<std::string> &
WorkloadFeatures::names()
{
    static const std::vector<std::string> names = {
        "sa_util",       "vu_util",       "hbm_util",
        "log_sa_op_us",  "log_vu_op_us",  "log_max_sa_op_us",
        "log_max_vu_op_us", "sa_share",
    };
    return names;
}

WorkloadFeatures
extractFeatures(const SingleProfile &profile)
{
    if (profile.oom)
        fatal("extractFeatures: cannot featurize an OOM profile (",
              profile.model, "@", profile.batch, ")");
    WorkloadFeatures f;
    f.model = profile.model;
    f.batch = profile.batch;
    const double busy = profile.mxuUtil + profile.vpuUtil;
    f.values = {
        profile.mxuUtil,
        profile.vpuUtil,
        profile.hbmUtil,
        safeLog10(profile.meanSaOpUs),
        safeLog10(profile.meanVuOpUs),
        safeLog10(profile.maxSaOpUs),
        safeLog10(profile.maxVuOpUs),
        busy > 0.0 ? profile.mxuUtil / busy : 0.0,
    };
    return f;
}

} // namespace v10
