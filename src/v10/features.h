/**
 * @file
 * Workload featurization for the clustering-based collocation
 * mechanism (§3.4): "workload features related to resource
 * contentions, including SA/VU utilizations, HBM bandwidth
 * consumption, and operator length statistics".
 */

#ifndef V10_V10_FEATURES_H
#define V10_V10_FEATURES_H

#include <string>
#include <vector>

#include "v10/profiler.h"

namespace v10 {

/**
 * Feature vector of one workload (model @ batch).
 */
struct WorkloadFeatures
{
    std::string model; ///< abbreviation
    int batch = 0;
    std::vector<double> values;

    /** Feature names, in vector order. */
    static const std::vector<std::string> &names();
};

/** Extract the §3.4 feature vector from a single-tenant profile. */
WorkloadFeatures extractFeatures(const SingleProfile &profile);

} // namespace v10

#endif // V10_V10_FEATURES_H
