#include "v10/multi_tenant_npu.h"

#include "common/log.h"
#include "workload/model_zoo.h"

namespace v10 {

MultiTenantNpu::MultiTenantNpu(NpuConfig config, SchedulerKind kind)
    : runner_(config), kind_(kind)
{
}

void
MultiTenantNpu::addWorkload(const std::string &model, int batch,
                            double priority)
{
    if (!hasModel(model))
        fatal("MultiTenantNpu: unknown model '", model,
              "'; see Table 4 for supported models");
    tenants_.push_back(TenantRequest{model, batch, priority});
}

void
MultiTenantNpu::clearWorkloads()
{
    tenants_.clear();
}

RunStats
MultiTenantNpu::run(std::uint64_t requests, std::uint64_t warmup)
{
    if (tenants_.empty())
        fatal("MultiTenantNpu::run: no workloads deployed");
    return runner_.run(kind_, tenants_, requests, warmup, options_);
}

const RunStats &
MultiTenantNpu::singleTenantReference(const std::string &model,
                                      int batch)
{
    return runner_.singleTenant(model, batch);
}

} // namespace v10
