#include "v10/hw_cost.h"

#include <cmath>

#include "common/log.h"
#include "sched/context_table.h"

namespace v10 {

namespace {

/** One synthesized data point from the paper's Table 3. */
struct SynthPoint
{
    std::uint32_t sas, vus, workloads;
    Cycles latency;
    double areaPct, powerPct;
};

/** FreePDK-15nm synthesis results reported in Table 3. */
constexpr SynthPoint kSynthesized[] = {
    {1, 1, 2, 22, 0.001, 0.303},
    {1, 1, 4, 24, 0.002, 0.324},
    {2, 2, 4, 82, 0.002, 0.325},
    {4, 4, 8, 284, 0.003, 0.346},
};

} // namespace

SchedulerHwCost
schedulerHwCost(std::uint32_t numSa, std::uint32_t numVu,
                std::uint32_t workloads)
{
    if (numSa == 0 || numVu == 0 || workloads == 0)
        fatal("schedulerHwCost: counts must be positive");

    SchedulerHwCost cost;
    cost.numSa = numSa;
    cost.numVu = numVu;
    cost.workloads = workloads;
    cost.contextTableBytes =
        ContextTable::storageBytes(workloads, numSa + numVu);

    for (const SynthPoint &p : kSynthesized) {
        if (p.sas == numSa && p.vus == numVu &&
            p.workloads == workloads) {
            cost.latencyCycles = p.latency;
            cost.areaPct = p.areaPct;
            cost.powerPct = p.powerPct;
            cost.synthesized = true;
            return cost;
        }
    }

    // Extrapolation calibrated on the synthesized points:
    //  - latency: one comparator pass per tenant plus an arbitration
    //    network that grows ~3.6x per doubling of FU pairs;
    //  - area: dominated by the context-table SRAM;
    //  - power: clocking baseline + comparator activity.
    const double pairs = 0.5 * (numSa + numVu);
    const double lat =
        22.0 * std::pow(3.6, std::log2(std::max(pairs, 1.0))) +
        (static_cast<double>(workloads) - 2.0 * pairs);
    cost.latencyCycles =
        static_cast<Cycles>(std::max(1.0, std::round(lat)));
    cost.areaPct =
        0.0005 + 0.0005 * static_cast<double>(cost.contextTableBytes) /
                     43.0;
    cost.powerPct = 0.282 + 0.021 * std::log2(workloads) +
                    0.001 * (pairs - 1.0);
    cost.synthesized = false;
    return cost;
}

const std::vector<SchedulerHwCost> &
table3Configs()
{
    static const std::vector<SchedulerHwCost> configs = [] {
        std::vector<SchedulerHwCost> out;
        for (const SynthPoint &p : kSynthesized)
            out.push_back(schedulerHwCost(p.sas, p.vus, p.workloads));
        return out;
    }();
    return configs;
}

} // namespace v10
