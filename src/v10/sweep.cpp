#include "v10/sweep.h"

#include "sched/scheduler_factory.h"

namespace v10 {

SweepRunner::SweepRunner(ExperimentRunner &runner, std::size_t jobs)
    : runner_(runner),
      exec_(jobs == 0 ? ParallelExecutor::hardwareJobs() : jobs)
{
}

std::vector<RunStats>
SweepRunner::run(const std::vector<SweepCell> &cells)
{
    return exec_.map<RunStats>(cells.size(), [&](std::size_t i) {
        const SweepCell &cell = cells[i];
        return runner_.run(cell.kind, cell.tenants, cell.requests,
                           cell.warmup, cell.options);
    });
}

std::vector<SweepCell>
SweepRunner::pairGrid(
    const std::vector<std::pair<std::string, std::string>> &pairs,
    const std::vector<SchedulerKind> &kinds, std::uint64_t requests)
{
    std::vector<SweepCell> cells;
    cells.reserve(pairs.size() * kinds.size());
    for (const auto &[a, b] : pairs) {
        for (SchedulerKind kind : kinds) {
            SweepCell cell;
            cell.kind = kind;
            cell.tenants = {TenantRequest{a, 0, 1.0},
                            TenantRequest{b, 0, 1.0}};
            cell.requests = requests;
            cell.label =
                a + "+" + b + "/" + schedulerKindName(kind);
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

std::vector<RunStats>
SweepRunner::runPairs(
    const std::vector<std::pair<std::string, std::string>> &pairs,
    const std::vector<SchedulerKind> &kinds, std::uint64_t requests)
{
    return run(pairGrid(pairs, kinds, requests));
}

} // namespace v10
