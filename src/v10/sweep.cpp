#include "v10/sweep.h"

#include <cmath>

#include "sched/scheduler_factory.h"
#include "workload/model_zoo.h"

namespace v10 {

Status
validateSweepCell(const SweepCell &cell, std::size_t index)
{
    const std::string where =
        cell.label.empty() ? "cell " + std::to_string(index)
                           : cell.label;
    const auto bad = [&where](const std::string &message,
                              const std::string &token) {
        return parseError(message, "sweep:" + where, 0, token);
    };
    if (cell.tenants.empty())
        return bad("cell has no tenants", "tenants");
    if (cell.requests == 0)
        return bad("request target must be positive", "requests");
    for (const TenantRequest &req : cell.tenants) {
        if (tryFindModel(req.model) == nullptr)
            return bad("unknown model", req.model);
        if (req.batch < 0)
            return bad("batch must be non-negative (0 = reference)",
                       req.model + "@" + std::to_string(req.batch));
        if (!std::isfinite(req.priority) || req.priority <= 0.0)
            return bad("priority must be positive and finite",
                       req.model);
        if (!std::isfinite(req.arrivalRps) || req.arrivalRps < 0.0)
            return bad("arrival rate must be non-negative and finite",
                       req.model);
    }
    return Status::ok();
}

Status
validateSweepCells(const std::vector<SweepCell> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Status ok = validateSweepCell(cells[i], i);
        if (!ok)
            return ok;
    }
    return Status::ok();
}

SweepRunner::SweepRunner(ExperimentRunner &runner, std::size_t jobs)
    : runner_(runner),
      exec_(jobs == 0 ? ParallelExecutor::hardwareJobs() : jobs)
{
}

std::vector<RunStats>
SweepRunner::run(const std::vector<SweepCell> &cells)
{
    // Fail fast with a structured diagnostic before any worker
    // spawns; an unknown model crashing inside a pool thread would
    // be much harder to attribute.
    validateSweepCells(cells).orDie();
    return exec_.map<RunStats>(cells.size(), [&](std::size_t i) {
        const SweepCell &cell = cells[i];
        return runner_.run(cell.kind, cell.tenants, cell.requests,
                           cell.warmup, cell.options);
    });
}

std::vector<SweepCell>
SweepRunner::pairGrid(
    const std::vector<std::pair<std::string, std::string>> &pairs,
    const std::vector<SchedulerKind> &kinds, std::uint64_t requests,
    const SchedulerOptions &base)
{
    std::vector<SweepCell> cells;
    cells.reserve(pairs.size() * kinds.size());
    for (const auto &[a, b] : pairs) {
        for (SchedulerKind kind : kinds) {
            SweepCell cell;
            cell.kind = kind;
            cell.tenants = {TenantRequest{a, 0, 1.0},
                            TenantRequest{b, 0, 1.0}};
            cell.requests = requests;
            cell.options = base;
            cell.label =
                a + "+" + b + "/" + schedulerKindName(kind);
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

std::vector<RunStats>
SweepRunner::runPairs(
    const std::vector<std::pair<std::string, std::string>> &pairs,
    const std::vector<SchedulerKind> &kinds, std::uint64_t requests,
    const SchedulerOptions &base)
{
    return run(pairGrid(pairs, kinds, requests, base));
}

} // namespace v10
