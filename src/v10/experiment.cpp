#include "v10/experiment.h"

#include "common/log.h"
#include "sim/simulator.h"
#include "workload/model_zoo.h"

namespace v10 {

ExperimentRunner::ExperimentRunner(NpuConfig config)
    : config_(config)
{
    // NpuConfig::validate() is void (fatals internally); the name
    // collides with Status-returning validate() APIs elsewhere.
    // v10lint: allow(error-discarded-result)
    config_.validate();
}

std::string
ExperimentRunner::key(const std::string &model, int batch) const
{
    return findModel(model).key(batch);
}

void
ExperimentRunner::noteCompute(const std::string &what,
                              const std::string &key) const
{
    if (compute_hook_)
        compute_hook_(what + ":" + key);
}

int
ExperimentRunner::resolveBatch(const std::string &model,
                               int batch) const
{
    return batch > 0 ? batch : findModel(model).refBatch;
}

const Workload &
ExperimentRunner::workload(const std::string &model, int batch)
{
    batch = resolveBatch(model, batch);
    const std::string k = key(model, batch);
    return workloads_.getOrCompute(k, [&] {
        noteCompute("wl", k);
        return std::make_unique<Workload>(findModel(model), batch,
                                          config_);
    });
}

const RunStats &
ExperimentRunner::singleTenant(const std::string &model, int batch)
{
    batch = resolveBatch(model, batch);
    const std::string k = key(model, batch);
    return single_cache_.getOrCompute(k, [&] {
        noteCompute("ref", k);
        const Workload &wl = workload(model, batch);
        Simulator sim;
        NpuCore core(sim, config_, 1, false);
        // A dedicated core needs no policy or preemption; V10-Base
        // with one tenant degenerates to plain in-order execution.
        OperatorScheduler sched(sim, core, {TenantSpec{&wl, 1.0}},
                                OperatorScheduler::Variant::Base);
        auto stats = std::make_unique<RunStats>(
            sched.run(kDefaultRequests, kDefaultWarmup));
        for (auto &w : stats->workloads)
            w.normalizedProgress = 1.0;
        return stats;
    });
}

double
ExperimentRunner::singleTenantRps(const std::string &model, int batch)
{
    const RunStats &ref = singleTenant(model, batch);
    if (ref.workloads.empty())
        panic("singleTenantRps: empty reference run");
    return ref.workloads[0].requestsPerSec;
}

RunStats
ExperimentRunner::run(SchedulerKind kind,
                      const std::vector<TenantRequest> &tenants,
                      std::uint64_t requests, std::uint64_t warmup,
                      const SchedulerOptions &options)
{
    if (tenants.empty())
        fatal("ExperimentRunner::run: no tenants");

    std::vector<TenantSpec> specs;
    std::vector<double> single_rps;
    specs.reserve(tenants.size());
    for (const TenantRequest &req : tenants) {
        const int batch = resolveBatch(req.model, req.batch);
        specs.push_back(TenantSpec{&workload(req.model, batch),
                                   req.priority, req.arrivalRps});
        single_rps.push_back(singleTenantRps(req.model, batch));
    }

    Simulator sim;
    // Domain-partitioned engine: the worker-pool size only selects
    // the execution strategy, never the result (the engine's domains
    // couple through shared scheduler state, so the conservative
    // kernel runs them serially merged — bit-identical at any jobs).
    if (options.engineJobs > 0)
        sim.setEngineJobs(options.engineJobs);
    NpuCore core(sim, config_,
                 static_cast<std::uint32_t>(tenants.size()),
                 reservesSaContexts(kind));
    auto sched =
        makeScheduler(kind, sim, core, std::move(specs), options);
    sched->setTimeline(options.timeline);
    sched->setStats(options.stats);
    sched->setSampler(options.sampler);
    sched->setResilience(options.resilience);
    sched->setRequestTracer(options.requestTracer);
    sched->setAttribution(options.attribution);
    sched->setFlightRecorder(options.flightRecorder);
    RunStats stats = sched->run(requests, warmup);

    for (std::size_t i = 0; i < stats.workloads.size(); ++i) {
        auto &w = stats.workloads[i];
        w.normalizedProgress =
            single_rps[i] > 0.0 ? w.requestsPerSec / single_rps[i]
                                : 0.0;
    }
    return stats;
}

RunStats
ExperimentRunner::runPair(SchedulerKind kind, const std::string &modelA,
                          const std::string &modelB, double priorityA,
                          double priorityB, std::uint64_t requests,
                          const SchedulerOptions &options)
{
    return run(kind,
               {TenantRequest{modelA, 0, priorityA},
                TenantRequest{modelB, 0, priorityB}},
               requests, kDefaultWarmup, options);
}

} // namespace v10
