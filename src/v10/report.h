/**
 * @file
 * One-command evaluation report: runs the paper's headline
 * experiments (the 11 collocation pairs under all four designs) and
 * renders a self-contained markdown report with the Fig. 16-21
 * quantities and their geomean summaries — the quickest way to
 * regenerate the reproduction evidence after changing the
 * simulator.
 */

#ifndef V10_V10_REPORT_H
#define V10_V10_REPORT_H

#include <iosfwd>
#include <string>

#include "npu/npu_config.h"

namespace v10 {

/** Report generation options. */
struct ReportOptions
{
    NpuConfig config{};
    std::uint64_t requests = 25; ///< measured requests per run
    std::string title = "V10 reproduction report";
    /** Threads for the pair × design grid (the report is identical
     * for any value; see SweepRunner). */
    std::size_t jobs = 1;

    /** In-run engine worker-pool size (--engine-jobs; 0 = serial
     * merged). Like `jobs`, the report is byte-identical for any
     * value — it only selects the kernel's execution strategy. */
    std::size_t engineJobs = 0;

    /** When non-empty, also dump the full pair × design grid as a
     * structured JSON document at this path ("--stats-json"). */
    std::string statsJsonPath;
};

/**
 * Run the headline evaluation and write a markdown report.
 * @param os output stream
 * @param options run parameters
 */
void writeEvaluationReport(std::ostream &os,
                           const ReportOptions &options);

/** writeEvaluationReport() to a file path; fatal() if unwritable. */
void writeEvaluationReportFile(const std::string &path,
                               const ReportOptions &options);

} // namespace v10

#endif // V10_V10_REPORT_H
