#include "v10/profiler.h"

#include "common/log.h"
#include "common/parallel_executor.h"
#include "npu/npu_core.h"
#include "sched/op_scheduler.h"
#include "sim/simulator.h"
#include "workload/model_zoo.h"
#include "workload/workload.h"

namespace v10 {

SingleProfile
profileSingle(const NpuConfig &config, const ModelProfile &model,
              int batch, std::uint64_t requests)
{
    SingleProfile p;
    p.model = model.abbrev;
    p.batch = batch;

    if (!model.fitsMemory(batch, kHbmRegionBytes)) {
        p.oom = true;
        return p;
    }

    Workload wl(model, batch, config);
    const RequestTrace &trace = wl.trace();

    Simulator sim;
    NpuCore core(sim, config, 1, false);
    OperatorScheduler sched(sim, core, {TenantSpec{&wl, 1.0}},
                            OperatorScheduler::Variant::Base);
    const RunStats stats = sched.run(requests, 1);

    p.flopsUtil = stats.flopsUtil;
    p.mxuUtil = stats.saUtil;
    p.vpuUtil = stats.vuUtil;
    p.hbmUtil = stats.hbmUtil;
    p.idealSpeedup = wl.graph().idealSpeedup();

    const double bytes = static_cast<double>(trace.totalDmaBytes);
    p.opIntensity = bytes > 0.0 ? trace.totalFlops / bytes : 0.0;
    if (!stats.workloads.empty()) {
        const auto &w = stats.workloads[0];
        p.requestLatencyUs = w.avgLatencyUs;
        p.requestsPerSec = w.requestsPerSec;
        p.tflops = trace.totalFlops * w.requestsPerSec / 1e12;
    }

    double max_sa = 0.0;
    double max_vu = 0.0;
    for (const auto &op : trace.ops) {
        const double us = config.cyclesToUs(op.computeCycles);
        if (op.kind == OpKind::SA)
            max_sa = std::max(max_sa, us);
        else
            max_vu = std::max(max_vu, us);
    }
    p.meanSaOpUs = config.cyclesToUs(
        static_cast<Cycles>(trace.meanSaOpCycles()));
    p.meanVuOpUs = config.cyclesToUs(
        static_cast<Cycles>(trace.meanVuOpCycles()));
    p.maxSaOpUs = max_sa;
    p.maxVuOpUs = max_vu;
    return p;
}

std::vector<SingleProfile>
profileAllModels(const NpuConfig &config, std::uint64_t requests,
                 std::size_t jobs)
{
    std::vector<std::pair<const ModelProfile *, int>> points;
    for (const ModelProfile &model : modelZoo()) {
        for (int batch : standardBatchSweep())
            points.emplace_back(&model, batch);
    }
    ParallelExecutor exec(jobs);
    return exec.map<SingleProfile>(
        points.size(), [&](std::size_t i) {
            return profileSingle(config, *points[i].first,
                                 points[i].second, requests);
        });
}

} // namespace v10
