#include "v10/collocation_advisor.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/parallel_executor.h"
#include "workload/model_zoo.h"

namespace v10 {

ClusteringCollocator::ClusteringCollocator(Options options)
    : options_(options)
{
    if (options_.clusters == 0 || options_.pcaComponents == 0)
        fatal("ClusteringCollocator: bad hyper-parameters");
}

ClusteringCollocator::ClusteringCollocator()
    : ClusteringCollocator(Options{})
{
}

void
ClusteringCollocator::train(
    const std::vector<WorkloadFeatures> &training,
    const PairPerfFn &perf)
{
    if (training.size() < options_.clusters)
        fatal("ClusteringCollocator: ", training.size(),
              " training workloads < k=", options_.clusters);

    std::vector<std::vector<double>> rows;
    rows.reserve(training.size());
    for (const auto &f : training)
        rows.push_back(f.values);
    const Matrix raw = Matrix::fromRows(rows);

    standardizer_ = std::make_unique<Standardizer>(raw);
    const Matrix standardized = standardizer_->transform(raw);
    pca_ = std::make_unique<Pca>(
        standardized,
        std::min(options_.pcaComponents, standardized.cols()));
    const Matrix projected = pca_->transform(standardized);

    KMeans km(options_.clusters, options_.seed);
    kmeans_ = km.fit(projected);
    training_labels_ = kmeans_.labels;

    // Inter-cluster pairwise collocation profiling (Fig. 14): the
    // profiled performance of clusters (i, j) is the mean measured
    // performance over all training pairs spanning them. The
    // measurements are independent simulations, so they fan out over
    // options_.jobs threads; accumulation stays serial in pair order
    // so the floating-point sums are bit-identical for any jobs.
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t i = 0; i < training.size(); ++i) {
        for (std::size_t j = i + 1; j < training.size(); ++j) {
            // Two batch variants of the same model are not a
            // collocation candidate.
            if (training[i].model != training[j].model)
                pairs.emplace_back(i, j);
        }
    }
    ParallelExecutor exec(options_.jobs);
    const std::vector<double> measured =
        exec.map<double>(pairs.size(), [&](std::size_t n) {
            return perf(training[pairs[n].first].model,
                        training[pairs[n].second].model);
        });

    const std::size_t k = options_.clusters;
    cluster_perf_.assign(k, std::vector<double>(k, 0.0));
    cluster_perf_count_.assign(k, std::vector<int>(k, 0));
    double global_sum = 0.0;
    int global_count = 0;
    for (std::size_t n = 0; n < pairs.size(); ++n) {
        const double p = measured[n];
        const std::size_t ci = training_labels_[pairs[n].first];
        const std::size_t cj = training_labels_[pairs[n].second];
        cluster_perf_[ci][cj] += p;
        cluster_perf_count_[ci][cj] += 1;
        if (ci != cj) {
            cluster_perf_[cj][ci] += p;
            cluster_perf_count_[cj][ci] += 1;
        }
        global_sum += p;
        ++global_count;
    }
    for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = 0; b < k; ++b) {
            if (cluster_perf_count_[a][b] > 0)
                cluster_perf_[a][b] /= cluster_perf_count_[a][b];
        }
    }
    global_mean_perf_ =
        global_count > 0 ? global_sum / global_count : 1.0;
    trained_ = true;
}

std::size_t
ClusteringCollocator::clusterOf(const WorkloadFeatures &features) const
{
    if (!trained_)
        fatal("ClusteringCollocator: not trained");
    const auto projected =
        pca_->transform(standardizer_->transform(features.values));
    return KMeans::assign(kmeans_, projected);
}

double
ClusteringCollocator::clusterPairPerf(std::size_t a,
                                      std::size_t b) const
{
    if (a >= options_.clusters || b >= options_.clusters)
        panic("clusterPairPerf: cluster index out of range");
    if (cluster_perf_count_[a][b] == 0)
        return std::nan("");
    return cluster_perf_[a][b];
}

double
ClusteringCollocator::predictPerf(const WorkloadFeatures &a,
                                  const WorkloadFeatures &b) const
{
    const std::size_t ca = clusterOf(a);
    const std::size_t cb = clusterOf(b);
    const double p = clusterPairPerf(ca, cb);
    // No training pair spanned these clusters: fall back to the
    // global training mean (a conservative prior).
    return std::isnan(p) ? global_mean_perf_ : p;
}

bool
ClusteringCollocator::predictBeneficial(const WorkloadFeatures &a,
                                        const WorkloadFeatures &b)
    const
{
    return predictPerf(a, b) >= options_.threshold;
}

bool
heuristicPredict(const WorkloadFeatures &a, const WorkloadFeatures &b)
{
    // Capacity check per resource dimension (§3.4's "aggregated
    // resource utilization should not exceed the total available
    // resource"). A small slack accounts for the dispatch bubbles
    // that overlapped execution recovers; the check still ignores
    // dynamic contention (operator-length mismatch), which is what
    // makes it inaccurate.
    constexpr double kCapacity = 1.40;
    const double sa = a.values[0] + b.values[0];
    const double vu = a.values[1] + b.values[1];
    const double hbm = a.values[2] + b.values[2];
    return sa <= kCapacity && vu <= kCapacity && hbm <= 1.05;
}

double
SchemeOutcome::accuracy() const
{
    const int total = tp + tn + fp + fn;
    return total == 0
               ? 0.0
               : static_cast<double>(tp + tn) / total;
}

double
SchemeOutcome::tpRate() const
{
    const int pos = tp + fn;
    return pos == 0 ? 0.0 : static_cast<double>(tp) / pos;
}

double
SchemeOutcome::tnRate() const
{
    const int neg = tn + fp;
    return neg == 0 ? 0.0 : static_cast<double>(tn) / neg;
}

double
SchemeOutcome::fpRate() const
{
    const int neg = tn + fp;
    return neg == 0 ? 0.0 : static_cast<double>(fp) / neg;
}

double
SchemeOutcome::fnRate() const
{
    const int pos = tp + fn;
    return pos == 0 ? 0.0 : static_cast<double>(fn) / pos;
}

CollocationStudy::CollocationStudy(const NpuConfig &config,
                                   std::uint64_t requests,
                                   double threshold,
                                   std::size_t jobs)
    : runner_(config), requests_(requests), threshold_(threshold),
      jobs_(jobs == 0 ? ParallelExecutor::hardwareJobs() : jobs)
{
    for (const ModelProfile &m : modelZoo())
        models_.push_back(m.abbrev);
}

std::string
CollocationStudy::pairKey(const std::string &a,
                          const std::string &b) const
{
    return a < b ? a + "+" + b : b + "+" + a;
}

void
CollocationStudy::build()
{
    if (built_)
        return;
    ParallelExecutor exec(jobs_);

    // Featurize several batch variants per model: the clustering of
    // Fig. 15 places one point per (model, batch size). Each point
    // is an independent dedicated-core simulation, so they fan out;
    // the feature vectors are then appended in sweep order so the
    // training set is identical for any jobs count.
    std::vector<std::pair<const ModelProfile *, int>> points;
    for (const std::string &m : models_) {
        const ModelProfile &profile = findModel(m);
        for (int batch : {profile.refBatch / 4, profile.refBatch,
                          profile.refBatch * 4}) {
            if (batch >= 1 &&
                profile.fitsMemory(batch, kHbmRegionBytes))
                points.emplace_back(&profile, batch);
        }
    }
    const std::vector<SingleProfile> profiles =
        exec.map<SingleProfile>(points.size(), [&](std::size_t i) {
            return profileSingle(runner_.config(), *points[i].first,
                                 points[i].second, requests_);
        });
    for (std::size_t i = 0; i < points.size(); ++i) {
        variant_features_.push_back(extractFeatures(profiles[i]));
        if (points[i].second == points[i].first->refBatch)
            features_.emplace(points[i].first->abbrev,
                              variant_features_.back());
    }

    // Brute-force ground truth for every model pair, O(models²)
    // simulations — the sweep §3.4 amortizes offline and by far the
    // dominant cost of the study.
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t i = 0; i < models_.size(); ++i)
        for (std::size_t j = i + 1; j < models_.size(); ++j)
            pairs.emplace_back(i, j);
    exec.forEach(pairs.size(), [&](std::size_t n) {
        pairPerf(models_[pairs[n].first], models_[pairs[n].second]);
    });
    built_ = true;
}

double
CollocationStudy::pairPerf(const std::string &a, const std::string &b)
{
    const std::string k = pairKey(a, b);
    return perf_.getOrCompute(k, [&] {
        const RunStats v10_full = runner_.runPair(
            SchedulerKind::V10Full, a, b, 1.0, 1.0, requests_);
        const RunStats pmt = runner_.runPair(
            SchedulerKind::Pmt, a, b, 1.0, 1.0, requests_);
        const double pmt_stp = pmt.stp();
        return std::make_unique<double>(
            pmt_stp > 0.0 ? v10_full.stp() / pmt_stp : 0.0);
    });
}

const WorkloadFeatures &
CollocationStudy::features(const std::string &model)
{
    build();
    auto it = features_.find(model);
    if (it == features_.end())
        fatal("CollocationStudy: unknown model ", model);
    return it->second;
}

void
CollocationStudy::score(SchemeOutcome &outcome, double actual,
                        bool predicted) const
{
    const bool positive = actual >= threshold_;
    if (predicted) {
        if (outcome.tp + outcome.fp == 0 ||
            actual < outcome.worstPerf)
            outcome.worstPerf = actual;
    }
    if (positive && predicted)
        ++outcome.tp;
    else if (positive && !predicted)
        ++outcome.fn;
    else if (!positive && predicted)
        ++outcome.fp;
    else
        ++outcome.tn;
}

SchemeOutcome
CollocationStudy::evaluateRandom()
{
    build();
    SchemeOutcome outcome;
    outcome.scheme = "Random";
    outcome.worstPerf = 1.0;
    for (std::size_t i = 0; i < models_.size(); ++i)
        for (std::size_t j = i + 1; j < models_.size(); ++j)
            score(outcome, pairPerf(models_[i], models_[j]), true);
    return outcome;
}

SchemeOutcome
CollocationStudy::evaluateHeuristic()
{
    build();
    SchemeOutcome outcome;
    outcome.scheme = "Heuristic";
    outcome.worstPerf = 1.0;
    for (std::size_t i = 0; i < models_.size(); ++i) {
        for (std::size_t j = i + 1; j < models_.size(); ++j) {
            const bool predicted = heuristicPredict(
                features(models_[i]), features(models_[j]));
            score(outcome, pairPerf(models_[i], models_[j]),
                  predicted);
        }
    }
    return outcome;
}

SchemeOutcome
CollocationStudy::evaluateClustering()
{
    ClusteringCollocator::Options options;
    // After build() every pair perf is cached, so the advisor's
    // parallel profiling degenerates to concurrent cache reads.
    options.jobs = jobs_;
    return evaluateClustering(options);
}

SchemeOutcome
CollocationStudy::evaluateClustering(
    ClusteringCollocator::Options options)
{
    build();
    options.threshold = threshold_;
    SchemeOutcome outcome;
    outcome.scheme = "Clustering";
    outcome.worstPerf = 1.0;

    // Leave-two-models-out cross validation: every split holds out
    // two models, trains on the rest, and predicts every pair that
    // involves a held-out model.
    for (std::size_t a = 0; a < models_.size(); ++a) {
        for (std::size_t b = a + 1; b < models_.size(); ++b) {
            std::vector<WorkloadFeatures> training;
            for (const WorkloadFeatures &f : variant_features_) {
                if (f.model != models_[a] && f.model != models_[b])
                    training.push_back(f);
            }
            ClusteringCollocator collocator(options);
            collocator.train(
                training,
                [this](const std::string &x, const std::string &y) {
                    return pairPerf(x, y);
                });

            for (std::size_t i = 0; i < models_.size(); ++i) {
                for (std::size_t j = i + 1; j < models_.size(); ++j) {
                    const bool involves_test =
                        i == a || i == b || j == a || j == b;
                    if (!involves_test)
                        continue;
                    const bool predicted =
                        collocator.predictBeneficial(
                            features(models_[i]),
                            features(models_[j]));
                    score(outcome,
                          pairPerf(models_[i], models_[j]),
                          predicted);
                }
            }
        }
    }
    return outcome;
}

std::vector<std::pair<std::string, double>>
CollocationStudy::groundTruth()
{
    build();
    std::vector<std::pair<std::string, double>> out;
    for (std::size_t i = 0; i < models_.size(); ++i)
        for (std::size_t j = i + 1; j < models_.size(); ++j)
            out.emplace_back(models_[i] + "+" + models_[j],
                             pairPerf(models_[i], models_[j]));
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });
    return out;
}

double
CollocationStudy::positiveRate()
{
    build();
    int positives = 0;
    int total = 0;
    for (std::size_t i = 0; i < models_.size(); ++i) {
        for (std::size_t j = i + 1; j < models_.size(); ++j) {
            positives +=
                pairPerf(models_[i], models_[j]) >= threshold_;
            ++total;
        }
    }
    return total == 0 ? 0.0 : static_cast<double>(positives) / total;
}

} // namespace v10
