#include "v10/npu_cluster.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"
#include "v10/sweep.h"
#include "workload/model_zoo.h"

namespace v10 {

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::NoSharing:        return "NoSharing";
      case DispatchPolicy::RandomPairing:    return "RandomPairing";
      case DispatchPolicy::ClusteredPairing: return "ClusteredPairing";
    }
    panic("dispatchPolicyName: bad policy");
}

NpuCluster::NpuCluster(ClusterConfig config)
    : config_(config), runner_(config.core)
{
    if (config_.numCores == 0)
        fatal("NpuCluster: need at least one core");
}

void
NpuCluster::addWorkload(const std::string &model, int batch,
                        double priority)
{
    tryAddWorkload(model, batch, priority).orDie();
}

Status
NpuCluster::tryAddWorkload(const std::string &model, int batch,
                           double priority)
{
    if (!hasModel(model))
        return parseError("NpuCluster: unknown model", "", 0,
                          model);
    pool_.push_back(TenantRequest{model, batch, priority});
    return Status::ok();
}

const WorkloadFeatures &
NpuCluster::features(const std::string &model, int batch)
{
    batch = runner_.resolveBatch(model, batch);
    const std::string key = findModel(model).key(batch);
    auto it = feature_cache_.find(key);
    if (it == feature_cache_.end()) {
        const SingleProfile sp =
            profileSingle(config_.core, findModel(model), batch,
                          profile_requests_);
        it = feature_cache_.emplace(key, extractFeatures(sp)).first;
    }
    return it->second;
}

void
NpuCluster::trainAdvisor(std::uint64_t profileRequests)
{
    tryTrainAdvisor(profileRequests).orDie();
}

Status
NpuCluster::tryTrainAdvisor(std::uint64_t profileRequests)
{
    if (pool_.empty())
        return parseError(
            "NpuCluster: train after adding workloads", "", 0,
            "pool");
    profile_requests_ = profileRequests;

    // Featurize every distinct pooled workload; bail out to the
    // whole zoo when the pool is too small to cluster.
    std::vector<WorkloadFeatures> training;
    std::vector<std::string> seen;
    auto add_model = [&](const std::string &model, int batch) {
        const WorkloadFeatures &f = features(model, batch);
        const std::string key =
            f.model + "@" + std::to_string(f.batch);
        if (std::find(seen.begin(), seen.end(), key) != seen.end())
            return;
        seen.push_back(key);
        training.push_back(f);
    };
    for (const TenantRequest &req : pool_)
        add_model(req.model, req.batch);
    if (training.size() < 6) {
        for (const ModelProfile &m : modelZoo())
            add_model(m.abbrev, m.refBatch);
    }

    ClusteringCollocator::Options advisor_options;
    advisor_options.threshold = config_.collocationThreshold;
    advisor_options.jobs = config_.jobs;
    auto advisor =
        std::make_unique<ClusteringCollocator>(advisor_options);
    advisor->train(training, [this](const std::string &a,
                                    const std::string &b) {
        const RunStats full = runner_.runPair(
            config_.scheduler, a, b, 1.0, 1.0, profile_requests_);
        const RunStats pmt = runner_.runPair(
            SchedulerKind::Pmt, a, b, 1.0, 1.0, profile_requests_);
        return pmt.stp() > 0.0 ? full.stp() / pmt.stp() : 0.0;
    });
    advisor_ = std::move(advisor);
    return Status::ok();
}

double
NpuCluster::predictedGain(const std::string &modelA,
                          const std::string &modelB)
{
    return tryPredictedGain(modelA, modelB).valueOrDie();
}

Result<double>
NpuCluster::tryPredictedGain(const std::string &modelA,
                             const std::string &modelB)
{
    if (!advisorTrained())
        return parseError("NpuCluster: advisor not trained", "", 0,
                          "advisor");
    if (!hasModel(modelA))
        return parseError("NpuCluster: unknown model", "", 0,
                          modelA);
    if (!hasModel(modelB))
        return parseError("NpuCluster: unknown model", "", 0,
                          modelB);
    return advisor_->predictPerf(features(modelA, 0),
                                 features(modelB, 0));
}

std::vector<std::vector<std::size_t>>
NpuCluster::pairClustered()
{
    if (!advisorTrained())
        fatal("NpuCluster: ClusteredPairing requires trainAdvisor()");

    // Greedy maximum-gain matching: score every pair, take the best
    // remaining pair while it clears the threshold, then give the
    // leftovers dedicated cores.
    struct Candidate
    {
        std::size_t a, b;
        double gain;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
        for (std::size_t j = i + 1; j < pool_.size(); ++j) {
            const double gain = advisor_->predictPerf(
                features(pool_[i].model, pool_[i].batch),
                features(pool_[j].model, pool_[j].batch));
            candidates.push_back(Candidate{i, j, gain});
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &x, const Candidate &y) {
                  return x.gain > y.gain;
              });

    std::vector<bool> placed(pool_.size(), false);
    std::vector<std::vector<std::size_t>> groups;
    for (const Candidate &c : candidates) {
        if (c.gain < config_.collocationThreshold)
            break;
        if (placed[c.a] || placed[c.b])
            continue;
        groups.push_back({c.a, c.b});
        placed[c.a] = placed[c.b] = true;
    }
    for (std::size_t i = 0; i < pool_.size(); ++i) {
        if (!placed[i])
            groups.push_back({i});
    }
    return groups;
}

std::vector<std::vector<std::size_t>>
NpuCluster::pairRandom(std::uint64_t seed)
{
    std::vector<std::size_t> order(pool_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    Rng rng(seed);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.uniformInt(i)]);

    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i + 1 < order.size(); i += 2)
        groups.push_back({order[i], order[i + 1]});
    if (order.size() % 2 == 1)
        groups.push_back({order.back()});
    return groups;
}

ClusterResult
NpuCluster::dispatchAndRun(DispatchPolicy policy, std::uint64_t seed)
{
    return tryDispatchAndRun(policy, seed).valueOrDie();
}

Result<ClusterResult>
NpuCluster::tryDispatchAndRun(DispatchPolicy policy,
                              std::uint64_t seed)
{
    if (pool_.empty())
        return parseError("NpuCluster: empty workload pool", "", 0,
                          "pool");
    if (policy == DispatchPolicy::ClusteredPairing &&
        !advisorTrained())
        return parseError("NpuCluster: ClusteredPairing requires "
                          "trainAdvisor()",
                          "", 0, "advisor");

    std::vector<std::vector<std::size_t>> groups;
    switch (policy) {
      case DispatchPolicy::NoSharing:
        for (std::size_t i = 0; i < pool_.size(); ++i)
            groups.push_back({i});
        break;
      case DispatchPolicy::RandomPairing:
        groups = pairRandom(seed);
        break;
      case DispatchPolicy::ClusteredPairing:
        groups = pairClustered();
        break;
    }

    if (groups.size() > config_.numCores)
        return parseError(
            std::string("NpuCluster: ") +
                dispatchPolicyName(policy) + " needs " +
                std::to_string(groups.size()) +
                " cores but the fleet has " +
                std::to_string(config_.numCores) +
                " — add cores or pool fewer workloads",
            "", 0, "numCores");

    ClusterResult result;
    result.policy = policy;

    // Each core's run is an independent simulation: fan them out and
    // fold the fleet aggregates serially in core order, so the
    // result is bit-identical to the serial fleet loop.
    SweepRunner sweep(runner_, config_.jobs);
    std::vector<SweepCell> cells;
    cells.reserve(groups.size());
    for (const auto &group : groups) {
        SweepCell cell;
        cell.kind = config_.scheduler;
        for (std::size_t idx : group)
            cell.tenants.push_back(pool_[idx]);
        cell.requests = config_.requests;
        cell.warmup = config_.warmup;
        cells.push_back(std::move(cell));
    }
    std::vector<RunStats> per_core = sweep.run(cells);

    double sa_sum = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        std::vector<std::string> labels;
        for (std::size_t idx : groups[g])
            labels.push_back(pool_[idx].model);
        RunStats &stats = per_core[g];
        for (const auto &w : stats.workloads)
            result.fleetStp += w.normalizedProgress;
        sa_sum += stats.saUtil;
        result.assignment.push_back(std::move(labels));
        result.perCore.push_back(std::move(stats));
    }
    result.coresUsed = groups.size();
    result.meanSaUtil =
        groups.empty() ? 0.0
                       : sa_sum / static_cast<double>(groups.size());
    return result;
}

std::vector<std::string>
NpuCluster::distinctModels() const
{
    std::vector<std::string> out;
    for (const TenantRequest &req : pool_) {
        if (std::find(out.begin(), out.end(), req.model) == out.end())
            out.push_back(req.model);
    }
    return out;
}

} // namespace v10
