#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

#include "common/log.h"

namespace v10 {

EventQueue::EventQueue() = default;

EventQueue::~EventQueue() = default;

EventQueue::Bucket &
EventQueue::bucketRef(std::size_t bucket) const
{
    // Bucket is a trivial implicit-lifetime type living in the raw
    // slab; the occupancy bit guards every read of it.
    return *reinterpret_cast<Bucket *>(ring_raw_.get() +
                                       bucket * sizeof(Bucket));
}

void
EventQueue::releaseBucket(std::size_t bucket, Bucket &bk) const
{
    vec_pool_[bk.vec - 1].clear(); // keeps capacity for reuse
    free_vecs_.push_back(bk.vec - 1);
    clearBit(bucket);
}

bool
EventQueue::later(const Entry &a, const Entry &b)
{
    // std::push_heap builds a max-heap; invert for min-heap order.
    if (a.when != b.when)
        return a.when > b.when;
    return a.seq > b.seq;
}

EventId
EventQueue::acquireSlot()
{
    std::uint32_t idx;
    if (!free_slots_.empty()) {
        idx = free_slots_.back();
        free_slots_.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(slots_.size());
        // EventId bits 62-63 carry the Simulator's domain tag, so
        // the slot index (bits 32-61) must stay below 2^30. A run
        // would exhaust memory long before holding a billion live
        // events; the guard turns silent tag corruption into a
        // diagnosable panic.
        if (idx >= (std::uint32_t{1} << 30) - 1)
            V10_PANIC("EventQueue: live-event slot table overflow");
        slots_.push_back(Slot{});
    }
    slots_[idx].armed = true;
    return ((static_cast<EventId>(idx) + 1) << 32) | slots_[idx].gen;
}

void
EventQueue::releaseSlot(EventId id)
{
    const std::size_t idx = static_cast<std::size_t>((id >> 32) - 1);
    Slot &slot = slots_[idx];
    slot.armed = false;
    ++slot.gen; // stale handles to this slot stop matching
    free_slots_.push_back(static_cast<std::uint32_t>(idx));
}

bool
EventQueue::isLive(EventId id) const
{
    const std::uint64_t high = id >> 32;
    if (high == 0)
        return false; // kNoEvent and pre-slot-format ids
    const std::size_t idx = static_cast<std::size_t>(high - 1);
    if (idx >= slots_.size())
        return false;
    const Slot &slot = slots_[idx];
    return slot.armed && slot.gen == static_cast<std::uint32_t>(id);
}

void
EventQueue::setBit(std::size_t bucket) const
{
    const std::size_t word = bucket >> 6;
    ring_bits_[word] |= std::uint64_t{1} << (bucket & 63);
    ring_sum_[word >> 6] |= std::uint64_t{1} << (word & 63);
}

void
EventQueue::clearBit(std::size_t bucket) const
{
    const std::size_t word = bucket >> 6;
    ring_bits_[word] &= ~(std::uint64_t{1} << (bucket & 63));
    if (ring_bits_[word] == 0)
        ring_sum_[word >> 6] &=
            ~(std::uint64_t{1} << (word & 63));
}

bool
EventQueue::testBit(std::size_t bucket) const
{
    return ((ring_bits_[bucket >> 6] >> (bucket & 63)) & 1) != 0;
}

EventId
EventQueue::scheduleFn(Cycles when, std::uint64_t seq, EventFn fn)
{
    const EventId id = acquireSlot();
    if (inWindow(when)) {
        // The 256 KiB bucket slab is allocated on the first ring
        // insertion: a simulator constructs one queue per touched
        // domain, and domains that only ever relay far-future
        // (heap-side) events — or none at all — must not pay a
        // slab's worth of allocator churn per run.
        if (ring_raw_ == nullptr)
            ring_raw_.reset(new unsigned char[kRingBuckets *
                                              sizeof(Bucket)]);
        const auto bucket =
            static_cast<std::size_t>(when & kRingMask);
        Bucket &bk = bucketRef(bucket);
        if (!testBit(bucket)) {
            std::uint32_t v;
            if (!free_vecs_.empty()) {
                v = free_vecs_.back();
                free_vecs_.pop_back();
            } else {
                v = static_cast<std::uint32_t>(vec_pool_.size());
                vec_pool_.emplace_back();
            }
            bk.vec = v + 1;
            bk.head = 0;
            setBit(bucket);
        }
        vec_pool_[bk.vec - 1].push_back(
            Entry{when, seq, id, std::move(fn)});
        ++ring_entries_;
        if (when < ring_next_)
            ring_next_ = when;
    } else {
        heap_.push_back(Entry{when, seq, id, std::move(fn)});
        std::push_heap(heap_.begin(), heap_.end(), later);
    }
    ++live_;
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (!isLive(id))
        return;
    releaseSlot(id);
    if (live_ == 0)
        V10_PANIC("EventQueue::cancel: live count underflow");
    --live_;
}

Cycles
EventQueue::purgeHeapTop() const
{
    while (!heap_.empty() && !isLive(heap_.front().id)) {
        std::pop_heap(heap_.begin(), heap_.end(), later);
        heap_.pop_back();
    }
    return heap_.empty() ? kCycleMax : heap_.front().when;
}

std::size_t
EventQueue::nextOccupiedOffset(std::size_t start,
                               std::size_t offset) const
{
    while (offset < kRingBuckets) {
        const std::size_t probe = (start + offset) & kRingMask;
        const std::uint64_t bits =
            ring_bits_[probe >> 6] >> (probe & 63);
        if (bits != 0)
            return offset +
                   static_cast<std::size_t>(std::countr_zero(bits));
        offset += 64 - (probe & 63); // to the next word boundary
        // Hop empty word runs via the summary bitmap. Word indices
        // stay aligned in probe space, so once the summary says a
        // word is occupied the outer read sees the whole word.
        while (offset < kRingBuckets) {
            const std::size_t word =
                ((start + offset) & kRingMask) >> 6;
            const std::uint64_t sum =
                ring_sum_[word >> 6] >> (word & 63);
            if (sum != 0) {
                offset += 64 * static_cast<std::size_t>(
                                   std::countr_zero(sum));
                break;
            }
            offset += 64 * (64 - (word & 63));
        }
    }
    return offset;
}

Cycles
EventQueue::firstRingCycle() const
{
    if (ring_entries_ == 0)
        return kCycleMax;
    const auto start = static_cast<std::size_t>(base_ & kRingMask);
    // Jump to the cached lower bound; never skips an event because
    // the bound only goes stale low.
    std::size_t offset = 0;
    if (ring_next_ != kCycleMax && ring_next_ > base_)
        offset = static_cast<std::size_t>(ring_next_ - base_);
    if (offset >= kRingBuckets)
        offset = 0; // stale bound from raw-queue misuse
    while ((offset = nextOccupiedOffset(start, offset)) <
           kRingBuckets) {
        const std::size_t bucket = (start + offset) & kRingMask;
        Bucket &bk = bucketRef(bucket);
        auto &entries = vec_pool_[bk.vec - 1];
        while (bk.head < entries.size() &&
               !isLive(entries[bk.head].id)) {
            entries[bk.head].fn = nullptr; // purge dead closures
            ++bk.head;
            --ring_entries_;
        }
        if (bk.head >= entries.size()) {
            releaseBucket(bucket, bk);
            ++offset;
            continue;
        }
        ring_next_ = entries[bk.head].when;
        return ring_next_;
    }
    ring_next_ = kCycleMax; // scan proved the ring empty
    return kCycleMax;
}

Cycles
EventQueue::nextCycle() const
{
    const Cycles heap_when = purgeHeapTop();
    const Cycles ring_when = firstRingCycle();
    return heap_when < ring_when ? heap_when : ring_when;
}

EventQueue::NextKey
EventQueue::nextKey() const
{
    const Cycles heap_when = purgeHeapTop();
    const Cycles ring_when = firstRingCycle();
    // Ties go to the heap, matching takeNext(): a heap entry at a
    // cycle always carries a smaller seq than every ring entry at it
    // (the ring window only grows forward).
    if (heap_when <= ring_when) {
        if (heap_when == kCycleMax)
            return NextKey{kCycleMax, ~std::uint64_t{0}};
        return NextKey{heap_when, heap_.front().seq};
    }
    // firstRingCycle() purged the head bucket down to a live entry.
    const auto bucket =
        static_cast<std::size_t>(ring_when & kRingMask);
    const Bucket &bk = bucketRef(bucket);
    const auto &entries = vec_pool_[bk.vec - 1];
    return NextKey{ring_when, entries[bk.head].seq};
}

EventQueue::Entry
EventQueue::takeHeapTop()
{
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    return entry;
}

Cycles
EventQueue::takeNext(EventFn &fn)
{
    const Cycles heap_when = purgeHeapTop();
    const Cycles ring_when = firstRingCycle();
    if (heap_when == kCycleMax && ring_when == kCycleMax)
        return kCycleMax;

    // Ties go to the heap: a heap entry at a cycle always predates
    // (smaller seq than) every ring entry at that cycle, because the
    // ring window only grows forward.
    if (heap_when <= ring_when) {
        Entry entry = takeHeapTop();
        releaseSlot(entry.id); // fired: stale cancels are no-ops
        --live_;
        if (entry.when > base_)
            base_ = entry.when;
        fn = std::move(entry.fn);
        return entry.when;
    }

    const auto bucket = static_cast<std::size_t>(ring_when & kRingMask);
    Bucket &bk = bucketRef(bucket);
    auto &entries = vec_pool_[bk.vec - 1];
    Entry &entry = entries[bk.head];
    fn = std::move(entry.fn);
    releaseSlot(entry.id);
    ++bk.head;
    --ring_entries_;
    if (bk.head >= entries.size())
        releaseBucket(bucket, bk);
    --live_;
    if (ring_when > base_)
        base_ = ring_when;
    // No references into the bucket survive past this point: the
    // caller's invocation may schedule into (and reallocate) this
    // very bucket's entry vector.
    return ring_when;
}

Cycles
EventQueue::popAndRun()
{
    EventFn fn;
    const Cycles when = takeNext(fn);
    if (when != kCycleMax)
        fn();
    return when;
}

std::uint64_t
EventQueue::runCycle(Cycles when, const bool *interrupt)
{
    std::uint64_t fired = 0;
    if (when > base_)
        base_ = when;

    // Heap side first: every heap entry at this cycle was scheduled
    // before every ring entry at it (the window only grows), so this
    // replays pure (cycle, seq) order. Callbacks cannot add new heap
    // entries at `when` — with base_ == when the cycle is in-window.
    while (purgeHeapTop() == when) {
        Entry entry = takeHeapTop();
        releaseSlot(entry.id);
        --live_;
        ++fired;
        entry.fn();
        if (interrupt != nullptr && *interrupt)
            return fired;
    }

    const auto bucket = static_cast<std::size_t>(when & kRingMask);
    // Callbacks scheduling at `when` re-arm the bucket (the bit and
    // chain are re-checked each iteration), preserving FIFO order:
    // fresh same-cycle events append at the tail with larger seqs.
    while (testBit(bucket)) {
        Bucket &bk = bucketRef(bucket);
        // Re-fetch per iteration: callbacks scheduling at `when`
        // append to (and may reallocate) this bucket's entries.
        auto &entries = vec_pool_[bk.vec - 1];
        if (bk.head >= entries.size()) {
            releaseBucket(bucket, bk);
            break;
        }
        Entry &entry = entries[bk.head];
        const bool entry_live = isLive(entry.id);
        if (entry_live && entry.when != when)
            break; // raw-queue misuse: bucket holds another cycle
        ++bk.head;
        --ring_entries_;
        if (!entry_live) {
            entry.fn = nullptr;
            continue;
        }
        EventFn fn = std::move(entry.fn);
        releaseSlot(entry.id);
        --live_;
        ++fired;
        // `entry` is dead past this point: the callback may append
        // to this bucket and reallocate the entry vector.
        fn();
        if (interrupt != nullptr && *interrupt)
            return fired;
    }
    return fired;
}

void
EventQueue::clear()
{
    // Release every live slot (bumping its generation) so stale
    // handles stay harmless, then drop the stored closures.
    for (Entry &entry : heap_) {
        if (isLive(entry.id))
            releaseSlot(entry.id);
    }
    heap_.clear();
    for (std::size_t w = 0; w < kBitWords; ++w) {
        std::uint64_t bits = ring_bits_[w];
        while (bits != 0) {
            const auto b =
                static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            const Bucket &bk = bucketRef(w * 64 + b);
            auto &entries = vec_pool_[bk.vec - 1];
            for (std::size_t i = bk.head; i < entries.size(); ++i) {
                if (isLive(entries[i].id))
                    releaseSlot(entries[i].id);
            }
        }
    }
    vec_pool_.clear();
    free_vecs_.clear();
    ring_bits_.fill(0);
    ring_sum_.fill(0);
    ring_entries_ = 0;
    ring_next_ = kCycleMax;
    live_ = 0;
}

} // namespace v10
