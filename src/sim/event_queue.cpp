#include "sim/event_queue.h"

#include <algorithm>

#include "common/log.h"

namespace v10 {

bool
EventQueue::later(const Entry &a, const Entry &b)
{
    // std::push_heap builds a max-heap; invert for min-heap order.
    if (a.when != b.when)
        return a.when > b.when;
    return a.seq > b.seq;
}

EventId
EventQueue::schedule(Cycles when, Callback cb)
{
    const EventId id = next_id_++;
    if (cancelled_.size() <= id)
        cancelled_.resize(id + 1, false);
    heap_.push_back(Entry{when, next_seq_++, id, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++live_;
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (id == kNoEvent || id >= cancelled_.size() || cancelled_[id])
        return;
    cancelled_[id] = true;
    if (live_ == 0)
        V10_PANIC("EventQueue::cancel: live count underflow");
    --live_;
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty() && cancelled_[heap_.front().id]) {
        std::pop_heap(heap_.begin(), heap_.end(), later);
        heap_.pop_back();
    }
}

Cycles
EventQueue::nextCycle() const
{
    skipDead();
    return heap_.empty() ? kCycleMax : heap_.front().when;
}

Cycles
EventQueue::popAndRun()
{
    skipDead();
    if (heap_.empty())
        return kCycleMax;
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    cancelled_[entry.id] = true; // mark fired
    --live_;
    entry.cb();
    return entry.when;
}

void
EventQueue::clear()
{
    // Mark everything cancelled so stale handles stay harmless.
    for (const Entry &entry : heap_)
        cancelled_[entry.id] = true;
    heap_.clear();
    live_ = 0;
}

} // namespace v10
