#include "sim/simulator.h"

#include <algorithm>

#include "common/log.h"
#include "common/parallel_executor.h"

namespace v10 {

Simulator::Simulator()
{
    for (auto &row : lookahead_)
        row.fill(kCycleMax);
    // The control queue is eager (every run schedules into it); the
    // hardware-domain queues are built on first use so constructing
    // a Simulator stays as cheap as the monolithic kernel was.
    lanes_[simDomainRank(SimDomain::Control)].queue =
        std::make_unique<EventQueue>();
}

Simulator::~Simulator() = default;

void
Simulator::pastPanic(Cycles when, Cycles clock) const
{
    V10_PANIC("Simulator::at: scheduling into the past (", when,
              " < ", clock, ")");
}

void
Simulator::horizonPanic(std::size_t rank, Cycles when) const
{
    V10_PANIC("Simulator::at: scheduling behind the ",
              simDomainName(static_cast<SimDomain>(rank)),
              " domain's conservative horizon (", when, " < ",
              lanes_[rank].clock, ")");
}

void
Simulator::overflowPanic() const
{
    V10_PANIC("Simulator::after: cycle overflow");
}

void
Simulator::intervalPanic() const
{
    V10_PANIC("Simulator::every: interval must be > 0 cycles");
}

void
Simulator::seqOverflowPanic() const
{
    V10_PANIC("Simulator: more than 2^32 events in one domain "
              "window (merge-key local field overflow)");
}

EventQueue &
Simulator::makeLane(std::size_t rank)
{
    Lane &lane = lanes_[rank];
    lane.queue = std::make_unique<EventQueue>();
    if (rank != simDomainRank(SimDomain::Control))
        multi_domain_ = true;
    return *lane.queue;
}

std::uint64_t
Simulator::bumpEpoch()
{
    if (epoch_ >= (std::uint64_t{1} << (64 - kSeqEpochShift)) - 2)
        V10_PANIC("Simulator: merge-key epoch overflow");
    return ++epoch_;
}

EventId
Simulator::bufferSend(WindowCtx &w, SimDomain target, Cycles when,
                      EventQueue::EventFn fn)
{
    const std::size_t src = w.rank;
    const std::size_t dst = simDomainRank(target);
    const Cycles lookahead = lookahead_[src][dst];
    if (lookahead == kCycleMax)
        V10_PANIC("Simulator: cross-domain send ",
                  simDomainName(static_cast<SimDomain>(src)),
                  " -> ", simDomainName(target),
                  " along an undeclared coupling edge");
    if (when < w.clock || when - w.clock < lookahead)
        V10_PANIC("Simulator: cross-domain send ",
                  simDomainName(static_cast<SimDomain>(src)),
                  " -> ", simDomainName(target), " at cycle ", when,
                  " violates the declared lookahead of ", lookahead,
                  " (sender clock ", w.clock, ")");
    w.outbox->push_back(Outgoing{target, when, std::move(fn)});
    // Buffered sends are fire-and-forget: the event does not exist
    // until the barrier commits it, so there is no handle to cancel.
    return kNoEvent;
}

void
Simulator::couple(SimDomain src, SimDomain dst, Cycles lookahead)
{
    if (src == dst)
        V10_PANIC("Simulator::couple: self edge on domain ",
                  simDomainName(src));
    laneQueue(simDomainRank(src));
    laneQueue(simDomainRank(dst));
    Cycles &slot = lookahead_[simDomainRank(src)]
                             [simDomainRank(dst)];
    slot = std::min(slot, lookahead);
    min_lookahead_ = std::min(min_lookahead_, lookahead);
    has_graph_ = true;
}

void
Simulator::setEngineJobs(std::size_t jobs)
{
    engine_jobs_ = jobs;
    if (pool_ != nullptr && pool_->jobs() != std::max<std::size_t>(
                                                 jobs, 1))
        pool_.reset();
}

void
Simulator::firePeriodic(std::size_t index)
{
    Periodic &p = *periodics_[index];
    p.pending = kNoEvent;
    p.fn();
    // Re-arm after the callback (matching a self-rescheduling event
    // handler's sequence order). The callback may have cancelled
    // this periodic; then the chain ends here.
    if (p.active)
        p.pending = after(p.interval,
                          [this, index] { firePeriodic(index); });
}

void
Simulator::cancelEvery(PeriodicId id)
{
    if (id == kNoPeriodic || id > periodics_.size())
        return;
    Periodic &p = *periodics_[static_cast<std::size_t>(id - 1)];
    if (!p.active)
        return;
    p.active = false;
    if (p.pending != kNoEvent) {
        cancel(p.pending);
        p.pending = kNoEvent;
    }
}

void
Simulator::cancel(EventId id)
{
    if (id == kNoEvent)
        return;
    const auto rank = static_cast<std::size_t>(id >> kDomainShift);
    WindowCtx *w = activeWindow();
    if (w != nullptr && rank != w->rank)
        V10_PANIC("Simulator::cancel: cancelling a ",
                  simDomainName(static_cast<SimDomain>(rank)),
                  " event from inside a ",
                  simDomainName(static_cast<SimDomain>(w->rank)),
                  " window");
    EventQueue *q = lanes_[rank].queue.get();
    if (q != nullptr)
        q->cancel(id & kIdMask);
}

bool
Simulator::idle() const
{
    for (const Lane &lane : lanes_) {
        if (lane.queue != nullptr && !lane.queue->empty())
            return false;
    }
    return true;
}

std::uint64_t
Simulator::eventsRun() const
{
    std::uint64_t total = events_run_;
    for (const Lane &lane : lanes_)
        total += lane.events_run;
    return total;
}

std::uint64_t
Simulator::domainEventsRun(SimDomain domain) const
{
    return lanes_[simDomainRank(domain)].events_run;
}

bool
Simulator::step()
{
    if (!multi_domain_) {
        // Single-pass peek-and-pop on the control queue — exactly
        // the monolithic kernel's stepping loop.
        EventQueue::EventFn fn;
        const Cycles next = controlQueue().takeNext(fn);
        if (next == kCycleMax)
            return false;
        now_ = next;
        fn();
        ++events_run_;
        return true;
    }
    return stepMerged();
}

bool
Simulator::stepMerged()
{
    // Cheap occupancy census first: most of an engine run has one or
    // two occupied lanes, and empty() is O(1).
    EventQueue *only = nullptr;
    std::size_t occupied = 0;
    for (Lane &lane : lanes_) {
        EventQueue *q = lane.queue.get();
        if (q != nullptr && !q->empty()) {
            only = q;
            ++occupied;
        }
    }
    if (occupied == 0)
        return false;
    EventQueue *best = only;
    if (occupied > 1) {
        // Globally next event by (cycle, merge key).
        Cycles best_when = kCycleMax;
        std::uint64_t best_seq = ~std::uint64_t{0};
        best = nullptr;
        for (Lane &lane : lanes_) {
            EventQueue *q = lane.queue.get();
            if (q == nullptr || q->empty())
                continue;
            const EventQueue::NextKey key = q->nextKey();
            if (key.when < best_when ||
                (key.when == best_when && key.seq < best_seq)) {
                best_when = key.when;
                best_seq = key.seq;
                best = q;
            }
        }
    }
    EventQueue::EventFn fn;
    const Cycles next = best->takeNext(fn);
    if (next == kCycleMax)
        return false; // unreachable: census saw a live event
    now_ = next;
    fn();
    ++events_run_;
    return true;
}

void
Simulator::drainCycleInterleaved(Cycles when)
{
    while (true) {
        EventQueue *best = nullptr;
        std::uint64_t best_seq = ~std::uint64_t{0};
        for (Lane &lane : lanes_) {
            EventQueue *q = lane.queue.get();
            if (q == nullptr || q->empty())
                continue;
            const EventQueue::NextKey key = q->nextKey();
            if (key.when == when && key.seq < best_seq) {
                best_seq = key.seq;
                best = q;
            }
        }
        if (best == nullptr)
            return;
        EventQueue::EventFn fn;
        best->takeNext(fn);
        fn();
        ++events_run_;
    }
}

void
Simulator::runMerged(Cycles limit)
{
    while (true) {
        Cycles t = kCycleMax;
        std::size_t first = 0;
        bool multi = false;
        for (std::size_t r = 0; r < kNumSimDomains; ++r) {
            EventQueue *q = lanes_[r].queue.get();
            if (q == nullptr || q->empty())
                continue;
            const Cycles c = q->nextCycle();
            if (c < t) {
                t = c;
                first = r;
                multi = false;
            } else if (c == t && t != kCycleMax) {
                multi = true;
            }
        }
        if (t == kCycleMax || t > limit)
            return;
        now_ = t;
        if (!multi) {
            // Batched fast path: only one lane holds events at t, so
            // its runCycle() replays pure (cycle, key) order — unless
            // a callback schedules a same-cycle event into another
            // lane (its key is larger than everything drained so
            // far, so switching to the interleave mid-cycle is still
            // exact order).
            cross_same_cycle_ = false;
            draining_rank_ = first;
            events_run_ += lanes_[first].queue->runCycle(
                t, &cross_same_cycle_);
            draining_rank_ = kNoRank;
            if (!cross_same_cycle_)
                continue;
        }
        drainCycleInterleaved(t);
    }
}

void
Simulator::runDomainWindow(Lane &lane, std::size_t rank,
                           Cycles horizon, std::uint64_t epoch)
{
    WindowCtx ctx;
    ctx.sim = this;
    ctx.rank = rank;
    ctx.clock = lane.clock;
    ctx.epoch = epoch;
    ctx.local = 0;
    ctx.events = 0;
    ctx.outbox = &lane.outbox;
    tls_window_ = &ctx;
    EventQueue &q = *lane.queue;
    // Batched per-cycle drain, like the serial run loop. Intra-domain
    // schedules during the window land in this queue directly (with
    // this window's epoch, so they sort after all pre-window events);
    // cross-domain sends were validated against the lookahead and
    // buffered in the outbox.
    while (true) {
        const Cycles c = q.nextCycle();
        if (c >= horizon)
            break;
        ctx.clock = c;
        ctx.events += q.runCycle(c);
    }
    tls_window_ = nullptr;
    if (ctx.events > 0)
        lane.last_exec = ctx.clock;
    lane.events_run += ctx.events;
}

void
Simulator::commitOutboxes()
{
    // Rank order makes the commit sequence — and therefore the
    // committed events' merge keys — independent of worker timing.
    for (Lane &lane : lanes_) {
        for (Outgoing &msg : lane.outbox) {
            Lane &dst = lanes_[simDomainRank(msg.target)];
            dst.queue->scheduleSeq(msg.when, serialSeq(),
                                   std::move(msg.fn));
        }
        lane.outbox.clear();
    }
}

void
Simulator::runWindowed(Cycles limit)
{
    if (pool_ == nullptr)
        pool_ = std::make_unique<ParallelExecutor>(
            std::max<std::size_t>(engine_jobs_, 1));
    while (true) {
        Cycles t = kCycleMax;
        for (const Lane &lane : lanes_) {
            if (lane.queue != nullptr && !lane.queue->empty())
                t = std::min(t, lane.queue->nextCycle());
        }
        if (t == kCycleMax || t > limit)
            return;
        // Conservative horizon: no domain can receive an event below
        // t + Lmin, so everything below it is safe to run domain-
        // isolated. Events at exactly `limit` must still fire.
        Cycles horizon = t;
        if (min_lookahead_ > 0)
            horizon = (min_lookahead_ > kCycleMax - t)
                          ? kCycleMax
                          : t + min_lookahead_;
        if (limit != kCycleMax && horizon > limit)
            horizon = limit + 1;
        if (horizon <= t) {
            // Zero effective lookahead: the theory-honest degenerate
            // case — conservative synchronization serializes.
            now_ = t;
            drainCycleInterleaved(t);
            continue;
        }
        std::size_t active[kNumSimDomains];
        std::size_t n = 0;
        for (std::size_t r = 0; r < kNumSimDomains; ++r) {
            EventQueue *q = lanes_[r].queue.get();
            if (q != nullptr && !q->empty() &&
                q->nextCycle() < horizon)
                active[n++] = r;
        }
        ++windows_;
        const std::uint64_t epoch = bumpEpoch();
        if (n == 1) {
            runDomainWindow(lanes_[active[0]], active[0], horizon,
                            epoch);
        } else {
            pool_->forEach(n, [&](std::size_t i) {
                runDomainWindow(lanes_[active[i]], active[i],
                                horizon, epoch);
            });
        }
        // Barrier: back to serial keys, commit cross-domain sends in
        // rank order, advance every lane's conservative horizon.
        bumpEpoch();
        serial_local_ = 0;
        ++barriers_;
        commitOutboxes();
        for (Lane &lane : lanes_) {
            if (lane.queue == nullptr)
                continue;
            lane.clock = std::max(lane.clock, horizon);
            now_ = std::max(now_, lane.last_exec);
        }
        if (barrier_fn_)
            barrier_fn_(horizon);
    }
}

Cycles
Simulator::run()
{
    if (windowedEligible()) {
        runWindowed(kCycleMax);
        return now_;
    }
    if (!multi_domain_) {
        // Monolithic fast path: exactly the pre-domain run loop. A
        // callback may touch a hardware domain for the first time
        // mid-run (makeLane flips multi_domain_); re-check between
        // cycle batches and fall through to the merged loop so the
        // new lane's events are not orphaned.
        EventQueue &q = controlQueue();
        while (!multi_domain_) {
            const Cycles next = q.nextCycle();
            if (next == kCycleMax)
                return now_;
            now_ = next;
            events_run_ += q.runCycle(next);
        }
    }
    runMerged(kCycleMax);
    return now_;
}

Cycles
Simulator::runUntil(Cycles limit)
{
    if (windowedEligible()) {
        runWindowed(limit);
    } else if (!multi_domain_) {
        EventQueue &q = controlQueue();
        while (!multi_domain_) {
            const Cycles next = q.nextCycle();
            if (next == kCycleMax || next > limit)
                break;
            now_ = next;
            events_run_ += q.runCycle(next);
        }
        // A callback created a hardware lane mid-run: hand the
        // remaining events (all lanes) to the merged loop.
        if (multi_domain_)
            runMerged(limit);
    } else {
        runMerged(limit);
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace v10
