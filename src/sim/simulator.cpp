#include "sim/simulator.h"

#include "common/log.h"

namespace v10 {

EventId
Simulator::at(Cycles when, EventQueue::Callback cb)
{
    if (when < now_)
        V10_PANIC("Simulator::at: scheduling into the past (", when,
                  " < ", now_, ")");
    return events_.schedule(when, std::move(cb));
}

EventId
Simulator::after(Cycles delta, EventQueue::Callback cb)
{
    if (delta > kCycleMax - now_)
        V10_PANIC("Simulator::after: cycle overflow");
    return events_.schedule(now_ + delta, std::move(cb));
}

void
Simulator::cancel(EventId id)
{
    events_.cancel(id);
}

bool
Simulator::step()
{
    const Cycles next = events_.nextCycle();
    if (next == kCycleMax)
        return false;
    now_ = next;
    events_.popAndRun();
    ++events_run_;
    return true;
}

Cycles
Simulator::run(const std::function<bool()> &stop)
{
    while (step()) {
        if (stop && stop())
            break;
    }
    return now_;
}

Cycles
Simulator::runUntil(Cycles limit)
{
    while (true) {
        const Cycles next = events_.nextCycle();
        if (next == kCycleMax || next > limit)
            break;
        step();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace v10
