#include "sim/simulator.h"

#include "common/log.h"

namespace v10 {

void
Simulator::pastPanic(Cycles when) const
{
    V10_PANIC("Simulator::at: scheduling into the past (", when,
              " < ", now_, ")");
}

void
Simulator::overflowPanic() const
{
    V10_PANIC("Simulator::after: cycle overflow");
}

void
Simulator::intervalPanic() const
{
    V10_PANIC("Simulator::every: interval must be > 0 cycles");
}

void
Simulator::firePeriodic(std::size_t index)
{
    Periodic &p = *periodics_[index];
    p.pending = kNoEvent;
    p.fn();
    // Re-arm after the callback (matching a self-rescheduling event
    // handler's sequence order). The callback may have cancelled
    // this periodic; then the chain ends here.
    if (p.active)
        p.pending = after(p.interval,
                          [this, index] { firePeriodic(index); });
}

void
Simulator::cancelEvery(PeriodicId id)
{
    if (id == kNoPeriodic || id > periodics_.size())
        return;
    Periodic &p = *periodics_[static_cast<std::size_t>(id - 1)];
    if (!p.active)
        return;
    p.active = false;
    if (p.pending != kNoEvent) {
        events_.cancel(p.pending);
        p.pending = kNoEvent;
    }
}

void
Simulator::cancel(EventId id)
{
    events_.cancel(id);
}

bool
Simulator::step()
{
    // Single-pass peek-and-pop: the clock must advance before the
    // callback runs (it reads now()), so take the event first and
    // invoke it here.
    EventQueue::EventFn fn;
    const Cycles next = events_.takeNext(fn);
    if (next == kCycleMax)
        return false;
    now_ = next;
    fn();
    ++events_run_;
    return true;
}

Cycles
Simulator::run()
{
    while (true) {
        const Cycles next = events_.nextCycle();
        if (next == kCycleMax)
            break;
        now_ = next;
        events_run_ += events_.runCycle(next);
    }
    return now_;
}

Cycles
Simulator::runUntil(Cycles limit)
{
    while (true) {
        const Cycles next = events_.nextCycle();
        if (next == kCycleMax || next > limit)
            break;
        now_ = next;
        events_run_ += events_.runCycle(next);
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace v10
