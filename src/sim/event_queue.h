/**
 * @file
 * Discrete-event queue ordered by (cycle, insertion sequence).
 *
 * Ties at the same cycle fire in insertion order, which makes the
 * simulator deterministic: the scheduler's dispatch decisions at a
 * cycle never depend on queue internals.
 *
 * Internally this is a hybrid calendar queue. Events landing inside
 * the near-horizon window [base, base + kRingBuckets) — DMA
 * completions, FU retires, sampler ticks, i.e. almost everything a
 * simulation schedules — go to a bucketed ring with O(1) schedule
 * and pop. Events beyond the window (and any when < base from raw
 * queue use) overflow to the classic min-heap. The ordering contract
 * is preserved exactly: the window only ever grows forward, so every
 * heap entry at a cycle C was scheduled before every ring entry at C
 * and therefore carries a smaller sequence number; draining the heap
 * side first at each cycle replays pure (cycle, seq) order.
 *
 * Cancellation uses a generation-tagged slot table: an EventId packs
 * (slot index + 1, generation), slots are recycled through a free
 * list, and stale handles are harmless because the generation no
 * longer matches. Queue memory is therefore bounded by the peak
 * number of live events, not by the total ever scheduled.
 */

#ifndef V10_SIM_EVENT_QUEUE_H
#define V10_SIM_EVENT_QUEUE_H

#include <array>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/small_fn.h"
#include "common/types.h"

namespace v10 {

/** Opaque handle used to cancel a pending event. */
using EventId = std::uint64_t;

/** Sentinel for "no event". */
inline constexpr EventId kNoEvent = 0;

/**
 * Hybrid calendar queue of (cycle, seq) ordered events with O(1)
 * amortized schedule/pop for near-horizon events and slot-recycled
 * cancellation.
 */
class V10_DOMAIN_LOCAL EventQueue
{
  public:
    /** Allocation-free (for small closures) event callback. */
    using EventFn = SmallFn<void()>;

    /**
     * Near-horizon ring width in cycles (one cycle per bucket).
     * Sized from the measured scheduling-delta distribution of the
     * paper pair workloads: ~90% of deltas are below 2^15 cycles
     * (DMA chunk completions, FU retires, slice ticks), so this
     * window keeps the heap for the rare long-compute tail only.
     */
    static constexpr std::size_t kRingBuckets = 32768;

    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /**
     * Schedule @p cb to fire at absolute cycle @p when, ordered by
     * the queue's own insertion counter.
     * @return a handle usable with cancel().
     */
    template <typename F>
    EventId
    schedule(Cycles when, F &&cb)
    {
        return scheduleSeq(when, next_seq_++, std::forward<F>(cb));
    }

    /**
     * Schedule @p cb at @p when with a caller-supplied sequence
     * number. The domain-partitioned Simulator stamps one global
     * (epoch, domain-rank, local) key across all of its per-domain
     * queues so the cross-queue merge is a total order; standalone
     * queues should use schedule() instead. Sequence numbers must be
     * monotonically non-decreasing per queue — the ring/heap tie
     * rule (heap entries at a cycle predate ring entries at it)
     * depends on it.
     */
    template <typename F>
    EventId
    scheduleSeq(Cycles when, std::uint64_t seq, F &&cb)
    {
        if constexpr (std::is_same_v<std::decay_t<F>, EventFn>)
            return scheduleFn(when, seq, std::forward<F>(cb));
        else
            return scheduleFn(
                when, seq, EventFn(std::forward<F>(cb), arena_));
    }

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * id is a harmless no-op (lazy deletion).
     */
    void cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled, unfired) events. */
    std::size_t size() const { return live_; }

    /** Cycle of the earliest live event; kCycleMax when empty. */
    Cycles nextCycle() const;

    /** Merge key of the earliest live event: its (cycle, seq). */
    struct NextKey
    {
        Cycles when;
        std::uint64_t seq;
    };

    /**
     * Peek the earliest live event's (cycle, seq) without popping —
     * the multi-queue merge loop compares these keys across domains
     * to pick the globally next event. Returns
     * {kCycleMax, ~0ULL} when empty.
     */
    NextKey nextKey() const;

    /**
     * Pop and run the earliest live event.
     * @return the cycle it fired at, or kCycleMax when empty.
     */
    Cycles popAndRun();

    /**
     * Pop the earliest live event into @p fn WITHOUT running it —
     * the single-pass peek-and-pop the per-event stepping loop uses
     * (one queue scan per event instead of nextCycle + popAndRun).
     * @return the event's cycle, or kCycleMax when empty (then @p fn
     *         is untouched).
     */
    Cycles takeNext(EventFn &fn);

    /**
     * Drain every event at exactly @p when in (cycle, seq) order,
     * including events scheduled at @p when by the callbacks
     * themselves. When @p interrupt is non-null it is re-checked
     * after every fired callback and the drain stops early once it
     * reads true — the domain-merged run loop uses this to fall back
     * to per-event interleaving when a callback schedules a
     * same-cycle event into another domain's queue.
     * @return the number of events fired.
     */
    std::uint64_t runCycle(Cycles when,
                           const bool *interrupt = nullptr);

    /** Drop all pending events. */
    void clear();

    /**
     * Event-id slots ever allocated — bounded by the peak live event
     * count, not the total scheduled (memory regression probe).
     */
    std::size_t slotCount() const { return slots_.size(); }

    /** Slab pool backing oversized event closures. */
    SmallFnArena &arena() { return arena_; }

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t seq;
        EventId id;
        EventFn fn;
    };

    /**
     * One near-horizon cycle's events: `vec` is index + 1 of an
     * entry vector borrowed from vec_pool_ (contiguous, insertion
     * order), `head` the first unconsumed entry. A bucket is valid
     * only while its occupancy bit is set, so the bucket storage
     * needs no initialization (trivial, implicit-lifetime type).
     */
    struct Bucket
    {
        std::uint32_t vec;
        std::uint32_t head;
    };

    /** Cancellation state for one recycled EventId slot. */
    struct Slot
    {
        std::uint32_t gen = 0;
        bool armed = false;
    };

    static constexpr Cycles kRingMask = kRingBuckets - 1;
    static constexpr std::size_t kBitWords = kRingBuckets / 64;
    static constexpr std::size_t kSumWords = kBitWords / 64;

    /** Min-heap ordering on (when, seq). */
    static bool later(const Entry &a, const Entry &b);

    EventId scheduleFn(Cycles when, std::uint64_t seq, EventFn fn);

    /** True when @p when belongs in the ring window. */
    bool
    inWindow(Cycles when) const
    {
        return when >= base_ && when - base_ < kRingBuckets;
    }

    EventId acquireSlot();
    void releaseSlot(EventId id);
    bool isLive(EventId id) const;

    void setBit(std::size_t bucket) const;
    void clearBit(std::size_t bucket) const;
    bool testBit(std::size_t bucket) const;

    /** Pop dead entries off the heap top; return its cycle. */
    Cycles purgeHeapTop() const;

    /** Ring bucket @p bucket (contents meaningful only while its
     * occupancy bit is set). */
    Bucket &bucketRef(std::size_t bucket) const;

    /** Return bucket @p bucket's entry vector to the pool (keeps
     * its capacity) and clear the occupancy bit. */
    void releaseBucket(std::size_t bucket, Bucket &bk) const;

    /**
     * Smallest offset >= @p offset (in ring order from @p start)
     * whose bucket has entries; kRingBuckets when none. Uses the
     * two-level bitmap, so long empty stretches cost a handful of
     * word reads rather than one per 64 buckets.
     */
    std::size_t nextOccupiedOffset(std::size_t start,
                                   std::size_t offset) const;

    /**
     * Cycle of the earliest live ring event (purging dead bucket
     * heads along the way); kCycleMax when the ring is empty.
     */
    Cycles firstRingCycle() const;

    /** Remove and return the heap top (caller purged it live). */
    Entry takeHeapTop();

    // Destruction order matters: the arena must outlive every stored
    // EventFn, so it is declared first (destroyed last).
    SmallFnArena arena_;

    /** Far-future overflow, min-heap on (when, seq). */
    mutable std::vector<Entry> heap_;

    /** Near-horizon ring: bucket (when & kRingMask) holds cycle
     * `when` for when in [base_, base_ + kRingBuckets). Raw,
     * uninitialized storage — the occupancy bitmap is the validity
     * flag, so constructing a queue touches only the bitmaps. */
    std::unique_ptr<unsigned char[]> ring_raw_;

    /** Entry vectors backing occupied buckets. Drained vectors go
     * back to free_vecs_ with their capacity intact, so steady-state
     * scheduling does not allocate; the pool peaks at the maximum
     * number of concurrently pending cycles. */
    mutable std::vector<std::vector<Entry>> vec_pool_;
    mutable std::vector<std::uint32_t> free_vecs_;

    /** Occupancy bitmap over ring buckets (dead entries included
     * until lazily purged). */
    mutable std::array<std::uint64_t, kBitWords> ring_bits_{};

    /** Second level: bit w set iff ring_bits_[w] != 0. */
    mutable std::array<std::uint64_t, kSumWords> ring_sum_{};

    /** Ring window start; advances to each fired cycle. */
    Cycles base_ = 0;

    /** Physical entries held across all ring buckets (live plus
     * dead-not-yet-purged). Zero lets heap-dominant workloads skip
     * the bitmap scan entirely. */
    mutable std::size_t ring_entries_ = 0;

    /** Lower bound on the earliest occupied ring bucket's cycle —
     * scans jump straight there instead of walking from base_.
     * Entries leave buckets only at the front, and schedules lower
     * the bound, so it can only ever be stale-low (extra scan work,
     * never a missed event). */
    mutable Cycles ring_next_ = kCycleMax;

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_slots_;

    std::uint64_t next_seq_ = 0;
    std::size_t live_ = 0;
};

} // namespace v10

#endif // V10_SIM_EVENT_QUEUE_H
