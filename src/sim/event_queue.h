/**
 * @file
 * Discrete-event queue ordered by (cycle, insertion sequence).
 *
 * Ties at the same cycle fire in insertion order, which makes the
 * simulator deterministic: the scheduler's dispatch decisions at a
 * cycle never depend on heap internals.
 */

#ifndef V10_SIM_EVENT_QUEUE_H
#define V10_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace v10 {

/** Opaque handle used to cancel a pending event. */
using EventId = std::uint64_t;

/** Sentinel for "no event". */
inline constexpr EventId kNoEvent = 0;

/**
 * Min-heap of (cycle, seq) ordered events with O(log n) insert/pop
 * and lazy cancellation.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Schedule @p cb to fire at absolute cycle @p when.
     * @return a handle usable with cancel().
     */
    EventId schedule(Cycles when, Callback cb);

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * id is a harmless no-op (lazy deletion).
     */
    void cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled, unfired) events. */
    std::size_t size() const { return live_; }

    /** Cycle of the earliest live event; kCycleMax when empty. */
    Cycles nextCycle() const;

    /**
     * Pop and run the earliest live event.
     * @return the cycle it fired at, or kCycleMax when empty.
     */
    Cycles popAndRun();

    /** Drop all pending events. */
    void clear();

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t seq;
        EventId id;
        Callback cb;
    };

    /** Min-heap ordering on (when, seq). */
    static bool later(const Entry &a, const Entry &b);

    /** Pop cancelled entries off the heap top. */
    void skipDead() const;

    mutable std::vector<Entry> heap_;
    mutable std::vector<bool> cancelled_;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    std::size_t live_ = 0;
};

} // namespace v10

#endif // V10_SIM_EVENT_QUEUE_H
