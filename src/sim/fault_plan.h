/**
 * @file
 * Deterministic fault injection for robustness studies.
 *
 * A FaultPlan is a set of seeded injection sites — hardware
 * transients (HBM transaction stalls, bandwidth droop, DMA timeouts,
 * SA context-save corruption) and tenant misbehavior (runaway
 * operators, request floods) — parsed from a compact spec string
 * (`--faults`) or JSON. A FaultInjector instantiates one plan for one
 * run: every decision is a draw from a seeded RNG made in simulation
 * order, so the same (plan, seed) produces bit-identical fault
 * sequences across runs and under parallel sweeps (each run owns its
 * injector).
 *
 * Spec grammar (see docs/ROBUSTNESS.md):
 *
 *   spec    := site ("," site)*
 *   site    := kind (":" key "=" value)*
 *   kind    := "hbm-stall" | "hbm-droop" | "dma-timeout"
 *            | "sa-corrupt" | "runaway" | "flood"
 *   key     := "rate" | "mag" | "tenant" | "after" | "count"
 *
 * e.g. "runaway:rate=0.05:tenant=1:mag=8,dma-timeout:rate=0.01"
 */

#ifndef V10_SIM_FAULT_PLAN_H
#define V10_SIM_FAULT_PLAN_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/types.h"

namespace v10 {

class JsonWriter;

/**
 * One element of a compact "kind:key=value:..." spec list — the
 * shared surface syntax of `--faults`, `--churn`, and
 * `--antagonist` (docs/ROBUSTNESS.md, docs/RESILIENCE.md). Values
 * stay raw strings; each consumer validates its own keys.
 */
struct SpecSite
{
    std::string kind;
    std::vector<std::pair<std::string, std::string>> fields;
};

/**
 * Split a comma-separated spec into sites and key=value fields.
 * Structured errors name the offending token; empty specs, empty
 * sites, and malformed fields all fail.
 */
Result<std::vector<SpecSite>>
parseSpecSites(const std::string &spec, const std::string &source);

/** Injection-site kinds. */
enum class FaultKind {
    HbmStall,         ///< DMA start delayed by `mag` cycles
    HbmDroop,         ///< DMA transaction moves `mag`x the bytes
    DmaTimeout,       ///< DMA hangs; engine times out and retries
    SaContextCorrupt, ///< SA context save lost; operator replays
    RunawayOp,        ///< operator runs `mag`x its declared cycles
    TraceFlood,       ///< open-loop tenant bursts `mag` extra arrivals
};

/** Spec-grammar name of a fault kind ("hbm-stall", ...). */
const char *faultKindName(FaultKind kind);

/** One seeded injection site. */
struct FaultSite
{
    FaultKind kind = FaultKind::HbmStall;

    /** Probability per opportunity (DMA start, preemption, ...). */
    double rate = 0.0;

    /** Kind-specific magnitude; 0 selects the kind's default
     * (stall cycles, byte inflation, runaway factor, burst size). */
    double magnitude = 0.0;

    /** Target tenant index; -1 = every tenant. */
    int tenant = -1;

    /** Site is dormant before this cycle. */
    Cycles after = 0;

    /** Max injections from this site; 0 = unlimited. */
    std::uint64_t maxCount = 0;

    /** Magnitude with the kind default applied. */
    double effectiveMagnitude() const;

    /** Round-trippable spec fragment ("runaway:rate=0.05:..."). */
    std::string spec() const;
};

/**
 * A parsed, validated set of injection sites plus the default seed.
 * Plans are immutable inputs shared (by const pointer) across
 * parallel runs; all mutable state lives in per-run FaultInjectors.
 */
class FaultPlan
{
  public:
    /** Parse the CLI spec grammar; errors carry the site index and
     * offending token. */
    static Result<FaultPlan> parse(const std::string &spec,
                                   const std::string &source =
                                       "--faults");

    /**
     * Parse the JSON form: {"seed": N, "faults": [{"kind": "...",
     * "rate": R, "mag": M, "tenant": T, "after": C, "count": K}]}.
     */
    static Result<FaultPlan> fromJson(const std::string &text,
                                      const std::string &source);

    /** fromJson() over a file's contents. */
    static Result<FaultPlan> fromJsonFile(const std::string &path);

    /** Append a site (programmatic construction in tests/benches). */
    void add(FaultSite site) { sites_.push_back(site); }

    bool empty() const { return sites_.empty(); }
    const std::vector<FaultSite> &sites() const { return sites_; }

    /** Default injector seed (overridable by --fault-seed). */
    std::uint64_t seed() const { return seed_; }
    void setSeed(std::uint64_t seed) { seed_ = seed; }

    /** Round-trippable spec string of the whole plan. */
    std::string summary() const;

  private:
    std::vector<FaultSite> sites_;
    std::uint64_t seed_ = 1;
};

/** One logged injection (or degradation action taken in response). */
struct FaultEvent
{
    Cycles cycle = 0;
    std::string kind;   ///< faultKindName() or an engine action
                        ///< ("dma-retry", "quarantine", ...)
    WorkloadId tenant = kNoWorkload;
    std::string detail; ///< free-form context
};

/**
 * Per-run instantiation of a FaultPlan: owns the seeded RNG and the
 * fault log. Not thread-safe — one injector per simulated run, with
 * all queries made from the (single-threaded) simulation loop.
 */
class V10_DOMAIN_LOCAL FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, std::uint64_t seed);

    /** Outcome of the HBM/DMA sites for one transfer start. */
    struct DmaDecision
    {
        Cycles stallCycles = 0; ///< issue delayed by this much
        double inflate = 1.0;   ///< byte multiplier (droop)
        bool hang = false;      ///< transfer never completes
    };

    /** Query the HBM-stall / droop / timeout sites at a DMA start. */
    DmaDecision onDmaStart(WorkloadId tenant, Cycles now);

    /** True when an SA preemption's context save is corrupted. */
    bool corruptSaContext(WorkloadId tenant, Cycles now);

    /** Compute-cycle inflation for a dispatched operator (1.0 = no
     * runaway injected). */
    double runawayFactor(WorkloadId tenant, Cycles now);

    /** Extra open-loop arrivals to inject at this arrival (0 = no
     * flood). */
    std::uint64_t floodBurst(WorkloadId tenant, Cycles now);

    /** Log a degradation action (retry, quarantine, watchdog). */
    void record(const std::string &kind, WorkloadId tenant,
                Cycles now, const std::string &detail);

    /** Injected faults (excludes record()ed engine actions). */
    std::uint64_t injectedCount() const { return injected_; }

    /** Full chronological event log. */
    const std::vector<FaultEvent> &log() const { return log_; }

    /** Serialize the log as a JSON array (diagnostic bundle). */
    void writeLogJson(JsonWriter &w) const;

  private:
    struct SiteState
    {
        FaultSite site;
        std::uint64_t fired = 0;
    };

    /** Draw the site's rate; true when the fault fires now. Always
     * consumes one RNG draw for a matching live site, so decision
     * sequences are stable under rate changes at other sites. */
    bool fires(SiteState &state, WorkloadId tenant, Cycles now);

    void logInjection(const SiteState &state, WorkloadId tenant,
                      Cycles now, const std::string &detail);

    std::vector<SiteState> sites_;
    Rng rng_;
    std::uint64_t injected_ = 0;
    std::vector<FaultEvent> log_;
};

} // namespace v10

#endif // V10_SIM_FAULT_PLAN_H
