/**
 * @file
 * The simulation kernel: per-domain clocks and event queues merged
 * into one deterministic timeline, with the run loop used by every
 * experiment. Components schedule callbacks at absolute or relative
 * cycles into a simulation domain (SA, VU, DMA/HBM, control); the
 * kernel advances the clock to each event in global order.
 *
 * Ordering model. Every scheduled event carries a 64-bit merge key
 * (epoch << 34) | (domain-rank << 32) | local. In serial contexts
 * (setup code, the merged run loops, barrier commits) keys come from
 * one shared counter, so the cross-queue merge by (cycle, key)
 * reproduces the exact (cycle, insertion-seq) order the monolithic
 * queue had — bit-identical schedules, stats, and traces. Inside a
 * parallel window each domain stamps its own (epoch, rank, local)
 * block deterministically, independent of thread interleaving.
 *
 * Parallel windows. couple(src, dst, L) declares that events may
 * cross src -> dst only with >= L cycles of latency (the lookahead).
 * With a declared graph and setEngineJobs(N), run() advances in
 * conservative windows [T, T + Lmin): every domain with events below
 * the horizon drains them on a worker pool, cross-domain sends are
 * buffered in per-domain outboxes, and the barrier commits them in
 * domain-rank order — so results are identical for any job count,
 * including jobs=1. A zero or undeclared lookahead degenerates to
 * the serial merged loop: that is the honest conservative answer for
 * the single-core engine, whose domains couple through shared
 * scheduler state at the HBM arbitration point every cycle (see
 * docs/ARCHITECTURE.md, "Domain-partitioned engine").
 *
 * Scheduling is allocation-free for the common small closure: at() /
 * after() / every() wrap the callback in the target queue's
 * SmallFn-based EventFn directly. run() and runUntil() drain all
 * events of a cycle in one batched pass; the per-event order is
 * identical to single-stepping, so results are bit-identical either
 * way.
 */

#ifndef V10_SIM_SIMULATOR_H
#define V10_SIM_SIMULATOR_H

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"
#include "sim/domain.h"
#include "sim/event_queue.h"

namespace v10 {

class ParallelExecutor;

/**
 * Discrete-event simulation kernel with one event queue per
 * SimDomain.
 *
 * Deterministic by construction: serial contexts replay the legacy
 * monolithic order exactly, and parallel windows are confined to one
 * domain per worker with barrier-ordered cross-domain commits, so a
 * run's output never depends on the engine job count.
 */
class Simulator
{
  public:
    Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    ~Simulator();

    /**
     * Current simulated cycle: the executing domain's clock inside a
     * parallel window, the global clock otherwise.
     */
    Cycles
    now() const
    {
        const WindowCtx *w = tls_window_;
        return (w != nullptr && w->sim == this) ? w->clock : now_;
    }

    /** Schedule @p cb at absolute cycle @p when into @p domain. */
    template <typename F>
    EventId
    at(SimDomain domain, Cycles when, F &&cb)
    {
        const std::size_t rank = simDomainRank(domain);
        WindowCtx *w = activeWindow();
        if (w != nullptr) {
            if (rank == w->rank) {
                if (when < w->clock)
                    pastPanic(when, w->clock);
                return tagId(rank,
                             lanes_[rank].queue->scheduleSeq(
                                 when, windowSeq(*w),
                                 std::forward<F>(cb)));
            }
            // Cross-domain send from inside a parallel window:
            // buffered in the outbox, committed at the barrier. The
            // closure is built arena-less because it crosses threads
            // (the target domain destroys it).
            return bufferSend(*w, domain, when,
                              EventQueue::EventFn(
                                  std::forward<F>(cb)));
        }
        if (when < now_)
            pastPanic(when, now_);
        EventQueue &q = laneQueue(rank);
        if (when < lanes_[rank].clock)
            horizonPanic(rank, when);
        if (draining_rank_ != kNoRank && rank != draining_rank_ &&
            when == now_)
            cross_same_cycle_ = true;
        return tagId(rank, q.scheduleSeq(when, serialSeq(),
                                         std::forward<F>(cb)));
    }

    /** Schedule @p cb at absolute cycle @p when (control domain). */
    template <typename F>
    EventId
    at(Cycles when, F &&cb)
    {
        return at(SimDomain::Control, when, std::forward<F>(cb));
    }

    /** Schedule @p cb @p delta cycles from now into @p domain. */
    template <typename F>
    EventId
    after(SimDomain domain, Cycles delta, F &&cb)
    {
        const Cycles base = now();
        if (delta > kCycleMax - base)
            overflowPanic();
        return at(domain, base + delta, std::forward<F>(cb));
    }

    /** Schedule @p cb @p delta cycles from now (control domain). */
    template <typename F>
    EventId
    after(Cycles delta, F &&cb)
    {
        return after(SimDomain::Control, delta,
                     std::forward<F>(cb));
    }

    /**
     * Fire @p cb every @p interval cycles (> 0), starting one
     * interval from now, until cancelEvery(). Periodics live in the
     * control domain. The callback is stored once; each tick re-arms
     * with a tiny inline closure, so periodic sampling is
     * allocation-free.
     * @return a handle usable with cancelEvery().
     */
    template <typename F>
    PeriodicId
    every(Cycles interval, F &&cb)
    {
        if (interval == 0)
            intervalPanic();
        periodics_.push_back(std::make_unique<Periodic>());
        Periodic &p = *periodics_.back();
        p.interval = interval;
        p.fn = EventQueue::EventFn(std::forward<F>(cb),
                                   controlQueue().arena());
        p.active = true;
        const auto id =
            static_cast<PeriodicId>(periodics_.size());
        const std::size_t index = periodics_.size() - 1;
        p.pending = after(interval,
                          [this, index] { firePeriodic(index); });
        return id;
    }

    /** Stop a periodic event (no-op on kNoPeriodic / done ids). */
    void cancelEvery(PeriodicId id);

    /**
     * Cancel a pending event (no-op if already fired). The id routes
     * to the owning domain's queue; inside a parallel window only
     * own-domain events may be cancelled.
     */
    void cancel(EventId id);

    /**
     * Declare a coupling edge: events may travel @p src -> @p dst
     * only with at least @p lookahead cycles of latency. The minimum
     * lookahead over all declared edges is the conservative window
     * width; until a graph is declared, cross-domain scheduling is
     * unrestricted and runs serially merged. Redeclaring an edge
     * keeps the smaller lookahead.
     */
    void couple(SimDomain src, SimDomain dst, Cycles lookahead);

    /**
     * Engine worker-pool size for parallel windows. 0 (the default)
     * disables windowing: runs use the serial merged loop. With
     * jobs >= 1 AND a declared coupling graph, run()/runUntil()
     * advance in conservative windows on a pool of @p jobs threads;
     * output is identical for every value of @p jobs.
     */
    void setEngineJobs(std::size_t jobs);

    /** Configured engine job count (0 = serial merged). */
    std::size_t engineJobs() const { return engine_jobs_; }

    /**
     * Serial hook run at each parallel-window barrier with the
     * window horizon — the seam where shared-HBM arbitration state
     * reconciles between windows in the multi-core model.
     */
    template <typename F>
    void
    onWindowBarrier(F &&fn)
    {
        barrier_fn_ = BarrierFn(std::forward<F>(fn));
    }

    /** Run until the event queues drain. @return the final cycle. */
    Cycles run();

    /**
     * Run until the queues drain or @p stop returns true (checked
     * after each event). Always serial merged order — per-event stop
     * predicates are inherently sequential.
     * @return the final cycle.
     */
    template <typename Stop>
    Cycles
    run(Stop &&stop)
    {
        while (step()) {
            if (stop())
                break;
        }
        return now_;
    }

    /**
     * Run until the clock reaches @p limit or the queues drain.
     * Events at exactly @p limit still fire.
     */
    Cycles runUntil(Cycles limit);

    /**
     * Fire exactly one event (globally next by (cycle, key)).
     * @return true if an event fired, false if the queues are empty.
     */
    bool step();

    /** True when no events are pending in any domain. */
    bool idle() const;

    /** Number of events executed so far (all domains). */
    std::uint64_t eventsRun() const;

    /**
     * Events executed by @p domain inside parallel windows. Serial
     * merged execution attributes to the global count only.
     */
    std::uint64_t domainEventsRun(SimDomain domain) const;

    /** Parallel windows executed so far (lookahead amortization
     * probe: windows() << eventsRun() means barriers amortize). */
    std::uint64_t windows() const { return windows_; }

    /** Window barriers executed so far. */
    std::uint64_t barriers() const { return barriers_; }

    /** Minimum declared coupling lookahead; kCycleMax when no graph
     * has been declared. */
    Cycles minLookahead() const { return min_lookahead_; }

    /** Access the control-domain queue (tests and advanced
     * components; pre-domain callers see the legacy behavior). */
    EventQueue &queue() { return controlQueue(); }

    /** Access one domain's queue, constructing it on first use. */
    EventQueue &
    queue(SimDomain domain)
    {
        return laneQueue(simDomainRank(domain));
    }

  private:
    /** Serial barrier-hook callback. */
    using BarrierFn = SmallFn<void(Cycles)>;

    /** A cross-domain message buffered during a parallel window. */
    struct Outgoing
    {
        SimDomain target;
        Cycles when;
        EventQueue::EventFn fn;
    };

    /**
     * One domain's execution lane. During a parallel window each
     * lane is owned by exactly one worker thread: the worker drains
     * `queue` up to the horizon and appends cross-domain sends to
     * `outbox`; the barrier (serial) commits outboxes in rank order
     * and advances `clock`. Outside windows all lanes are touched
     * only by the (single-threaded) merged loops.
     */
    struct Lane
    {
        std::unique_ptr<EventQueue> queue;
        /** Conservative horizon: events below it already ran. */
        Cycles clock = 0;
        /** Cycle of the lane's last executed event. */
        Cycles last_exec = 0;
        /** Events executed inside parallel windows. */
        std::uint64_t events_run = 0;
        std::vector<Outgoing> outbox;
    };

    /**
     * Per-worker execution context of one parallel window; lives on
     * the worker's stack and is published through tls_window_ so
     * at()/after()/now() resolve against the executing domain.
     */
    struct WindowCtx
    {
        Simulator *sim;
        std::size_t rank;
        Cycles clock;
        std::uint64_t epoch;
        std::uint64_t local;
        std::uint64_t events;
        std::vector<Outgoing> *outbox;
    };

    /** One every() registration; stable address (callbacks may
     * register further periodics while one is firing). */
    struct Periodic
    {
        Cycles interval = 0;
        EventQueue::EventFn fn;
        EventId pending = kNoEvent;
        bool active = false;
    };

    /** EventId bits carrying the owning domain's rank. */
    static constexpr unsigned kDomainShift = 62;
    static constexpr EventId kIdMask =
        (EventId{1} << kDomainShift) - 1;

    /** Sentinel for "no merged-loop drain in progress". */
    static constexpr std::size_t kNoRank = kNumSimDomains;

    /** Merge-key layout: (epoch << 34) | (rank << 32) | local. */
    static constexpr unsigned kSeqEpochShift = 34;
    static constexpr unsigned kSeqRankShift = 32;
    static constexpr std::uint64_t kSeqLocalMax =
        (std::uint64_t{1} << kSeqRankShift) - 1;

    static EventId
    tagId(std::size_t rank, EventId raw)
    {
        return raw | (static_cast<EventId>(rank) << kDomainShift);
    }

    [[noreturn]] void pastPanic(Cycles when, Cycles clock) const;
    [[noreturn]] void horizonPanic(std::size_t rank,
                                   Cycles when) const;
    [[noreturn]] void overflowPanic() const;
    [[noreturn]] void intervalPanic() const;
    [[noreturn]] void seqOverflowPanic() const;

    /** The executing window context, iff it belongs to this sim. */
    WindowCtx *
    activeWindow() const
    {
        WindowCtx *w = tls_window_;
        return (w != nullptr && w->sim == this) ? w : nullptr;
    }

    EventQueue &
    controlQueue()
    {
        return *lanes_[simDomainRank(SimDomain::Control)].queue;
    }

    /** Domain @p rank's queue, constructing it on first use. */
    EventQueue &
    laneQueue(std::size_t rank)
    {
        EventQueue *q = lanes_[rank].queue.get();
        if (q == nullptr)
            return makeLane(rank);
        return *q;
    }

    EventQueue &makeLane(std::size_t rank);

    /** Next serial-context merge key (shared across all queues). */
    std::uint64_t
    serialSeq()
    {
        if (serial_local_ > kSeqLocalMax) {
            bumpEpoch();
            serial_local_ = 0;
        }
        return (epoch_ << kSeqEpochShift) | serial_local_++;
    }

    /** Next merge key for @p w's domain inside its window. */
    std::uint64_t
    windowSeq(WindowCtx &w)
    {
        if (w.local > kSeqLocalMax)
            seqOverflowPanic();
        return (w.epoch << kSeqEpochShift) |
               (static_cast<std::uint64_t>(w.rank)
                << kSeqRankShift) |
               w.local++;
    }

    std::uint64_t bumpEpoch();

    EventId bufferSend(WindowCtx &w, SimDomain target, Cycles when,
                       EventQueue::EventFn fn);

    /** Run one periodic tick, then re-arm. */
    void firePeriodic(std::size_t index);

    /** True when run()/runUntil() should use parallel windows. */
    bool
    windowedEligible() const
    {
        return engine_jobs_ >= 1 && has_graph_;
    }

    /** Serial merged run loop over all occupied lanes. */
    void runMerged(Cycles limit);

    /** Per-event merged pop; false when all queues are empty. */
    bool stepMerged();

    /** Drain every event at cycle @p when across all lanes in
     * global (cycle, key) order. */
    void drainCycleInterleaved(Cycles when);

    /** Conservative windowed run loop (parallel engine). */
    void runWindowed(Cycles limit);

    /** Drain one lane up to @p horizon on the calling thread. */
    void runDomainWindow(Lane &lane, std::size_t rank,
                         Cycles horizon, std::uint64_t epoch);

    /** Commit buffered cross-domain sends in rank order. */
    void commitOutboxes();

    // Per-worker window context (null outside parallel windows).
    // Thread-local by construction: each worker publishes only its
    // own stack frame here, so there is no cross-thread access.
    inline static thread_local WindowCtx *tls_window_ = nullptr;

    // Partitioned across worker threads during parallel windows —
    // one lane per worker, no lane touched by two threads; barriers
    // and serial loops access all lanes single-threaded.
    std::array<Lane, kNumSimDomains> lanes_ V10_SHARED_STATE;

    /** lookahead_[src][dst]: declared min latency; kCycleMax = no
     * edge (cross-domain sends forbidden inside windows). */
    std::array<std::array<Cycles, kNumSimDomains>, kNumSimDomains>
        lookahead_ V10_DOMAIN_LOCAL;

    std::vector<std::unique_ptr<Periodic>> periodics_
        V10_DOMAIN_LOCAL;

    std::unique_ptr<ParallelExecutor> pool_ V10_DOMAIN_LOCAL;

    BarrierFn barrier_fn_ V10_DOMAIN_LOCAL;

    Cycles now_ V10_DOMAIN_LOCAL = 0;
    std::uint64_t events_run_ V10_DOMAIN_LOCAL = 0;

    std::uint64_t epoch_ V10_DOMAIN_LOCAL = 0;
    std::uint64_t serial_local_ V10_DOMAIN_LOCAL = 0;

    Cycles min_lookahead_ V10_DOMAIN_LOCAL = kCycleMax;
    std::size_t engine_jobs_ V10_DOMAIN_LOCAL = 0;
    bool has_graph_ V10_DOMAIN_LOCAL = false;
    bool multi_domain_ V10_DOMAIN_LOCAL = false;

    /** Lane being batch-drained by the merged loop (else kNoRank);
     * a same-cycle schedule into another lane sets
     * cross_same_cycle_ so the loop falls back to the per-event
     * interleave for the rest of the cycle. */
    std::size_t draining_rank_ V10_DOMAIN_LOCAL = kNoRank;
    bool cross_same_cycle_ V10_DOMAIN_LOCAL = false;

    std::uint64_t windows_ V10_DOMAIN_LOCAL = 0;
    std::uint64_t barriers_ V10_DOMAIN_LOCAL = 0;
};

} // namespace v10

#endif // V10_SIM_SIMULATOR_H
