/**
 * @file
 * The simulation kernel: a cycle clock plus the event queue, with the
 * run loop used by every experiment. Components schedule callbacks at
 * absolute or relative cycles; the kernel advances the clock to each
 * event in order.
 *
 * Scheduling is allocation-free for the common small closure: at() /
 * after() / every() are templates that wrap the callback in the
 * queue's SmallFn-based EventFn directly (oversized captures spill to
 * the queue's slab pool). run() and runUntil() drain all events of a
 * cycle in one batched pass; the per-event order is identical to
 * single-stepping, so results are bit-identical either way.
 */

#ifndef V10_SIM_SIMULATOR_H
#define V10_SIM_SIMULATOR_H

#include <memory>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace v10 {

/**
 * Discrete-event simulation kernel.
 *
 * Single-threaded, deterministic. The clock only moves inside run()
 * / runUntil() / step(); callbacks observe a consistent now().
 */
class V10_DOMAIN_LOCAL Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated cycle. */
    Cycles now() const { return now_; }

    /** Schedule @p cb at absolute cycle @p when (>= now). */
    template <typename F>
    EventId
    at(Cycles when, F &&cb)
    {
        if (when < now_)
            pastPanic(when);
        return events_.schedule(when, std::forward<F>(cb));
    }

    /** Schedule @p cb @p delta cycles from now. */
    template <typename F>
    EventId
    after(Cycles delta, F &&cb)
    {
        if (delta > kCycleMax - now_)
            overflowPanic();
        return events_.schedule(now_ + delta, std::forward<F>(cb));
    }

    /**
     * Fire @p cb every @p interval cycles (> 0), starting one
     * interval from now, until cancelEvery(). The callback is stored
     * once; each tick re-arms with a tiny inline closure, so
     * periodic sampling is allocation-free.
     * @return a handle usable with cancelEvery().
     */
    template <typename F>
    PeriodicId
    every(Cycles interval, F &&cb)
    {
        if (interval == 0)
            intervalPanic();
        periodics_.push_back(std::make_unique<Periodic>());
        Periodic &p = *periodics_.back();
        p.interval = interval;
        p.fn = EventQueue::EventFn(std::forward<F>(cb),
                                   events_.arena());
        p.active = true;
        const auto id =
            static_cast<PeriodicId>(periodics_.size());
        const std::size_t index = periodics_.size() - 1;
        p.pending = after(interval,
                          [this, index] { firePeriodic(index); });
        return id;
    }

    /** Stop a periodic event (no-op on kNoPeriodic / done ids). */
    void cancelEvery(PeriodicId id);

    /** Cancel a pending event (no-op if already fired). */
    void cancel(EventId id);

    /** Run until the event queue drains. @return the final cycle. */
    Cycles run();

    /**
     * Run until the event queue drains or @p stop returns true
     * (checked after each event).
     * @return the final cycle.
     */
    template <typename Stop>
    Cycles
    run(Stop &&stop)
    {
        while (step()) {
            if (stop())
                break;
        }
        return now_;
    }

    /**
     * Run until the clock reaches @p limit or the queue drains.
     * Events at exactly @p limit still fire.
     */
    Cycles runUntil(Cycles limit);

    /**
     * Fire exactly one event.
     * @return true if an event fired, false if the queue was empty.
     */
    bool step();

    /** True when no events are pending. */
    bool idle() const { return events_.empty(); }

    /** Number of events executed so far. */
    std::uint64_t eventsRun() const { return events_run_; }

    /** Access the raw queue (tests and advanced components). */
    EventQueue &queue() { return events_; }

  private:
    /** One every() registration; stable address (callbacks may
     * register further periodics while one is firing). */
    struct Periodic
    {
        Cycles interval = 0;
        EventQueue::EventFn fn;
        EventId pending = kNoEvent;
        bool active = false;
    };

    [[noreturn]] void pastPanic(Cycles when) const;
    [[noreturn]] void overflowPanic() const;
    [[noreturn]] void intervalPanic() const;

    /** Run one periodic tick, then re-arm. */
    void firePeriodic(std::size_t index);

    EventQueue events_;
    std::vector<std::unique_ptr<Periodic>> periodics_;
    Cycles now_ = 0;
    std::uint64_t events_run_ = 0;
};

} // namespace v10

#endif // V10_SIM_SIMULATOR_H
