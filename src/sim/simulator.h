/**
 * @file
 * The simulation kernel: a cycle clock plus the event queue, with the
 * run loop used by every experiment. Components schedule callbacks at
 * absolute or relative cycles; the kernel advances the clock to each
 * event in order.
 */

#ifndef V10_SIM_SIMULATOR_H
#define V10_SIM_SIMULATOR_H

#include <functional>

#include "common/types.h"
#include "sim/event_queue.h"

namespace v10 {

/**
 * Discrete-event simulation kernel.
 *
 * Single-threaded, deterministic. The clock only moves inside run()
 * / runUntil() / step(); callbacks observe a consistent now().
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated cycle. */
    Cycles now() const { return now_; }

    /** Schedule @p cb at absolute cycle @p when (>= now). */
    EventId at(Cycles when, EventQueue::Callback cb);

    /** Schedule @p cb @p delta cycles from now. */
    EventId after(Cycles delta, EventQueue::Callback cb);

    /** Cancel a pending event (no-op if already fired). */
    void cancel(EventId id);

    /**
     * Run until the event queue drains or @p stop returns true
     * (checked after each event).
     * @return the final cycle.
     */
    Cycles run(const std::function<bool()> &stop = nullptr);

    /**
     * Run until the clock reaches @p limit or the queue drains.
     * Events at exactly @p limit still fire.
     */
    Cycles runUntil(Cycles limit);

    /**
     * Fire exactly one event.
     * @return true if an event fired, false if the queue was empty.
     */
    bool step();

    /** True when no events are pending. */
    bool idle() const { return events_.empty(); }

    /** Number of events executed so far. */
    std::uint64_t eventsRun() const { return events_run_; }

    /** Access the raw queue (tests and advanced components). */
    EventQueue &queue() { return events_; }

  private:
    EventQueue events_;
    Cycles now_ = 0;
    std::uint64_t events_run_ = 0;
};

} // namespace v10

#endif // V10_SIM_SIMULATOR_H
