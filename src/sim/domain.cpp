#include "sim/domain.h"

namespace v10 {

const char *
simDomainName(SimDomain domain)
{
    switch (domain) {
    case SimDomain::Control:
        return "control";
    case SimDomain::Sa:
        return "sa";
    case SimDomain::Vu:
        return "vu";
    case SimDomain::DmaHbm:
        return "dma-hbm";
    }
    return "unknown";
}

} // namespace v10
