#include "sim/fault_plan.h"

#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/string_util.h"

namespace v10 {

namespace {

struct KindName
{
    FaultKind kind;
    const char *name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::HbmStall, "hbm-stall"},
    {FaultKind::HbmDroop, "hbm-droop"},
    {FaultKind::DmaTimeout, "dma-timeout"},
    {FaultKind::SaContextCorrupt, "sa-corrupt"},
    {FaultKind::RunawayOp, "runaway"},
    {FaultKind::TraceFlood, "flood"},
};

bool
kindFromName(const std::string &name, FaultKind *out)
{
    for (const KindName &k : kKindNames) {
        if (name == k.name) {
            *out = k.kind;
            return true;
        }
    }
    return false;
}

double
defaultMagnitude(FaultKind kind)
{
    switch (kind) {
    case FaultKind::HbmStall:
        return 2000.0; // stall cycles
    case FaultKind::HbmDroop:
        return 2.0; // byte inflation
    case FaultKind::DmaTimeout:
        return 0.0; // timeout period is an engine knob
    case FaultKind::SaContextCorrupt:
        return 0.0; // replay-from-zero has no magnitude
    case FaultKind::RunawayOp:
        return 4.0; // compute inflation
    case FaultKind::TraceFlood:
        return 4.0; // burst arrivals
    }
    return 0.0;
}

/** Validate one parsed site; index and source feed the diagnostic. */
Status
checkSite(const FaultSite &site, const std::string &source,
          std::size_t index)
{
    const std::string where =
        std::string(faultKindName(site.kind)) + " (site " +
        std::to_string(index + 1) + ")";
    if (site.rate < 0.0 || site.rate > 1.0)
        return parseError("fault rate must be in [0, 1]", source, 0,
                          where);
    if (site.magnitude < 0.0)
        return parseError("fault magnitude must be >= 0", source, 0,
                          where);
    if ((site.kind == FaultKind::HbmDroop ||
         site.kind == FaultKind::RunawayOp) &&
        site.magnitude != 0.0 && site.magnitude < 1.0)
        return parseError(
            "inflation magnitude must be >= 1 (or 0 for the default)",
            source, 0, where);
    if (site.tenant < -1)
        return parseError("tenant index must be >= 0 (or -1 = all)",
                          source, 0, where);
    return Status::ok();
}

} // namespace

Result<std::vector<SpecSite>>
parseSpecSites(const std::string &spec, const std::string &source)
{
    const std::string trimmed = trim(spec);
    if (trimmed.empty())
        return parseError("empty spec", source);
    std::vector<SpecSite> sites;
    for (const std::string &raw : split(trimmed, ',')) {
        const std::vector<std::string> fields =
            split(trim(raw), ':');
        if (fields.empty() || trim(fields[0]).empty())
            return parseError("empty spec site", source, 0, raw);
        SpecSite site;
        site.kind = trim(fields[0]);
        for (std::size_t f = 1; f < fields.size(); ++f) {
            const std::vector<std::string> kv =
                split(trim(fields[f]), '=');
            if (kv.size() != 2 || trim(kv[0]).empty())
                return parseError("expected key=value", source, 0,
                                  fields[f]);
            site.fields.emplace_back(trim(kv[0]), trim(kv[1]));
        }
        sites.push_back(std::move(site));
    }
    return sites;
}

const char *
faultKindName(FaultKind kind)
{
    for (const KindName &k : kKindNames) {
        if (k.kind == kind)
            return k.name;
    }
    return "unknown";
}

double
FaultSite::effectiveMagnitude() const
{
    return magnitude > 0.0 ? magnitude : defaultMagnitude(kind);
}

std::string
FaultSite::spec() const
{
    std::ostringstream os;
    os << faultKindName(kind) << ":rate=" << rate;
    if (magnitude > 0.0)
        os << ":mag=" << magnitude;
    if (tenant >= 0)
        os << ":tenant=" << tenant;
    if (after > 0)
        os << ":after=" << after;
    if (maxCount > 0)
        os << ":count=" << maxCount;
    return os.str();
}

Result<FaultPlan>
FaultPlan::parse(const std::string &spec, const std::string &source)
{
    FaultPlan plan;
    auto sites_or = parseSpecSites(spec, source);
    if (!sites_or.ok())
        return sites_or.error();
    const std::vector<SpecSite> site_specs = sites_or.take();
    for (std::size_t i = 0; i < site_specs.size(); ++i) {
        const SpecSite &parsed = site_specs[i];
        FaultSite site;
        if (!kindFromName(parsed.kind, &site.kind))
            return parseError("unknown fault kind", source, 0,
                              parsed.kind);
        for (const auto &[key, val] : parsed.fields) {
            if (key == "rate") {
                const auto v = parseDouble(val);
                if (!v)
                    return parseError("bad rate number", source, 0,
                                      val);
                site.rate = *v;
            } else if (key == "mag") {
                const auto v = parseDouble(val);
                if (!v)
                    return parseError("bad magnitude number", source,
                                      0, val);
                site.magnitude = *v;
            } else if (key == "tenant") {
                const auto v = parseInt64(val);
                if (!v || *v < -1)
                    return parseError("bad tenant index", source, 0,
                                      val);
                site.tenant = static_cast<int>(*v);
            } else if (key == "after") {
                const auto v = parseUint64(val);
                if (!v)
                    return parseError("bad activation cycle", source,
                                      0, val);
                site.after = *v;
            } else if (key == "count") {
                const auto v = parseUint64(val);
                if (!v)
                    return parseError("bad injection count", source,
                                      0, val);
                site.maxCount = *v;
            } else {
                return parseError("unknown fault-site key", source, 0,
                                  key);
            }
        }
        const Status ok = checkSite(site, source, i);
        if (!ok)
            return ok.error();
        plan.add(site);
    }
    return plan;
}

Result<FaultPlan>
FaultPlan::fromJson(const std::string &text, const std::string &source)
{
    JsonValue doc;
    std::string error;
    if (!JsonValue::parse(text, &doc, &error))
        return parseError("malformed fault-plan JSON: " + error,
                          source);
    if (!doc.isObject())
        return parseError("fault plan must be a JSON object", source);

    FaultPlan plan;
    if (const JsonValue *seed = doc.find("seed")) {
        if (!seed->isNumber() || seed->number < 0)
            return parseError("\"seed\" must be a non-negative number",
                              source, 0, "seed");
        plan.setSeed(static_cast<std::uint64_t>(seed->number));
    }
    const JsonValue *faults = doc.find("faults");
    if (faults == nullptr || !faults->isArray())
        return parseError("missing \"faults\" array", source, 0,
                          "faults");
    for (std::size_t i = 0; i < faults->array.size(); ++i) {
        const JsonValue &entry = faults->array[i];
        const std::string where = "faults[" + std::to_string(i) + "]";
        if (!entry.isObject())
            return parseError("fault entry must be an object", source,
                              0, where);
        const JsonValue *kind = entry.find("kind");
        if (kind == nullptr || !kind->isString())
            return parseError("fault entry needs a string \"kind\"",
                              source, 0, where);
        FaultSite site;
        if (!kindFromName(kind->str, &site.kind))
            return parseError("unknown fault kind", source, 0,
                              kind->str);
        auto number = [&](const char *key, double fallback,
                          double *out) -> bool {
            const JsonValue *v = entry.find(key);
            if (v == nullptr) {
                *out = fallback;
                return true;
            }
            if (!v->isNumber())
                return false;
            *out = v->number;
            return true;
        };
        double tenant = -1.0;
        double after = 0.0;
        double count = 0.0;
        if (!number("rate", 0.0, &site.rate) ||
            !number("mag", 0.0, &site.magnitude) ||
            !number("tenant", -1.0, &tenant) ||
            !number("after", 0.0, &after) ||
            !number("count", 0.0, &count))
            return parseError("non-numeric fault-site field", source,
                              0, where);
        site.tenant = static_cast<int>(tenant);
        site.after = static_cast<Cycles>(after);
        site.maxCount = static_cast<std::uint64_t>(count);
        const Status ok = checkSite(site, source, i);
        if (!ok)
            return ok.error();
        plan.add(site);
    }
    return plan;
}

Result<FaultPlan>
FaultPlan::fromJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return parseError("cannot open fault-plan file", path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return fromJson(ss.str(), path);
}

std::string
FaultPlan::summary() const
{
    std::string out;
    for (const FaultSite &site : sites_) {
        if (!out.empty())
            out += ',';
        out += site.spec();
    }
    return out;
}

FaultInjector::FaultInjector(const FaultPlan &plan, std::uint64_t seed)
    : rng_(seed)
{
    sites_.reserve(plan.sites().size());
    for (const FaultSite &site : plan.sites())
        sites_.push_back(SiteState{site, 0});
}

bool
FaultInjector::fires(SiteState &state, WorkloadId tenant, Cycles now)
{
    const FaultSite &site = state.site;
    if (site.tenant >= 0 &&
        static_cast<WorkloadId>(site.tenant) != tenant)
        return false;
    if (now < site.after)
        return false;
    if (site.maxCount > 0 && state.fired >= site.maxCount)
        return false;
    // The draw happens for every live matching site so the RNG
    // stream (and thus every later decision) is independent of
    // whether earlier opportunities fired.
    const bool hit = rng_.uniform() < site.rate;
    if (hit)
        ++state.fired;
    return hit;
}

void
FaultInjector::logInjection(const SiteState &state, WorkloadId tenant,
                            Cycles now, const std::string &detail)
{
    ++injected_;
    FaultEvent ev;
    ev.cycle = now;
    ev.kind = faultKindName(state.site.kind);
    ev.tenant = tenant;
    ev.detail = detail;
    log_.push_back(std::move(ev));
}

FaultInjector::DmaDecision
FaultInjector::onDmaStart(WorkloadId tenant, Cycles now)
{
    DmaDecision decision;
    for (SiteState &state : sites_) {
        switch (state.site.kind) {
        case FaultKind::HbmStall:
            if (fires(state, tenant, now)) {
                const auto stall = static_cast<Cycles>(
                    state.site.effectiveMagnitude());
                decision.stallCycles += stall;
                logInjection(state, tenant, now,
                             "stall " + std::to_string(stall) +
                                 " cycles");
            }
            break;
        case FaultKind::HbmDroop:
            if (fires(state, tenant, now)) {
                const double inflate =
                    state.site.effectiveMagnitude();
                decision.inflate *= inflate;
                logInjection(state, tenant, now,
                             "bandwidth droop x" +
                                 formatDouble(inflate, 2));
            }
            break;
        case FaultKind::DmaTimeout:
            if (fires(state, tenant, now)) {
                decision.hang = true;
                logInjection(state, tenant, now, "transfer hang");
            }
            break;
        default:
            break;
        }
    }
    return decision;
}

bool
FaultInjector::corruptSaContext(WorkloadId tenant, Cycles now)
{
    bool corrupt = false;
    for (SiteState &state : sites_) {
        if (state.site.kind != FaultKind::SaContextCorrupt)
            continue;
        if (fires(state, tenant, now)) {
            corrupt = true;
            logInjection(state, tenant, now,
                         "context save corrupted; full replay");
        }
    }
    return corrupt;
}

double
FaultInjector::runawayFactor(WorkloadId tenant, Cycles now)
{
    double factor = 1.0;
    for (SiteState &state : sites_) {
        if (state.site.kind != FaultKind::RunawayOp)
            continue;
        if (fires(state, tenant, now)) {
            const double mag = state.site.effectiveMagnitude();
            factor *= mag;
            logInjection(state, tenant, now,
                         "operator x" + formatDouble(mag, 2) +
                             " over declared cycles");
        }
    }
    return factor;
}

std::uint64_t
FaultInjector::floodBurst(WorkloadId tenant, Cycles now)
{
    std::uint64_t burst = 0;
    for (SiteState &state : sites_) {
        if (state.site.kind != FaultKind::TraceFlood)
            continue;
        if (fires(state, tenant, now)) {
            const auto extra = static_cast<std::uint64_t>(
                state.site.effectiveMagnitude());
            burst += extra;
            logInjection(state, tenant, now,
                         "flood burst of " + std::to_string(extra) +
                             " arrivals");
        }
    }
    return burst;
}

void
FaultInjector::record(const std::string &kind, WorkloadId tenant,
                      Cycles now, const std::string &detail)
{
    FaultEvent ev;
    ev.cycle = now;
    ev.kind = kind;
    ev.tenant = tenant;
    ev.detail = detail;
    log_.push_back(std::move(ev));
}

void
FaultInjector::writeLogJson(JsonWriter &w) const
{
    w.beginArray();
    for (const FaultEvent &ev : log_) {
        w.beginObject();
        w.kv("cycle", ev.cycle);
        w.kv("kind", ev.kind);
        if (ev.tenant != kNoWorkload)
            w.kv("tenant", static_cast<std::uint64_t>(ev.tenant));
        w.kv("detail", ev.detail);
        w.endObject();
    }
    w.endArray();
}

} // namespace v10
