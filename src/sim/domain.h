/**
 * @file
 * Simulation domains for the domain-partitioned event engine.
 *
 * A domain is an independently clocked event stream inside one run:
 * the systolic-array pipeline, the vector unit, the DMA/HBM memory
 * system, and the scheduler/control plane each own one. The
 * Simulator keeps one event queue per domain and merges them
 * deterministically by (cycle, epoch, domain-rank, sequence); the
 * conservative parallel engine (docs/ARCHITECTURE.md,
 * "Domain-partitioned engine") runs decoupled domains on worker
 * threads between HBM-coupled barrier windows.
 *
 * Domain rank is the enum value: when two domains are advanced in
 * the same synchronization window, their barrier-committed
 * cross-domain messages are ordered control-first, then SA, VU,
 * DMA/HBM. The rank never reorders events against the global
 * serial order — it only breaks ties that serial execution cannot
 * produce (two messages emitted concurrently by different worker
 * threads in one window).
 */

#ifndef V10_SIM_DOMAIN_H
#define V10_SIM_DOMAIN_H

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace v10 {

/** One independently clocked event stream of a simulation. */
enum class SimDomain : std::uint8_t {
    /** Scheduler/control plane: dispatch decisions, arrivals,
     * watchdogs, samplers — everything that reads or writes the
     * shared scheduling state. */
    Control = 0,

    /** Systolic-array pipeline events (SA operator retires). */
    Sa = 1,

    /** Vector-unit pipeline events (VU operator retires). */
    Vu = 2,

    /** DMA engine and HBM bandwidth-arbitration events. This is the
     * only domain other domains couple through in the multi-core
     * model: shared-HBM arbitration is the sanctioned
     * V10_COUPLING_POINT. */
    DmaHbm = 3,
};

/** Number of simulation domains (fixed; rank fits in two bits). */
inline constexpr std::size_t kNumSimDomains = 4;

/** Dense index of a domain (its merge rank). */
constexpr std::size_t
simDomainRank(SimDomain domain)
{
    return static_cast<std::size_t>(domain);
}

/** Short stable name ("control", "sa", "vu", "dma-hbm"). */
const char *simDomainName(SimDomain domain);

/**
 * One declared edge of the domain coupling graph: events may travel
 * src -> dst only with at least @p lookahead cycles of latency. The
 * minimum lookahead over all declared edges is the conservative
 * synchronization window width (see Simulator::couple()).
 */
struct DomainCoupling
{
    SimDomain src = SimDomain::Control;
    SimDomain dst = SimDomain::Control;
    Cycles lookahead = 0;
};

} // namespace v10

#endif // V10_SIM_DOMAIN_H
