/**
 * @file
 * CSV emission for bench binaries (--csv mode) so figure data can be
 * plotted externally.
 */

#ifndef V10_COMMON_CSV_H
#define V10_COMMON_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace v10 {

/**
 * Streaming CSV writer with RFC-4180-style quoting of cells that
 * contain commas, quotes, or newlines.
 */
class CsvWriter
{
  public:
    /** Write to the given stream (not owned). */
    explicit CsvWriter(std::ostream &os);

    /** Write one row of cells. */
    void row(const std::vector<std::string> &cells);

    /** Convenience: header row. */
    void header(const std::vector<std::string> &cells) { row(cells); }

    /** Quote a single cell per RFC 4180 if needed. */
    static std::string quote(const std::string &cell);

  private:
    std::ostream &os_;
};

} // namespace v10

#endif // V10_COMMON_CSV_H
