#include "common/csv.h"

namespace v10 {

CsvWriter::CsvWriter(std::ostream &os) : os_(os) {}

std::string
CsvWriter::quote(const std::string &cell)
{
    bool needs_quote = false;
    for (char ch : cell) {
        if (ch == ',' || ch == '"' || ch == '\n' || ch == '\r') {
            needs_quote = true;
            break;
        }
    }
    if (!needs_quote)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << quote(cells[i]);
    }
    os_ << '\n';
}

} // namespace v10
