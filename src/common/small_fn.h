/**
 * @file
 * Small-buffer-optimized, move-only callable — the event core's
 * replacement for std::function.
 *
 * The common simulator callback captures `this` plus a few words;
 * SmallFn stores such closures inline (no allocation on schedule or
 * fire). Oversized captures spill to a slab pool (SmallFnArena) so a
 * hot loop that occasionally builds a big closure still recycles a
 * handful of fixed-size blocks instead of hitting the global
 * allocator per event. SmallFn is move-only: event callbacks are
 * consumed exactly once, and copyability is what forces std::function
 * to heap-allocate shared state.
 */

#ifndef V10_COMMON_SMALL_FN_H
#define V10_COMMON_SMALL_FN_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "common/log.h"

namespace v10 {

/**
 * Size-bucketed free-list pool for SmallFn spill blocks.
 *
 * Blocks are never returned to the global allocator while the arena
 * lives, so steady-state scheduling of oversized closures is
 * allocation-free after warm-up. Closures larger than the biggest
 * bucket fall back to plain operator new (header tagged with a null
 * arena). Single-threaded by design: each Simulator owns one arena,
 * and parallel sweeps use one Simulator per cell.
 */
class SmallFnArena
{
  public:
    /** Block payload sizes; closures above the last go to new. */
    static constexpr std::size_t kBucketBytes[4] = {64, 128, 256, 512};
    static constexpr std::size_t kBuckets = 4;

    SmallFnArena() = default;

    SmallFnArena(const SmallFnArena &) = delete;
    SmallFnArena &operator=(const SmallFnArena &) = delete;

    ~SmallFnArena()
    {
        for (std::size_t b = 0; b < kBuckets; ++b) {
            void *block = free_[b];
            while (block != nullptr) {
                void *next = *static_cast<void **>(payloadOf(block));
                ::operator delete(block);
                block = next;
            }
        }
    }

    /**
     * Allocate a payload of at least @p bytes. The returned pointer
     * is aligned for any scalar type and must be released with
     * release() (which routes back to the owning arena, or to
     * operator delete for oversized payloads). @p arena may be null:
     * then every payload is a plain heap block.
     */
    static void *
    allocate(std::size_t bytes, SmallFnArena *arena)
    {
        std::uint32_t bucket = kBuckets; // sentinel: unpooled
        if (arena != nullptr) {
            for (std::uint32_t b = 0; b < kBuckets; ++b) {
                if (bytes <= kBucketBytes[b]) {
                    bucket = b;
                    break;
                }
            }
        }
        if (bucket < kBuckets && arena->free_[bucket] != nullptr) {
            void *block = arena->free_[bucket];
            void *payload = payloadOf(block);
            arena->free_[bucket] = *static_cast<void **>(payload);
            headerOf(payload)->arena = arena;
            headerOf(payload)->bucket = bucket;
            return payload;
        }
        const std::size_t payload_bytes =
            bucket < kBuckets ? kBucketBytes[bucket] : bytes;
        void *block = ::operator new(sizeof(Header) + payload_bytes);
        auto *header = static_cast<Header *>(block);
        header->arena = bucket < kBuckets ? arena : nullptr;
        header->bucket = bucket;
        return payloadOf(block);
    }

    /** Return a payload obtained from allocate(). */
    static void
    release(void *payload) noexcept
    {
        Header *header = headerOf(payload);
        SmallFnArena *arena = header->arena;
        if (arena == nullptr) {
            ::operator delete(static_cast<void *>(header));
            return;
        }
        const std::uint32_t bucket = header->bucket;
        *static_cast<void **>(payload) = arena->free_[bucket];
        arena->free_[bucket] = static_cast<void *>(header);
    }

  private:
    /** Prefix of every block; payload follows, max-aligned. */
    struct alignas(std::max_align_t) Header
    {
        SmallFnArena *arena;
        std::uint32_t bucket;
    };

    static void *
    payloadOf(void *block) noexcept
    {
        return static_cast<char *>(block) + sizeof(Header);
    }

    static Header *
    headerOf(void *payload) noexcept
    {
        return reinterpret_cast<Header *>(
            static_cast<char *>(payload) - sizeof(Header));
    }

    void *free_[kBuckets] = {nullptr, nullptr, nullptr, nullptr};
};

template <typename Sig> class SmallFn;

/**
 * Move-only type-erased callable with inline storage for small
 * closures and SmallFnArena spill for large ones.
 */
template <typename R, typename... Args> class SmallFn<R(Args...)>
{
  public:
    /** Inline capacity: `this` plus five words of captures. */
    static constexpr std::size_t kInlineBytes = 48;

    SmallFn() = default;

    SmallFn(std::nullptr_t) {}

    /** Wrap @p f; large closures spill to the global allocator. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    SmallFn(F &&f)
    {
        init(std::forward<F>(f), nullptr);
    }

    /** Wrap @p f; large closures spill to @p arena's slab pool. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    SmallFn(F &&f, SmallFnArena &arena)
    {
        init(std::forward<F>(f), &arena);
    }

    SmallFn(SmallFn &&other) noexcept { moveFrom(other); }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFn &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        if (ops_ == nullptr)
            panic("SmallFn: calling an empty function");
        return ops_->invoke(storage_, static_cast<Args &&>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *storage, Args &&...args);
        void (*relocate)(void *from, void *to) noexcept;
        void (*destroy)(void *storage) noexcept;
        /** True when relocation is a plain byte copy (trivially
         * copyable inline closure, or the heap payload pointer) —
         * lets moves skip the indirect call, which matters inside
         * heap sifts that shuffle entries around. */
        bool trivial_relocate;
    };

    /** Callable stored directly in the inline buffer. */
    template <typename T> struct InlineModel
    {
        static T *
        self(void *storage) noexcept
        {
            return std::launder(reinterpret_cast<T *>(storage));
        }

        static R
        invoke(void *storage, Args &&...args)
        {
            return (*self(storage))(std::forward<Args>(args)...);
        }

        static void
        relocate(void *from, void *to) noexcept
        {
            ::new (to) T(std::move(*self(from)));
            self(from)->~T();
        }

        static void
        destroy(void *storage) noexcept
        {
            self(storage)->~T();
        }

        static constexpr Ops ops = {
            &invoke, &relocate, &destroy,
            std::is_trivially_copyable_v<T>};
    };

    /** Callable spilled to an arena block; the buffer holds the
     * payload pointer. */
    template <typename T> struct HeapModel
    {
        static T *
        self(void *storage) noexcept
        {
            return static_cast<T *>(
                *std::launder(reinterpret_cast<void **>(storage)));
        }

        static R
        invoke(void *storage, Args &&...args)
        {
            return (*self(storage))(std::forward<Args>(args)...);
        }

        static void
        relocate(void *from, void *to) noexcept
        {
            ::new (to) void *(
                *std::launder(reinterpret_cast<void **>(from)));
        }

        static void
        destroy(void *storage) noexcept
        {
            T *obj = self(storage);
            obj->~T();
            SmallFnArena::release(static_cast<void *>(obj));
        }

        static constexpr Ops ops = {&invoke, &relocate, &destroy,
                                    true};
    };

    template <typename F>
    void
    init(F &&f, SmallFnArena *arena)
    {
        using T = std::decay_t<F>;
        static_assert(alignof(T) <= alignof(std::max_align_t),
                      "over-aligned closures are not supported");
        if constexpr (sizeof(T) <= kInlineBytes &&
                      std::is_nothrow_move_constructible_v<T>) {
            ::new (static_cast<void *>(storage_))
                T(std::forward<F>(f));
            ops_ = &InlineModel<T>::ops;
        } else {
            void *payload =
                SmallFnArena::allocate(sizeof(T), arena);
            ::new (payload) T(std::forward<F>(f));
            ::new (static_cast<void *>(storage_)) void *(payload);
            ops_ = &HeapModel<T>::ops;
        }
    }

    void
    moveFrom(SmallFn &other) noexcept
    {
        if (other.ops_ != nullptr) {
            if (other.ops_->trivial_relocate)
                __builtin_memcpy(storage_, other.storage_,
                                 kInlineBytes);
            else
                other.ops_->relocate(other.storage_, storage_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace v10

#endif // V10_COMMON_SMALL_FN_H
