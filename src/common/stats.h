/**
 * @file
 * Lightweight statistics primitives used by the metrics layer and the
 * bench harness: streaming moments, percentile estimation over stored
 * samples, and fixed-bin histograms.
 */

#ifndef V10_COMMON_STATS_H
#define V10_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace v10 {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 * O(1) memory; suitable for per-operator statistics over long runs.
 */
class OnlineStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

    /** Number of samples added. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance; 0 for fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Sample store with exact percentile queries. Stores every sample;
 * intended for per-request latencies (thousands of samples), not
 * per-cycle data.
 */
class SampleSet
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples. */
    std::size_t count() const { return samples_.size(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /**
     * Exact percentile by linear interpolation between closest ranks.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Convenience: 95th percentile (the paper's tail metric). */
    double p95() const { return percentile(95.0); }

    /** Largest sample; 0 when empty. */
    double max() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** All samples in insertion order. */
    const std::vector<double> &samples() const { return samples_; }

    /** Reset to the empty state. */
    void reset();

  private:
    /** Sort the mutable cache if new samples arrived. */
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = false;
};

/**
 * Fixed-width-bin histogram over [lo, hi) with under/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first regular bin
     * @param hi upper edge of the last regular bin
     * @param bins number of regular bins (> 0)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample. */
    void add(double x);

    /** Count in regular bin i. */
    std::size_t binCount(std::size_t i) const;

    /** Samples below lo. */
    std::size_t underflow() const { return underflow_; }

    /** Samples at or above hi. */
    std::size_t overflow() const { return overflow_; }

    /** Total samples added. */
    std::size_t total() const { return total_; }

    /** Number of regular bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Lower edge of bin i. */
    double binLo(std::size_t i) const;

    /** Render a compact single-line summary, for logs. */
    std::string summary() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

/**
 * HDR-style log-bucketed histogram with O(1) insertion and bounded
 * relative quantile error. Positive samples land in a bucket keyed by
 * (binary octave, linear sub-bucket within the octave); with S
 * sub-buckets per octave the relative bucket width is 1/(2S), so
 * quantile estimates are within ~1/(2S) of the exact-sort answer
 * (under 1% for the default S = 64). Non-positive samples collapse
 * into a single zero bucket. Exact count/sum/min/max are kept on the
 * side, and quantile results are clamped to [min, max].
 *
 * Merging is plain bucket-count addition, so merged results are
 * independent of merge order — safe for deterministic parallel
 * reduction.
 */
class LogHistogram
{
  public:
    /** @param subBuckets linear sub-buckets per octave (> 0). */
    explicit LogHistogram(std::size_t subBuckets = 64);

    /** Add one sample. O(log #octaves). */
    void add(double x);

    /** Add every bucket of @p other into this histogram. */
    void merge(const LogHistogram &other);

    /** Number of samples added. */
    std::uint64_t count() const { return count_; }

    /** Arithmetic mean from the exact sum; 0 when empty. */
    double mean() const;

    /** Exact smallest sample; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Exact largest sample; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Exact sum of all samples. */
    double sum() const { return sum_; }

    /**
     * Approximate percentile (p in [0, 100]) via cumulative bucket
     * walk; relative error bounded by the sub-bucket width.
     */
    double percentile(double p) const;

    /** Sub-buckets per octave. */
    std::size_t subBuckets() const { return sub_; }

    /** Reset to the empty state (keeps the bucket resolution). */
    void reset();

  private:
    /** Representative value (bucket midpoint) for a bucket key. */
    double bucketMid(std::int64_t key) const;

    std::size_t sub_;
    /** bucket key -> count; key = octave * sub_ + subIndex. */
    std::map<std::int64_t, std::uint64_t> buckets_;
    std::uint64_t zero_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Geometric mean of a vector; 0 if empty or any element <= 0. */
double geomean(const std::vector<double> &xs);

} // namespace v10

#endif // V10_COMMON_STATS_H
