/**
 * @file
 * Domain-isolation annotation vocabulary for the parallel-in-run
 * refactor (ROADMAP "Deterministic parallel-in-run simulation").
 *
 * The future multi-core engine partitions per-core event queues onto
 * worker threads; the correctness contract is that no event callback
 * touches cross-domain mutable state outside the sanctioned coupling
 * interfaces. These macros let a declaration state which side of
 * that contract it is on, and v10lint's semantic rule pack
 * (docs/STATIC_ANALYSIS.md) enforces the claims mechanically:
 *
 *  - V10_DOMAIN_LOCAL      — owned by one simulation domain (one
 *                            run, one core, one ParallelExecutor
 *                            cell); never observed concurrently.
 *  - V10_SHARED_STATE      — deliberately visible to more than one
 *                            domain/worker; every access needs
 *                            external synchronization or a merge
 *                            protocol spelled out at the decl.
 *  - V10_GUARDED_BY(m)     — shared, and every access must hold the
 *                            named mutex member (lock_guard /
 *                            scoped_lock / unique_lock recognized;
 *                            constructors and destructors are exempt
 *                            as single-threaded).
 *  - V10_COUPLING_POINT    — a declared cross-domain coupling
 *                            interface (e.g. shared-HBM bandwidth
 *                            arbitration): the sanctioned place
 *                            where domains are allowed to interact.
 *
 * Placement: on a class (`class V10_DOMAIN_LOCAL Simulator`) the
 * annotation covers every member; on a member it goes after the
 * declarator, before the initializer (`double moved_
 * V10_SHARED_STATE = 0;`), clang-attribute style; on a function it
 * precedes the declaration and marks the body as a sanctioned
 * coupling interface.
 *
 * The macros expand to nothing: they are a lint-time contract, not a
 * compile-time one, so no toolchain has to understand them. v10lint
 * reads them straight from the token stream (it does not run the
 * preprocessor), which is also why they must not be spelled through
 * further macro indirection.
 */

#ifndef V10_COMMON_ANNOTATIONS_H
#define V10_COMMON_ANNOTATIONS_H

/** State owned by exactly one simulation domain. */
#define V10_DOMAIN_LOCAL

/** State deliberately shared across domains/workers. */
#define V10_SHARED_STATE

/** Shared state whose every access must hold mutex member @p m. */
#define V10_GUARDED_BY(m)

/** A sanctioned cross-domain coupling interface or its state. */
#define V10_COUPLING_POINT

#endif // V10_COMMON_ANNOTATIONS_H
