#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.h"

namespace v10 {

void
OnlineStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

void
SampleSet::add(double x)
{
    samples_.push_back(x);
    dirty_ = true;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

void
SampleSet::ensureSorted() const
{
    if (dirty_ || sorted_.size() != samples_.size()) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
}

double
SampleSet::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (p <= 0.0)
        return sorted_.front();
    if (p >= 100.0)
        return sorted_.back();
    const double rank =
        p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo_idx);
    if (lo_idx + 1 >= sorted_.size())
        return sorted_.back();
    return sorted_[lo_idx] * (1.0 - frac) + sorted_[lo_idx + 1] * frac;
}

double
SampleSet::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.back();
}

double
SampleSet::min() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.front();
}

void
SampleSet::reset()
{
    samples_.clear();
    sorted_.clear();
    dirty_ = false;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        fatal("Histogram: need bins > 0 and hi > lo");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
    }
}

std::size_t
Histogram::binCount(std::size_t i) const
{
    return i < counts_.size() ? counts_[i] : 0;
}

double
Histogram::binLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "hist[" << lo_ << "," << hi_ << ") n=" << total_
       << " under=" << underflow_ << " over=" << overflow_ << " bins=";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            os << ',';
        os << counts_[i];
    }
    return os.str();
}

LogHistogram::LogHistogram(std::size_t subBuckets) : sub_(subBuckets)
{
    if (subBuckets == 0)
        panic("LogHistogram: need subBuckets > 0");
}

void
LogHistogram::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    if (!(x > 0.0)) {
        ++zero_;
        return;
    }
    int exp = 0;
    const double mant = std::frexp(x, &exp); // mant in [0.5, 1)
    auto idx = static_cast<std::int64_t>((mant - 0.5) * 2.0 *
                                         static_cast<double>(sub_));
    if (idx >= static_cast<std::int64_t>(sub_))
        idx = static_cast<std::int64_t>(sub_) - 1;
    if (idx < 0)
        idx = 0;
    const std::int64_t key =
        static_cast<std::int64_t>(exp) * static_cast<std::int64_t>(sub_) +
        idx;
    ++buckets_[key];
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.sub_ != sub_)
        panic("LogHistogram::merge: resolution mismatch");
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    zero_ += other.zero_;
    for (const auto &[key, n] : other.buckets_)
        buckets_[key] += n;
}

double
LogHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
LogHistogram::bucketMid(std::int64_t key) const
{
    const auto sub = static_cast<std::int64_t>(sub_);
    // Floor division so negative keys map back to their octave.
    std::int64_t exp = key / sub;
    std::int64_t idx = key % sub;
    if (idx < 0) {
        idx += sub;
        --exp;
    }
    const double mant = 0.5 + (static_cast<double>(idx) + 0.5) /
                                  (2.0 * static_cast<double>(sub_));
    return std::ldexp(mant, static_cast<int>(exp));
}

double
LogHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p <= 0.0)
        return min_;
    if (p >= 100.0)
        return max_;
    // Target the same rank convention as SampleSet::percentile.
    const double rank =
        p / 100.0 * static_cast<double>(count_ - 1);
    const auto target = static_cast<std::uint64_t>(rank);
    std::uint64_t cum = zero_;
    if (target < cum)
        return std::clamp(0.0, min_, max_);
    for (const auto &[key, n] : buckets_) {
        cum += n;
        if (target < cum)
            return std::clamp(bucketMid(key), min_, max_);
    }
    return max_;
}

void
LogHistogram::reset()
{
    buckets_.clear();
    zero_ = 0;
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace v10
