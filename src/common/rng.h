/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the simulator (trace length spread, PMT
 * context-switch cost, K-Means initialization) draws from a seeded
 * Xoshiro256** instance so that experiments are reproducible
 * bit-for-bit across runs and platforms. We deliberately avoid
 * std::mt19937 + std::*_distribution because the distributions are
 * not specified to be identical across standard libraries.
 */

#ifndef V10_COMMON_RNG_H
#define V10_COMMON_RNG_H

#include <cmath>
#include <cstdint>

#include "common/annotations.h"

namespace v10 {

/**
 * Xoshiro256** PRNG with SplitMix64 seeding.
 *
 * Public-domain algorithm by Blackman & Vigna. Deterministic across
 * platforms; all derived distributions are implemented locally.
 */
class V10_DOMAIN_LOCAL Rng
{
  public:
    /** Seed the generator; identical seeds yield identical streams. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 expansion of the 64-bit seed into 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /**
     * Derive an independent stream seed from a base seed and a
     * stream index (SplitMix64 finalizer over their combination).
     * Used by the serving layer to give every tenant and core its
     * own disjoint deterministic stream: the derived stream depends
     * only on (seed, stream), never on draw order elsewhere.
     */
    static std::uint64_t
    deriveStream(std::uint64_t seed, std::uint64_t stream)
    {
        std::uint64_t z =
            seed + 0x9E3779B97F4A7C15ull * (stream + 1);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    /** Bernoulli trial: true with probability p (clamped to [0,1]).
     * Always consumes exactly one draw (Markov-modulated arrival
     * thinning relies on a fixed draw count per candidate). */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        // Lemire-style rejection-free-enough reduction; bias is
        // negligible for the n used here (n << 2^64).
        return next() % n;
    }

    /** Standard normal via Box-Muller (deterministic given stream). */
    double
    normal()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u1 = 0.0;
        // Avoid log(0).
        do { u1 = uniform(); } while (u1 <= 0.0);
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 6.283185307179586476925286766559 * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return r * std::cos(theta);
    }

    /** Normal with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /**
     * Exponential inter-arrival sample with the given mean (Poisson
     * process; used by the open-loop load generator).
     */
    double
    exponential(double mean)
    {
        double u = 0.0;
        do { u = uniform(); } while (u <= 0.0);
        return -mean * std::log(u);
    }

    /**
     * Lognormal sample with the given *linear-space* mean and
     * coefficient of variation (stddev / mean). Used for operator
     * duration spread around the published per-model means.
     */
    double
    lognormal(double mean, double cv)
    {
        if (cv <= 0.0 || mean <= 0.0)
            return mean;
        const double sigma2 = std::log(1.0 + cv * cv);
        const double mu = std::log(mean) - 0.5 * sigma2;
        return std::exp(normal(mu, std::sqrt(sigma2)));
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    bool have_cached_ = false;
    double cached_ = 0.0;
};

} // namespace v10

#endif // V10_COMMON_RNG_H
