/**
 * @file
 * ASCII table rendering for the bench harness. Every bench binary
 * prints its paper table/figure as rows of a TextTable so the output
 * can be compared side by side with the paper.
 */

#ifndef V10_COMMON_TABLE_H
#define V10_COMMON_TABLE_H

#include <string>
#include <vector>

namespace v10 {

/**
 * Column-aligned ASCII table with a header row. Cells are strings;
 * numeric helpers format with fixed precision.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it. */
    void addRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);

    /** Append a formatted double with @p precision decimals. */
    void cell(double value, int precision = 2);

    /** Append an integer cell. */
    void cell(long long value);

    /** Append a percentage cell ("42.3%") from a [0,1] fraction. */
    void cellPct(double fraction, int precision = 1);

    /** Render the whole table, including header and separator. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace v10

#endif // V10_COMMON_TABLE_H
