/**
 * @file
 * Fundamental scalar types and unit helpers shared by every module.
 *
 * The simulator counts time in NPU core cycles (see NpuConfig for the
 * cycle <-> wall-clock conversion, which depends on the configured
 * frequency). Identifiers are small integers wrapped in enums-like
 * aliases so call sites stay readable.
 */

#ifndef V10_COMMON_TYPES_H
#define V10_COMMON_TYPES_H

#include <cstdint>
#include <limits>

namespace v10 {

/** Simulated time measured in NPU core clock cycles. */
using Cycles = std::uint64_t;

/** A signed cycle delta, for arithmetic that may go negative. */
using CycleDelta = std::int64_t;

/** Sentinel for "never" / "not scheduled". */
inline constexpr Cycles kCycleMax = std::numeric_limits<Cycles>::max();

/** Index of a tenant workload on a shared NPU core. */
using WorkloadId = std::uint32_t;

/** Index of a functional unit (systolic array or vector unit). */
using FuId = std::uint32_t;

/** Monotonically increasing operator sequence number within a trace. */
using OpId = std::uint64_t;

/** Invalid-id sentinels. */
inline constexpr WorkloadId kNoWorkload =
    std::numeric_limits<WorkloadId>::max();
inline constexpr FuId kNoFu = std::numeric_limits<FuId>::max();

/** Handle for a Simulator::every() periodic event. */
using PeriodicId = std::uint64_t;

/** Sentinel for "no periodic event". */
inline constexpr PeriodicId kNoPeriodic = 0;

/** Bytes, used for memory capacities and DMA volumes. */
using Bytes = std::uint64_t;

inline constexpr Bytes operator""_KiB(unsigned long long v)
{
    return static_cast<Bytes>(v) << 10;
}

inline constexpr Bytes operator""_MiB(unsigned long long v)
{
    return static_cast<Bytes>(v) << 20;
}

inline constexpr Bytes operator""_GiB(unsigned long long v)
{
    return static_cast<Bytes>(v) << 30;
}

} // namespace v10

#endif // V10_COMMON_TYPES_H
