#include "common/string_util.h"

#include <cctype>
#include <iomanip>
#include <sstream>

namespace v10 {

std::string
formatBytes(Bytes bytes)
{
    static const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    std::size_t idx = 0;
    while (value >= 1024.0 && idx + 1 < std::size(suffixes)) {
        value /= 1024.0;
        ++idx;
    }
    std::ostringstream os;
    if (idx == 0) {
        os << bytes << " B";
    } else {
        os << std::fixed << std::setprecision(1) << value << ' '
           << suffixes[idx];
    }
    return os.str();
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
formatPct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision)
       << fraction * 100.0 << '%';
    return os.str();
}

std::string
formatSci(double value, int precision)
{
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << value;
    return os.str();
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : s) {
        if (ch == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::optional<std::int64_t>
parseInt64(const std::string &s)
{
    const std::string t = trim(s);
    if (t.empty())
        return std::nullopt;
    try {
        std::size_t pos = 0;
        const long long v = std::stoll(t, &pos, 10);
        if (pos != t.size())
            return std::nullopt;
        return static_cast<std::int64_t>(v);
    } catch (...) {
        return std::nullopt;
    }
}

std::optional<std::uint64_t>
parseUint64(const std::string &s)
{
    const std::string t = trim(s);
    // stoull silently wraps negatives; reject the sign up front.
    if (t.empty() || t[0] == '-' || t[0] == '+')
        return std::nullopt;
    try {
        std::size_t pos = 0;
        const unsigned long long v = std::stoull(t, &pos, 10);
        if (pos != t.size())
            return std::nullopt;
        return static_cast<std::uint64_t>(v);
    } catch (...) {
        return std::nullopt;
    }
}

std::optional<double>
parseDouble(const std::string &s)
{
    const std::string t = trim(s);
    if (t.empty())
        return std::nullopt;
    try {
        std::size_t pos = 0;
        const double v = std::stod(t, &pos);
        if (pos != t.size())
            return std::nullopt;
        return v;
    } catch (...) {
        return std::nullopt;
    }
}

} // namespace v10
