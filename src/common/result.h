/**
 * @file
 * Recoverable-error plumbing for ingestion and CLI paths.
 *
 * Historically every malformed input called fatal() and killed the
 * process; callers embedding the simulator (sweep drivers, services,
 * tests) could not observe *why*. Result<T> carries either a value or
 * a ParseError with source/line/token diagnostics, so ingestion
 * failures propagate to the caller, which reports them and exits with
 * a distinct code (see ExitCode).
 */

#ifndef V10_COMMON_RESULT_H
#define V10_COMMON_RESULT_H

#include <cstddef>
#include <string>
#include <utility>

#include "common/log.h"

namespace v10 {

/**
 * Process exit codes shared by v10sim, the benches, and the CI
 * corpus replay:
 *  - kExitOk: success
 *  - kExitRuntime: runtime failure (fault abort, OOM, fatal())
 *  - kExitUsage: usage or input-parse error (bad flags, malformed
 *    trace/config/fault spec)
 */
enum ExitCode : int {
    kExitOk = 0,
    kExitRuntime = 1,
    kExitUsage = 2,
};

/**
 * A structured ingestion diagnostic: what went wrong, where (source
 * name + 1-based line, when known), and the offending token/field.
 */
struct [[nodiscard]] ParseError
{
    std::string message; ///< human-readable description
    std::string source;  ///< file path or stream label
    std::size_t line = 0; ///< 1-based; 0 = not line-addressable
    std::string token;   ///< offending token or field name

    /** "source:line: message (near 'token')" */
    std::string
    toString() const
    {
        std::string out;
        if (!source.empty()) {
            out += source;
            out += ':';
        }
        if (line > 0) {
            out += std::to_string(line);
            out += ':';
        }
        if (!out.empty())
            out += ' ';
        out += message;
        if (!token.empty()) {
            out += " (near '";
            out += token;
            out += "')";
        }
        return out;
    }
};

/** Build a ParseError in one expression. */
inline ParseError
parseError(std::string message, std::string source = "",
           std::size_t line = 0, std::string token = "")
{
    ParseError e;
    e.message = std::move(message);
    e.source = std::move(source);
    e.line = line;
    e.token = std::move(token);
    return e;
}

/**
 * Either a T or a ParseError. Accessing the wrong side is a
 * programming error and panics; check ok() (or use the bool
 * conversion) first.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /* implicit */ Result(T value)
        : has_value_(true), value_(std::move(value))
    {
    }

    /* implicit */ Result(ParseError error)
        : has_value_(false), error_(std::move(error))
    {
    }

    bool ok() const { return has_value_; }
    explicit operator bool() const { return has_value_; }

    const T &
    value() const
    {
        if (!has_value_)
            panic("Result::value() on error: ", error_.toString());
        return value_;
    }

    T &
    value()
    {
        if (!has_value_)
            panic("Result::value() on error: ", error_.toString());
        return value_;
    }

    /** Move the value out (for expensive payloads like traces). */
    T
    take()
    {
        if (!has_value_)
            panic("Result::take() on error: ", error_.toString());
        return std::move(value_);
    }

    const ParseError &
    error() const
    {
        if (has_value_)
            panic("Result::error() on a success value");
        return error_;
    }

    /** value() or fatal() with the diagnostic (legacy call sites). */
    T
    valueOrDie()
    {
        if (!has_value_)
            fatal(error_.toString());
        return std::move(value_);
    }

  private:
    bool has_value_;
    T value_{};
    ParseError error_{};
};

/**
 * Result of an operation with no payload: default state is success,
 * constructing from a ParseError marks failure.
 */
class [[nodiscard]] Status
{
  public:
    Status() = default;

    /* implicit */ Status(ParseError error)
        : ok_(false), error_(std::move(error))
    {
    }

    static Status ok() { return Status{}; }

    bool isOk() const { return ok_; }
    explicit operator bool() const { return ok_; }

    const ParseError &
    error() const
    {
        if (ok_)
            panic("Status::error() on a success status");
        return error_;
    }

    /** fatal() with the diagnostic unless ok (legacy call sites). */
    void
    orDie() const
    {
        if (!ok_)
            fatal(error_.toString());
    }

  private:
    bool ok_ = true;
    ParseError error_{};
};

} // namespace v10

#endif // V10_COMMON_RESULT_H
