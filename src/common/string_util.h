/**
 * @file
 * Small string formatting/parsing helpers shared by benches and
 * examples.
 */

#ifndef V10_COMMON_STRING_UTIL_H
#define V10_COMMON_STRING_UTIL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace v10 {

/** "1.5 GiB"-style human-readable byte count. */
std::string formatBytes(Bytes bytes);

/** Fixed-precision double formatting ("%.3f"-style). */
std::string formatDouble(double value, int precision = 2);

/** "12.3%"-style percentage from a [0,1] fraction. */
std::string formatPct(double fraction, int precision = 1);

/** Scientific-style "8.77e+02" formatting used by Table 1. */
std::string formatSci(double value, int precision = 2);

/** Split on a delimiter; empty fields preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Trim ASCII whitespace from both ends. */
std::string trim(const std::string &s);

/** True if @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/**
 * Strict whole-string base-10 parses (unlike atoi/atoll, trailing
 * garbage, empty strings, and overflow all yield nullopt). Used by
 * CLI/spec parsing so bad numbers become usage errors instead of
 * silently truncated values.
 */
std::optional<std::int64_t> parseInt64(const std::string &s);
std::optional<std::uint64_t> parseUint64(const std::string &s);
std::optional<double> parseDouble(const std::string &s);

} // namespace v10

#endif // V10_COMMON_STRING_UTIL_H
