#include "common/log.h"

#include <cstdio>
#include <cstdlib>

namespace v10 {

namespace {

LogLevel g_level = LogLevel::Warn;

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
fatalImpl(const char *, int, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panicImpl(const char *, int, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace v10
