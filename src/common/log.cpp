#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace v10 {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

/**
 * Serializes every log write: ParallelExecutor workers call
 * inform()/warn()/debugLog() concurrently, and two unsynchronized
 * fprintf()s to the same stream may interleave mid-line.
 */
std::mutex &
logMutex()
{
    // The log mutex IS the synchronization primitive, not data it
    // guards. v10lint: allow(concurrency-mutable-static)
    static std::mutex m;
    return m;
}

void
writeLine(const char *tag, const char *loc, const std::string &msg)
{
    const std::lock_guard<std::mutex> lock(logMutex());
    if (loc != nullptr)
        std::fprintf(stderr, "%s: %s: %s\n", tag, loc, msg.c_str());
    else
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

/** "file.cpp:42" suffix for fatal/panic call sites (V10_FATAL). */
std::string
location(const char *file, int line)
{
    if (file == nullptr)
        return {};
    const std::string path(file);
    // Basename only: full build paths add noise, not information.
    const std::size_t slash = path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    return base + ":" + std::to_string(line);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        g_level.load(std::memory_order_relaxed));
}

LogLevel
logLevelFromName(const std::string &name)
{
    const std::optional<LogLevel> level = tryLogLevelFromName(name);
    if (!level)
        fatal("unknown log level '", name,
              "' (expected silent|warn|info|debug)");
    return *level;
}

std::optional<LogLevel>
tryLogLevelFromName(const std::string &name)
{
    if (name == "silent")
        return LogLevel::Silent;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "info")
        return LogLevel::Info;
    if (name == "debug")
        return LogLevel::Debug;
    return std::nullopt;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Silent: return "silent";
    case LogLevel::Warn: return "warn";
    case LogLevel::Info: return "info";
    case LogLevel::Debug: return "debug";
    }
    return "?";
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    const std::string loc = location(file, line);
    writeLine("fatal", loc.empty() ? nullptr : loc.c_str(), msg);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    const std::string loc = location(file, line);
    writeLine("panic", loc.empty() ? nullptr : loc.c_str(), msg);
    std::abort();
}

void
informImpl(const std::string &msg)
{
    writeLine("info", nullptr, msg);
}

void
warnImpl(const std::string &msg)
{
    writeLine("warn", nullptr, msg);
}

void
debugImpl(const std::string &msg)
{
    writeLine("debug", nullptr, msg);
}

} // namespace detail

} // namespace v10
