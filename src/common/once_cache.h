/**
 * @file
 * Compute-once concurrent cache: a keyed memoization table safe to
 * hammer from every ParallelExecutor worker at once.
 *
 * The first caller of a key computes the value *outside* the lock;
 * concurrent callers for the same key block on a shared_future until
 * it is ready, so each value is computed exactly once no matter how
 * many threads race on it. Values live in node-based storage, so the
 * returned references stay valid for the cache's lifetime — the
 * property ExperimentRunner's `const Workload &` / `const RunStats &`
 * accessors rely on.
 */

#ifndef V10_COMMON_ONCE_CACHE_H
#define V10_COMMON_ONCE_CACHE_H

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/annotations.h"

namespace v10 {

/**
 * Thread-safe string-keyed cache with exactly-once computation per
 * key. @tparam Value the cached type (need not be copyable or
 * movable; it is held by unique_ptr).
 */
template <typename Value>
class OnceCache
{
  public:
    OnceCache() = default;

    /** Moving is only safe while no computation is in flight (the
     * usual contract for movable concurrency containers); it exists
     * so cache owners stay movable during single-threaded setup. */
    OnceCache(OnceCache &&other) noexcept
    {
        std::lock_guard<std::mutex> lock(other.mu_);
        slots_ = std::move(other.slots_);
        values_ = std::move(other.values_);
    }

    OnceCache &
    operator=(OnceCache &&other) noexcept
    {
        if (this != &other) {
            std::scoped_lock lock(mu_, other.mu_);
            slots_ = std::move(other.slots_);
            values_ = std::move(other.values_);
        }
        return *this;
    }

    OnceCache(const OnceCache &) = delete;
    OnceCache &operator=(const OnceCache &) = delete;

    /**
     * Return the value for @p key, running @p compute (a callable
     * returning std::unique_ptr<Value>) if this is the first request
     * for it. Concurrent callers of the same key wait for the single
     * computation instead of recomputing. If compute throws, waiters
     * see the exception and the key becomes computable again.
     *
     * compute must not re-enter the same key (classic lock-free
     * once-cell restriction); distinct keys may recurse freely.
     */
    template <typename Compute>
    const Value &
    getOrCompute(const std::string &key, Compute &&compute)
    {
        std::shared_future<const Value *> future;
        std::promise<const Value *> promise;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = slots_.find(key);
            if (it == slots_.end()) {
                owner = true;
                future = promise.get_future().share();
                slots_.emplace(key, future);
            } else {
                future = it->second;
            }
        }
        if (owner) {
            try {
                std::unique_ptr<Value> value = compute();
                const Value *ptr = nullptr;
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    ptr = (values_[key] = std::move(value)).get();
                }
                promise.set_value(ptr);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    slots_.erase(key);
                }
                promise.set_exception(std::current_exception());
            }
        }
        return *future.get();
    }

    /** True if @p key has a fully computed value. */
    bool
    contains(const std::string &key) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return values_.count(key) != 0;
    }

    /** Number of fully computed values. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return values_.size();
    }

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::shared_future<const Value *>> slots_ V10_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Value>> values_ V10_GUARDED_BY(mu_);
};

} // namespace v10

#endif // V10_COMMON_ONCE_CACHE_H
