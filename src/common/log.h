/**
 * @file
 * Minimal logging and error-exit helpers, following the gem5
 * fatal()/panic() convention:
 *
 *  - fatal(): the simulation cannot continue because of a user error
 *    (bad configuration, invalid arguments). Exits with code 1.
 *  - panic(): something happened that should never happen regardless
 *    of user input, i.e. a simulator bug. Calls abort().
 *  - inform()/warn(): status messages; never stop the simulation.
 */

#ifndef V10_COMMON_LOG_H
#define V10_COMMON_LOG_H

#include <optional>
#include <sstream>
#include <string>

namespace v10 {

/** Verbosity levels for inform()/warn() output. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global verbosity (default: Warn). Thread-safe. */
void setLogLevel(LogLevel level);

/** Current global verbosity. Thread-safe. */
LogLevel logLevel();

/** Parse "silent" | "warn" | "info" | "debug"; fatal() if unknown. */
LogLevel logLevelFromName(const std::string &name);

/** Recoverable variant of logLevelFromName(): nullopt if unknown. */
std::optional<LogLevel> tryLogLevelFromName(const std::string &name);

/** Printable name of a verbosity level. */
const char *logLevelName(LogLevel level);

namespace detail {

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void informImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** User-error exit (configuration problems and the like). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(nullptr, 0,
                      detail::concat(std::forward<Args>(args)...));
}

/** Simulator-bug exit; dumps core via abort(). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(nullptr, 0,
                      detail::concat(std::forward<Args>(args)...));
}

/** Informational status message (LogLevel::Info and above). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Info)
        detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Suspicious-but-survivable condition (LogLevel::Warn and above). */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Developer tracing (LogLevel::Debug only). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace v10

/**
 * fatal()/panic() variants that capture the call site: prefer these
 * in new code — the plain variadic front-ends keep working but lose
 * __FILE__/__LINE__ (they pass nullptr/0).
 */
#define V10_FATAL(...)                                                \
    ::v10::detail::fatalImpl(                                         \
        __FILE__, __LINE__,                                           \
        ::v10::detail::concat(__VA_ARGS__))

#define V10_PANIC(...)                                                \
    ::v10::detail::panicImpl(                                         \
        __FILE__, __LINE__,                                           \
        ::v10::detail::concat(__VA_ARGS__))

#endif // V10_COMMON_LOG_H
