#include "common/parallel_executor.h"

#include <atomic>
#include <exception>
#include <memory>

#include "common/log.h"
#include "common/string_util.h"

namespace v10 {

/** Completion state shared by every task of one forEach() call. */
struct ParallelExecutor::Batch
{
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t remaining = 0;
    std::exception_ptr error;
};

ParallelExecutor::ParallelExecutor(std::size_t jobs)
    : jobs_(jobs == 0 ? 1 : jobs)
{
    // The calling thread is one of the `jobs` lanes, so spawn one
    // fewer worker; jobs=1 spawns none and stays purely serial.
    workers_.reserve(jobs_ - 1);
    for (std::size_t i = 0; i + 1 < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ParallelExecutor::~ParallelExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    task_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

std::size_t
ParallelExecutor::hardwareJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t
ParallelExecutor::parseJobs(const std::string &value)
{
    if (value == "auto" || value == "0")
        return hardwareJobs();
    // Digits only: stoul would silently wrap "-3" to a huge count.
    bool digits = !value.empty();
    for (char c : value)
        digits = digits && c >= '0' && c <= '9';
    std::size_t pos = 0;
    unsigned long n = 0;
    try {
        n = digits ? std::stoul(value, &pos) : 0;
    } catch (const std::exception &) {
        pos = 0;
    }
    if (!digits || pos != value.size() || n == 0)
        fatal("--jobs: expected a positive integer or 'auto', got '",
              value, "'");
    constexpr unsigned long kMaxJobs = 1024;
    if (n > kMaxJobs)
        fatal("--jobs: ", value, " exceeds the limit of ", kMaxJobs);
    return static_cast<std::size_t>(n);
}

bool
ParallelExecutor::runOneTask()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();
    return true;
}

void
ParallelExecutor::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            task_cv_.wait(lock,
                          [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ParallelExecutor::forEach(std::size_t count,
                          const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;

    if (jobs_ == 1) {
        // Serial fast path: identical to the loop it replaces.
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->remaining = count;

    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < count; ++i) {
            // fn outlives the batch: forEach() blocks until every
            // task completed, so capturing it by reference is safe.
            queue_.emplace_back([batch, &fn, i] {
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> blk(batch->mu);
                    if (!batch->error)
                        batch->error = std::current_exception();
                }
                std::lock_guard<std::mutex> blk(batch->mu);
                if (--batch->remaining == 0)
                    batch->done_cv.notify_all();
            });
        }
    }
    task_cv_.notify_all();

    // The caller is a worker too: drain tasks (possibly from other
    // concurrent batches) until the global queue empties, then wait
    // for this batch's stragglers.
    while (runOneTask()) {
    }
    {
        std::unique_lock<std::mutex> lock(batch->mu);
        batch->done_cv.wait(lock,
                            [&] { return batch->remaining == 0; });
        if (batch->error)
            std::rethrow_exception(batch->error);
    }
}

} // namespace v10
