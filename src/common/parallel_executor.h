/**
 * @file
 * Deterministic fixed-size thread pool for embarrassingly parallel
 * experiment fan-out.
 *
 * Design constraints (see DESIGN.md and the determinism tests):
 *  - no work stealing between batches and no completion-order
 *    dependence: results are always collected by submission index,
 *    so a batch's output is bit-identical whether it ran on 1 or N
 *    threads;
 *  - jobs=1 runs every task inline on the calling thread with no
 *    worker threads at all, making the serial path *literally* the
 *    sequential loop it replaces;
 *  - the calling thread participates in draining the queue, so a
 *    batch submitted from inside a task cannot deadlock the pool.
 */

#ifndef V10_COMMON_PARALLEL_EXECUTOR_H
#define V10_COMMON_PARALLEL_EXECUTOR_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace v10 {

/**
 * Fixed thread pool (jobs-1 workers + the calling thread) that runs
 * index-addressed task batches and reports results in submission
 * order.
 */
class ParallelExecutor
{
  public:
    /** @param jobs total concurrency; 0 and 1 both mean serial. */
    explicit ParallelExecutor(std::size_t jobs = 1);
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Configured concurrency (>= 1). */
    std::size_t jobs() const { return jobs_; }

    /**
     * Run fn(0), fn(1), ..., fn(count-1) across the pool and block
     * until every call returned. Tasks may execute on any thread in
     * any order; the first exception thrown by any task is rethrown
     * here after the batch drains.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &fn);

    /**
     * forEach() collecting fn(i) into slot i of the result vector:
     * output order is submission order regardless of completion
     * order, which is what makes parallel sweeps deterministic.
     */
    template <typename R>
    std::vector<R>
    map(std::size_t count, const std::function<R(std::size_t)> &fn)
    {
        std::vector<R> out(count);
        forEach(count,
                [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** std::thread::hardware_concurrency() clamped to >= 1. */
    static std::size_t hardwareJobs();

    /**
     * Parse a --jobs value: positive integer, or 0/"auto" for
     * hardwareJobs(). fatal() on garbage.
     */
    static std::size_t parseJobs(const std::string &value);

  private:
    struct Batch;

    void workerLoop();
    /** Pop one queued task and run it; false if the queue is empty. */
    bool runOneTask();

    std::size_t jobs_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable task_cv_;
    std::deque<std::function<void()>> queue_ V10_GUARDED_BY(mu_);
    bool stop_ V10_GUARDED_BY(mu_) = false;
};

} // namespace v10

#endif // V10_COMMON_PARALLEL_EXECUTOR_H
