#include "common/table.h"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/log.h"

namespace v10 {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow()
{
    rows_.emplace_back();
}

void
TextTable::cell(const std::string &value)
{
    if (rows_.empty())
        panic("TextTable::cell called before addRow");
    rows_.back().push_back(value);
}

void
TextTable::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    cell(os.str());
}

void
TextTable::cell(long long value)
{
    cell(std::to_string(value));
}

void
TextTable::cellPct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision)
       << fraction * 100.0 << '%';
    cell(os.str());
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : "";
            os << (c ? "  " : "") << std::left
               << std::setw(static_cast<int>(widths[c])) << v;
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w;
    total += 2 * (widths.empty() ? 0 : widths.size() - 1);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace v10
