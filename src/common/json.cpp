#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/log.h"

namespace v10 {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Integers print without an exponent so artifacts stay diffable.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// ------------------------------------------------------------------
// JsonWriter
// ------------------------------------------------------------------

JsonWriter::JsonWriter(std::ostream &os, int indentWidth)
    : os_(os), indent_(indentWidth)
{
}

void
JsonWriter::raw(const std::string &text)
{
    os_ << text;
}

void
JsonWriter::newlineIndent()
{
    if (indent_ <= 0)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        for (int s = 0; s < indent_; ++s)
            os_ << ' ';
}

void
JsonWriter::preValue()
{
    if (stack_.empty())
        return;
    if (stack_.back() == Scope::Object && !key_pending_)
        panic("JsonWriter: value inside an object without a key");
    if (stack_.back() == Scope::Array) {
        if (has_items_.back())
            os_ << ',';
        newlineIndent();
        has_items_.back() = true;
    }
    key_pending_ = false;
}

void
JsonWriter::key(const std::string &k)
{
    if (stack_.empty() || stack_.back() != Scope::Object)
        panic("JsonWriter: key() outside an object");
    if (key_pending_)
        panic("JsonWriter: key '", k, "' follows a dangling key");
    if (has_items_.back())
        os_ << ',';
    newlineIndent();
    has_items_.back() = true;
    os_ << '"' << jsonEscape(k) << "\":";
    if (indent_ > 0)
        os_ << ' ';
    key_pending_ = true;
}

void
JsonWriter::beginObject()
{
    preValue();
    os_ << '{';
    stack_.push_back(Scope::Object);
    has_items_.push_back(false);
}

void
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Scope::Object)
        panic("JsonWriter: endObject() without beginObject()");
    if (key_pending_)
        panic("JsonWriter: endObject() with a dangling key");
    const bool had = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had)
        newlineIndent();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    os_ << '[';
    stack_.push_back(Scope::Array);
    has_items_.push_back(false);
}

void
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Scope::Array)
        panic("JsonWriter: endArray() without beginArray()");
    const bool had = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had)
        newlineIndent();
    os_ << ']';
}

void
JsonWriter::value(const std::string &v)
{
    preValue();
    os_ << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    preValue();
    os_ << jsonNumber(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(int v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::valueNull()
{
    preValue();
    os_ << "null";
}

// ------------------------------------------------------------------
// JsonValue parser
// ------------------------------------------------------------------

namespace {

/** Recursive-descent parser state over the input string. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    expect(char c)
    {
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (!expect('"'))
            return false;
        out->clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("truncated escape");
                const char e = text[pos++];
                switch (e) {
                case '"': *out += '"'; break;
                case '\\': *out += '\\'; break;
                case '/': *out += '/'; break;
                case 'b': *out += '\b'; break;
                case 'f': *out += '\f'; break;
                case 'n': *out += '\n'; break;
                case 'r': *out += '\r'; break;
                case 't': *out += '\t'; break;
                case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += static_cast<unsigned>(h - 'a') + 10;
                        else if (h >= 'A' && h <= 'F')
                            code += static_cast<unsigned>(h - 'A') + 10;
                        else
                            return fail("bad \\u digit");
                    }
                    // Validation-oriented parser: encode BMP code
                    // points as UTF-8 (surrogates unsupported).
                    if (code < 0x80) {
                        *out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        *out += static_cast<char>(0xC0 | (code >> 6));
                        *out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        *out += static_cast<char>(0xE0 | (code >> 12));
                        *out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F));
                        *out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default:
                    return fail("unknown escape");
                }
            } else {
                *out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue *out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out->type = JsonValue::Type::Object;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (!expect(':'))
                    return false;
                JsonValue member;
                if (!parseValue(&member))
                    return false;
                out->object.emplace_back(std::move(key),
                                         std::move(member));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return expect('}');
            }
        }
        if (c == '[') {
            ++pos;
            out->type = JsonValue::Type::Array;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                JsonValue item;
                if (!parseValue(&item))
                    return false;
                out->array.push_back(std::move(item));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return expect(']');
            }
        }
        if (c == '"') {
            out->type = JsonValue::Type::String;
            return parseString(&out->str);
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            out->type = JsonValue::Type::Bool;
            out->boolean = true;
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            out->type = JsonValue::Type::Bool;
            out->boolean = false;
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            out->type = JsonValue::Type::Null;
            return true;
        }
        // Number.
        const std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool digits = false;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '-' ||
                text[pos] == '+')) {
            if (std::isdigit(static_cast<unsigned char>(text[pos])))
                digits = true;
            ++pos;
        }
        if (!digits) {
            pos = start;
            return fail("unexpected token");
        }
        out->type = JsonValue::Type::Number;
        out->number =
            std::strtod(text.substr(start, pos - start).c_str(),
                        nullptr);
        return true;
    }
};

} // namespace

bool
JsonValue::parse(const std::string &text, JsonValue *out,
                 std::string *error)
{
    Parser p{text};
    *out = JsonValue{};
    if (!p.parseValue(out)) {
        if (error)
            *error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing garbage at offset " +
                     std::to_string(p.pos);
        return false;
    }
    return true;
}

JsonValue
JsonValue::parseOrDie(const std::string &text, const std::string &what)
{
    JsonValue out;
    std::string err;
    if (!parse(text, &out, &err))
        fatal(what, ": malformed JSON: ", err);
    return out;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

} // namespace v10
