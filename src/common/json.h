/**
 * @file
 * Minimal JSON support for the observability layer: a streaming
 * writer (used by the stats registry, the run report, and the
 * Chrome-trace emitter) and a small recursive-descent parser (used
 * by tests and CLI validation to check emitted artifacts without an
 * external dependency).
 *
 * The writer produces strict JSON: keys are escaped, doubles print
 * with round-trip precision, and non-finite doubles degrade to null
 * (JSON has no NaN/Inf literal).
 */

#ifndef V10_COMMON_JSON_H
#define V10_COMMON_JSON_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace v10 {

/** Escape a string for embedding inside JSON double quotes. */
std::string jsonEscape(const std::string &s);

/** Render a double as a JSON number token (null if not finite). */
std::string jsonNumber(double v);

/**
 * Streaming JSON writer with automatic comma/indent management.
 * Misuse (e.g. a value with no pending key inside an object) is a
 * programming error and panics.
 */
class JsonWriter
{
  public:
    /** @param os output stream (not owned)
     *  @param indentWidth spaces per nesting level (0 = compact) */
    explicit JsonWriter(std::ostream &os, int indentWidth = 2);

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Object member key; must be followed by a value or begin*(). */
    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v);
    void value(bool v);
    void valueNull();

    /** Convenience: key() + value(). */
    template <typename T>
    void
    kv(const std::string &k, T &&v)
    {
        key(k);
        value(std::forward<T>(v));
    }

    /** Nesting depth (0 once every container is closed). */
    std::size_t depth() const { return stack_.size(); }

  private:
    enum class Scope { Object, Array };

    /** Emit separators/indentation before a value or key. */
    void preValue();
    void newlineIndent();
    void raw(const std::string &text);

    std::ostream &os_;
    int indent_;
    std::vector<Scope> stack_;
    std::vector<bool> has_items_;
    bool key_pending_ = false;
};

/**
 * Parsed JSON document node. A deliberately small tree model: object
 * members keep their source order, numbers are doubles.
 */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /**
     * Parse @p text into @p out.
     * @return true on success; on failure fills @p error (when
     *         non-null) with a position-annotated message.
     */
    static bool parse(const std::string &text, JsonValue *out,
                      std::string *error = nullptr);

    /** parse() that fatal()s on malformed input (CLI validation). */
    static JsonValue parseOrDie(const std::string &text,
                                const std::string &what);

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** True when this is an object containing @p key. */
    bool has(const std::string &key) const
    {
        return find(key) != nullptr;
    }

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
};

} // namespace v10

#endif // V10_COMMON_JSON_H
