#include "collocate/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.h"

namespace v10 {

EigenResult
jacobiEigen(const Matrix &symmetric, int maxSweeps)
{
    const std::size_t n = symmetric.rows();
    if (n == 0 || symmetric.cols() != n)
        fatal("jacobiEigen: need a square matrix");

    Matrix a = symmetric;
    Matrix v = Matrix::identity(n);

    for (int sweep = 0; sweep < maxSweeps; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q)
                off += a.at(p, q) * a.at(p, q);
        if (off < 1e-24)
            break;

        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a.at(p, q);
                if (std::abs(apq) < 1e-300)
                    continue;
                const double app = a.at(p, p);
                const double aqq = a.at(q, q);
                const double theta = (aqq - app) / (2.0 * apq);
                const double t =
                    (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::abs(theta) +
                     std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a.at(k, p);
                    const double akq = a.at(k, q);
                    a.at(k, p) = c * akp - s * akq;
                    a.at(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a.at(p, k);
                    const double aqk = a.at(q, k);
                    a.at(p, k) = c * apk - s * aqk;
                    a.at(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v.at(k, p);
                    const double vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::vector<double> diag(n);
    for (std::size_t i = 0; i < n; ++i)
        diag[i] = a.at(i, i);
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) {
                  return diag[x] > diag[y];
              });

    EigenResult result;
    result.values.resize(n);
    result.vectors = Matrix(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        result.values[j] = diag[order[j]];
        for (std::size_t i = 0; i < n; ++i)
            result.vectors.at(i, j) = v.at(i, order[j]);
    }
    return result;
}

Pca::Pca(const Matrix &data, std::size_t components)
    : components_(components)
{
    if (components_ == 0 || components_ > data.cols())
        fatal("Pca: bad component count ", components_, " for ",
              data.cols(), " features");

    Matrix centered = data;
    means_ = centered.centerColumns();
    const Matrix cov = centered.covariance();
    const EigenResult eig = jacobiEigen(cov);

    projection_ = Matrix(data.cols(), components_);
    for (std::size_t f = 0; f < data.cols(); ++f)
        for (std::size_t c = 0; c < components_; ++c)
            projection_.at(f, c) = eig.vectors.at(f, c);

    double total = 0.0;
    double kept = 0.0;
    for (std::size_t i = 0; i < eig.values.size(); ++i) {
        const double v = std::max(eig.values[i], 0.0);
        total += v;
        if (i < components_)
            kept += v;
    }
    explained_ = total > 0.0 ? kept / total : 0.0;
}

std::vector<double>
Pca::transform(const std::vector<double> &sample) const
{
    if (sample.size() != means_.size())
        fatal("Pca::transform: feature-count mismatch");
    std::vector<double> out(components_, 0.0);
    for (std::size_t c = 0; c < components_; ++c) {
        double acc = 0.0;
        for (std::size_t f = 0; f < sample.size(); ++f)
            acc += (sample[f] - means_[f]) * projection_.at(f, c);
        out[c] = acc;
    }
    return out;
}

Matrix
Pca::transform(const Matrix &data) const
{
    Matrix out(data.rows(), components_);
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const auto projected = transform(data.row(r));
        for (std::size_t c = 0; c < components_; ++c)
            out.at(r, c) = projected[c];
    }
    return out;
}

} // namespace v10
