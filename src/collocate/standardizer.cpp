#include "collocate/standardizer.h"

#include <cmath>

#include "common/log.h"

namespace v10 {

Standardizer::Standardizer(const Matrix &data)
{
    if (data.rows() == 0)
        fatal("Standardizer: empty data");
    means_ = data.colMeans();
    stds_.assign(data.cols(), 0.0);
    for (std::size_t r = 0; r < data.rows(); ++r) {
        for (std::size_t c = 0; c < data.cols(); ++c) {
            const double d = data.at(r, c) - means_[c];
            stds_[c] += d * d;
        }
    }
    for (auto &s : stds_) {
        s = std::sqrt(s / static_cast<double>(data.rows()));
        if (s < 1e-12)
            s = 1.0; // constant feature: leave centered only
    }
}

std::vector<double>
Standardizer::transform(const std::vector<double> &sample) const
{
    if (sample.size() != means_.size())
        fatal("Standardizer::transform: feature-count mismatch");
    std::vector<double> out(sample.size());
    for (std::size_t c = 0; c < sample.size(); ++c)
        out[c] = (sample[c] - means_[c]) / stds_[c];
    return out;
}

Matrix
Standardizer::transform(const Matrix &data) const
{
    Matrix out(data.rows(), data.cols());
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const auto t = transform(data.row(r));
        for (std::size_t c = 0; c < data.cols(); ++c)
            out.at(r, c) = t[c];
    }
    return out;
}

} // namespace v10
