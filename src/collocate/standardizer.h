/**
 * @file
 * Feature standardization (zero mean, unit variance) applied before
 * PCA/K-Means so that heterogeneous feature scales (utilization
 * fractions vs log operator lengths) contribute comparably.
 */

#ifndef V10_COLLOCATE_STANDARDIZER_H
#define V10_COLLOCATE_STANDARDIZER_H

#include <vector>

#include "collocate/matrix.h"

namespace v10 {

/**
 * Per-column z-score transform fitted on training data.
 */
class Standardizer
{
  public:
    /** Fit on @p data (rows = samples). */
    explicit Standardizer(const Matrix &data);

    /** Transform one sample. */
    std::vector<double>
    transform(const std::vector<double> &sample) const;

    /** Transform a matrix of samples. */
    Matrix transform(const Matrix &data) const;

    /** Column means. */
    const std::vector<double> &means() const { return means_; }

    /** Column standard deviations (>= epsilon). */
    const std::vector<double> &stddevs() const { return stds_; }

  private:
    std::vector<double> means_;
    std::vector<double> stds_;
};

} // namespace v10

#endif // V10_COLLOCATE_STANDARDIZER_H
