/**
 * @file
 * K-Means clustering with k-means++ seeding — the grouping step of
 * the collocation mechanism (§3.4, Fig. 15: workloads cluster by
 * resource-utilization pattern). Deterministic given the seed.
 */

#ifndef V10_COLLOCATE_KMEANS_H
#define V10_COLLOCATE_KMEANS_H

#include <cstdint>
#include <vector>

#include "collocate/matrix.h"

namespace v10 {

/**
 * K-Means fit result.
 */
struct KMeansResult
{
    Matrix centroids;                 ///< k x features
    std::vector<std::size_t> labels;  ///< cluster of each sample
    double inertia = 0.0;             ///< sum of squared distances
    int iterations = 0;               ///< Lloyd iterations run
};

/**
 * K-Means clusterer.
 */
class KMeans
{
  public:
    /**
     * @param k number of clusters
     * @param seed PRNG seed (k-means++ initialization)
     * @param maxIters Lloyd iteration cap
     * @param restarts independent restarts; best inertia wins
     */
    explicit KMeans(std::size_t k, std::uint64_t seed = 7,
                    int maxIters = 100, int restarts = 8);

    /** Fit on @p data (rows = samples). Requires rows >= k. */
    KMeansResult fit(const Matrix &data) const;

    /** Nearest centroid of @p sample under a fitted result. */
    static std::size_t assign(const KMeansResult &fit,
                              const std::vector<double> &sample);

    /** Squared Euclidean distance helper. */
    static double squaredDistance(const std::vector<double> &a,
                                  const std::vector<double> &b);

  private:
    KMeansResult fitOnce(const Matrix &data,
                         std::uint64_t seed) const;

    std::size_t k_;
    std::uint64_t seed_;
    int max_iters_;
    int restarts_;
};

} // namespace v10

#endif // V10_COLLOCATE_KMEANS_H
