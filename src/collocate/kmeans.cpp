#include "collocate/kmeans.h"

#include <limits>

#include "common/log.h"
#include "common/rng.h"

namespace v10 {

KMeans::KMeans(std::size_t k, std::uint64_t seed, int maxIters,
               int restarts)
    : k_(k), seed_(seed), max_iters_(maxIters), restarts_(restarts)
{
    if (k_ == 0)
        fatal("KMeans: k must be positive");
    if (restarts_ <= 0)
        fatal("KMeans: need at least one restart");
}

double
KMeans::squaredDistance(const std::vector<double> &a,
                        const std::vector<double> &b)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

std::size_t
KMeans::assign(const KMeansResult &fit,
               const std::vector<double> &sample)
{
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < fit.centroids.rows(); ++c) {
        const double d = squaredDistance(sample, fit.centroids.row(c));
        if (d < best_d) {
            best_d = d;
            best = c;
        }
    }
    return best;
}

KMeansResult
KMeans::fitOnce(const Matrix &data, std::uint64_t seed) const
{
    const std::size_t n = data.rows();
    const std::size_t dims = data.cols();
    Rng rng(seed);

    // --- k-means++ seeding. ---
    std::vector<std::vector<double>> centroids;
    centroids.push_back(data.row(rng.uniformInt(n)));
    std::vector<double> dist2(n);
    while (centroids.size() < k_) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            const auto sample = data.row(i);
            for (const auto &c : centroids)
                best = std::min(best, squaredDistance(sample, c));
            dist2[i] = best;
            total += best;
        }
        std::size_t pick = 0;
        if (total <= 0.0) {
            pick = rng.uniformInt(n);
        } else {
            double target = rng.uniform() * total;
            for (std::size_t i = 0; i < n; ++i) {
                target -= dist2[i];
                if (target <= 0.0) {
                    pick = i;
                    break;
                }
            }
        }
        centroids.push_back(data.row(pick));
    }

    // --- Lloyd iterations. ---
    KMeansResult result;
    result.labels.assign(n, 0);
    for (int iter = 0; iter < max_iters_; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            const auto sample = data.row(i);
            std::size_t best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (std::size_t c = 0; c < k_; ++c) {
                const double d =
                    squaredDistance(sample, centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (result.labels[i] != best) {
                result.labels[i] = best;
                changed = true;
            }
        }
        result.iterations = iter + 1;
        if (!changed && iter > 0)
            break;

        std::vector<std::vector<double>> sums(
            k_, std::vector<double>(dims, 0.0));
        std::vector<std::size_t> counts(k_, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const auto sample = data.row(i);
            auto &sum = sums[result.labels[i]];
            for (std::size_t d = 0; d < dims; ++d)
                sum[d] += sample[d];
            ++counts[result.labels[i]];
        }
        for (std::size_t c = 0; c < k_; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster on a random sample.
                centroids[c] = data.row(rng.uniformInt(n));
                continue;
            }
            for (std::size_t d = 0; d < dims; ++d)
                centroids[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
        }
    }

    result.centroids = Matrix(k_, dims);
    for (std::size_t c = 0; c < k_; ++c)
        for (std::size_t d = 0; d < dims; ++d)
            result.centroids.at(c, d) = centroids[c][d];

    result.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        result.inertia += squaredDistance(
            data.row(i), centroids[result.labels[i]]);
    return result;
}

KMeansResult
KMeans::fit(const Matrix &data) const
{
    if (data.rows() < k_)
        fatal("KMeans: ", data.rows(), " samples < k=", k_);
    KMeansResult best;
    bool have = false;
    for (int r = 0; r < restarts_; ++r) {
        KMeansResult cand =
            fitOnce(data, seed_ + static_cast<std::uint64_t>(r) *
                                      0x9E3779B97F4A7C15ull);
        if (!have || cand.inertia < best.inertia) {
            best = std::move(cand);
            have = true;
        }
    }
    return best;
}

} // namespace v10
