#include "collocate/matrix.h"

#include "common/log.h"

namespace v10 {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows[0].size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.cols_)
            fatal("Matrix::fromRows: ragged rows");
        for (std::size_t c = 0; c < m.cols_; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix::at(", r, ",", c, ") out of ", rows_, "x",
              cols_);
    return data_[r * cols_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix::at(", r, ",", c, ") out of ", rows_, "x",
              cols_);
    return data_[r * cols_ + c];
}

std::vector<double>
Matrix::row(std::size_t r) const
{
    std::vector<double> out(cols_);
    for (std::size_t c = 0; c < cols_; ++c)
        out[c] = at(r, c);
    return out;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    if (cols_ != other.rows_)
        fatal("Matrix::multiply: ", rows_, "x", cols_, " * ",
              other.rows_, "x", other.cols_);
    Matrix out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double v = at(r, k);
            if (v == 0.0)
                continue;
            for (std::size_t c = 0; c < other.cols_; ++c)
                out.at(r, c) += v * other.at(k, c);
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(c, r) = at(r, c);
    return out;
}

std::vector<double>
Matrix::colMeans() const
{
    std::vector<double> means(cols_, 0.0);
    if (rows_ == 0)
        return means;
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            means[c] += at(r, c);
    for (auto &m : means)
        m /= static_cast<double>(rows_);
    return means;
}

std::vector<double>
Matrix::centerColumns()
{
    const auto means = colMeans();
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            at(r, c) -= means[c];
    return means;
}

Matrix
Matrix::covariance() const
{
    if (rows_ < 2)
        fatal("Matrix::covariance: need at least two rows");
    Matrix cov = transposed().multiply(*this);
    const double denom = static_cast<double>(rows_ - 1);
    for (std::size_t r = 0; r < cov.rows_; ++r)
        for (std::size_t c = 0; c < cov.cols_; ++c)
            cov.at(r, c) /= denom;
    return cov;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

} // namespace v10
