/**
 * @file
 * Principal component analysis via cyclic Jacobi eigendecomposition
 * of the covariance matrix — the feature-reduction step of the
 * clustering-based collocation mechanism (§3.4, "we apply principal
 * component analysis (PCA) to extract important features").
 */

#ifndef V10_COLLOCATE_PCA_H
#define V10_COLLOCATE_PCA_H

#include <vector>

#include "collocate/matrix.h"

namespace v10 {

/**
 * Symmetric eigendecomposition result, eigenvalues descending.
 */
struct EigenResult
{
    std::vector<double> values;   ///< eigenvalues, descending
    Matrix vectors;               ///< columns are eigenvectors
};

/**
 * Eigendecomposition of a symmetric matrix by the cyclic Jacobi
 * method. Deterministic; converges for any symmetric input.
 */
EigenResult jacobiEigen(const Matrix &symmetric,
                        int maxSweeps = 64);

/**
 * Fitted PCA projection.
 */
class Pca
{
  public:
    /**
     * Fit on @p data (rows = samples, cols = features), keeping
     * @p components principal components.
     */
    Pca(const Matrix &data, std::size_t components);

    /** Project one sample into the principal subspace. */
    std::vector<double>
    transform(const std::vector<double> &sample) const;

    /** Project a whole matrix (rows = samples). */
    Matrix transform(const Matrix &data) const;

    /** Fraction of total variance captured by the kept components. */
    double explainedVariance() const { return explained_; }

    /** Number of kept components. */
    std::size_t components() const { return components_; }

  private:
    std::size_t components_;
    std::vector<double> means_;
    Matrix projection_; ///< features x components
    double explained_ = 0.0;
};

} // namespace v10

#endif // V10_COLLOCATE_PCA_H
