/**
 * @file
 * Minimal dense matrix support for the clustering pipeline (§3.4).
 * Row-major doubles; only the operations PCA/K-Means need.
 */

#ifndef V10_COLLOCATE_MATRIX_H
#define V10_COLLOCATE_MATRIX_H

#include <cstddef>
#include <vector>

namespace v10 {

/**
 * Row-major dense matrix of doubles.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from nested initializer data (rows of equal length). */
    static Matrix fromRows(
        const std::vector<std::vector<double>> &rows);

    /** Number of rows. */
    std::size_t rows() const { return rows_; }

    /** Number of columns. */
    std::size_t cols() const { return cols_; }

    /** Element access. */
    double &at(std::size_t r, std::size_t c);

    /** Element access (const). */
    double at(std::size_t r, std::size_t c) const;

    /** One row as a vector copy. */
    std::vector<double> row(std::size_t r) const;

    /** Matrix product this * other. */
    Matrix multiply(const Matrix &other) const;

    /** Transpose. */
    Matrix transposed() const;

    /** Column means. */
    std::vector<double> colMeans() const;

    /** Subtract column means in place; returns the means. */
    std::vector<double> centerColumns();

    /** Covariance matrix of the (centered) rows: X^T X / (n-1). */
    Matrix covariance() const;

    /** Identity matrix. */
    static Matrix identity(std::size_t n);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace v10

#endif // V10_COLLOCATE_MATRIX_H
