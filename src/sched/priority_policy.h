/**
 * @file
 * The priority-based scheduling policy of Algorithm 1: keep each
 * workload's active_rate (active_time / total_time) proportional to
 * its priority by always serving the workload with the smallest
 * active_rate / priority. This is V10-Fair's policy, and with the
 * preemption module enabled, V10-Full's.
 */

#ifndef V10_SCHED_PRIORITY_POLICY_H
#define V10_SCHED_PRIORITY_POLICY_H

#include "sched/policy.h"

namespace v10 {

/**
 * Algorithm 1: minimum active_rate_p first.
 */
class PriorityPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "priority"; }

    WorkloadId pickNext(const ContextTable &table,
                        OpKind fuType) override;

    /**
     * Preempt when the waiting candidate's active_rate_p is strictly
     * below the running workload's — it is receiving less than its
     * priority-proportional share (§3.3).
     */
    bool shouldPreempt(const ContextTable &table, WorkloadId running,
                       WorkloadId candidate) override;
};

} // namespace v10

#endif // V10_SCHED_PRIORITY_POLICY_H
