#include "sched/priority_policy.h"

namespace v10 {

WorkloadId
PriorityPolicy::pickNext(const ContextTable &table, OpKind fuType)
{
    // Algorithm 1: scan workloads in ascending active_rate_p order
    // and return the first dispatchable one. With one pass we track
    // the minimum directly.
    WorkloadId best = kNoWorkload;
    double best_arp = 0.0;
    for (WorkloadId i = 0; i < table.size(); ++i) {
        const ContextRow &row = table.row(i);
        if (!row.ready || row.active || row.opType != fuType)
            continue;
        const double arp = row.activeRateP();
        if (best == kNoWorkload || arp < best_arp) {
            best = i;
            best_arp = arp;
        }
    }
    return best;
}

bool
PriorityPolicy::shouldPreempt(const ContextTable &table,
                              WorkloadId running, WorkloadId candidate)
{
    return table.row(candidate).activeRateP() <
           table.row(running).activeRateP();
}

} // namespace v10
