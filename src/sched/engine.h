/**
 * @file
 * Shared machinery for every scheduler design under evaluation (PMT,
 * V10-Base, V10-Fair, V10-Full, single-tenant): tenant lifecycle,
 * closed-loop request replay, double-buffered operator DMA through
 * the HBM model, preemption bookkeeping, and end-of-run statistics.
 *
 * Subclasses implement the actual dispatch logic via the hook
 * methods.
 */

#ifndef V10_SCHED_ENGINE_H
#define V10_SCHED_ENGINE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/rng.h"
#include "metrics/interval_sampler.h"
#include "metrics/latency_recorder.h"
#include "metrics/overlap_tracker.h"
#include "metrics/run_stats.h"
#include "metrics/stat_registry.h"
#include "metrics/timeline.h"
#include "npu/npu_core.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace v10 {

class RequestTracer;
class AttributionCollector;
class FlightRecorder;

/**
 * Degradation and fault-tolerance knobs of a run (docs/ROBUSTNESS.md).
 * All default to "off": a default-constructed ResilienceOptions keeps
 * the engine's historical behavior bit-for-bit (no injector draws, no
 * watchdog events, panic on event-queue drain).
 */
struct V10_DOMAIN_LOCAL ResilienceOptions
{
    /** Fault plan to inject (not owned); nullptr = no injection. */
    const FaultPlan *faults = nullptr;

    /** Injector seed; 0 uses the plan's own seed. */
    std::uint64_t faultSeed = 0;

    /** Forward-progress watchdog period; 0 disables the watchdog
     * (unless a cycle budget is set, which arms it at a default
     * period). Must exceed the longest legitimately quiet stretch
     * (dispatch gaps, open-loop inter-arrival times). */
    Cycles watchdogInterval = 0;

    /** Abort the run once it exceeds this many cycles; 0 = off. */
    Cycles cycleBudget = 0;

    /** Tenant-attributable faults (runaway, flood, DMA-retry
     * exhaustion) before a tenant is quarantined; 0 = never. */
    std::uint32_t quarantineThreshold = 0;

    /** Reissues of a timed-out DMA before the tenant is struck and
     * the transfer force-completed (forward progress). */
    std::uint32_t maxDmaRetries = 3;

    /** Initial DMA retry timeout; doubles per retry (backoff).
     * 0 selects a default. */
    Cycles dmaTimeoutCycles = 0;

    /** Directory for the diagnostic bundle written when a run
     * aborts; empty = no bundle. */
    std::string diagnosticDir;

    /** True when any degradation feature is active: aborts become
     * graceful (diagnosable RunStats) instead of panics. */
    bool
    enabled() const
    {
        return faults != nullptr || watchdogInterval > 0 ||
               cycleBudget > 0 || quarantineThreshold > 0;
    }
};

/**
 * K-strike quarantine escalation ladder (docs/RESILIENCE.md),
 * shared by the cycle-accurate engine's fault quarantine and the
 * serve layer's antagonist controller: strikes accumulate while a
 * tenant misbehaves, crossing each threshold escalates the response
 * (throttle -> isolate to a dedicated core -> evict), and sustained
 * clean epochs step the tenant back down one rung (eviction is
 * terminal).
 */
struct QuarantineLadder
{
    /** Strikes before the tenant's admission rate is throttled. */
    std::uint32_t throttleStrikes = 2;

    /** Strikes before the tenant is migrated to a dedicated core. */
    std::uint32_t isolateStrikes = 4;

    /** Strikes before the tenant is evicted (terminal). */
    std::uint32_t evictStrikes = 8;

    /** Admission-rate multiplier applied while throttled/isolated. */
    double throttleFactor = 0.25;

    /** Consecutive clean epochs before stepping down one rung. */
    std::uint32_t recoveryEpochs = 4;

    /** Thresholds must be positive and strictly increasing; the
     * throttle factor must be in (0, 1]. */
    Status check() const;
};

/**
 * One tenant's deployment parameters.
 */
struct TenantSpec
{
    const Workload *workload = nullptr;

    /** Relative priority (Algorithm 1 divisor / PMT slice share). */
    double priority = 1.0;

    /**
     * Open-loop offered load in requests per second (Poisson
     * arrivals). 0 selects the paper's closed-loop replay (§5.1:
     * the next request starts when the previous one completes).
     * Under open loop, request latency includes queueing delay.
     */
    double arrivalRps = 0.0;
};

/**
 * Base scheduler engine: owns per-tenant execution state and the run
 * loop; subclasses decide who runs where and when.
 */
class V10_DOMAIN_LOCAL SchedulerEngine
{
  public:
    /**
     * @param sim simulation kernel
     * @param core hardware assembly
     * @param tenants tenant deployment specs (workloads not owned)
     * @param seed engine-level RNG seed (PMT context-switch draw)
     */
    SchedulerEngine(Simulator &sim, NpuCore &core,
                    std::vector<TenantSpec> tenants,
                    std::uint64_t seed = 1);

    virtual ~SchedulerEngine();

    SchedulerEngine(const SchedulerEngine &) = delete;
    SchedulerEngine &operator=(const SchedulerEngine &) = delete;

    /**
     * Recoverable validation of a tenant deployment: empty tenant
     * lists, null/too-short workloads, non-positive priorities, and
     * negative arrival rates are reported as a ParseError instead
     * of killing the process. Callers that construct engines from
     * untrusted input (CLI, sweep cells) should validate first; the
     * constructor enforces the same checks through the legacy
     * orDie() bridge.
     */
    static Status validateSpecs(
        const std::vector<TenantSpec> &tenants);

    /** Display name ("PMT", "V10-Full", ...). */
    virtual const char *name() const = 0;

    /**
     * Run until every tenant has completed @p targetRequests
     * measured requests. The first @p warmupRequests requests per
     * tenant are excluded from every statistic (steady-state
     * measurement, §5.1).
     */
    RunStats run(std::uint64_t targetRequests,
                 std::uint64_t warmupRequests = 2);

    /** Attach an operator-timeline tracer (not owned; may be
     * nullptr). Slices are recorded for the whole run. */
    void setTimeline(TimelineTracer *timeline)
    {
        timeline_ = timeline;
    }

    /**
     * Attach a statistics registry (not owned; may be nullptr).
     * run() registers the hardware and scheduler statistics into it,
     * freezes it at the end of the run (formulas capture pointers
     * into this engine and its core), and copies its snapshot into
     * RunStats::registrySnapshot.
     */
    void setStats(StatRegistry *stats) { stats_ = stats; }

    /**
     * Attach an interval sampler (not owned; may be nullptr). run()
     * installs the default utilization/queue probes when the caller
     * registered none, and starts/stops it around the run. Probes
     * are read-only, so sampling never perturbs scheduling.
     */
    void setSampler(IntervalSampler *sampler) { sampler_ = sampler; }

    /**
     * Configure fault injection and graceful degradation. Call
     * before run(). The plan (if any) is not owned and must outlive
     * the engine; the per-run FaultInjector is constructed here, so
     * parallel sweeps sharing one plan stay deterministic.
     */
    void setResilience(const ResilienceOptions &options);

    /**
     * Attach a request tracer (not owned; may be nullptr). Request
     * boundaries emit head-sampled spans with IDs derived from
     * (engine seed, tenant, request sequence). Recording is passive
     * — scheduling stays bit-identical with a tracer attached.
     */
    void setRequestTracer(RequestTracer *tracer) { tracer_ = tracer; }

    /**
     * Attach an interference-attribution collector (not owned; may
     * be nullptr). Registers every tenant into it and installs it as
     * the HBM contention observer; dispatch/preemption sites then
     * charge stall, contention, and context-overhead cycles to the
     * responsible co-runner. Purely passive.
     */
    void setAttribution(AttributionCollector *attribution);

    /**
     * Attach a flight recorder (not owned; may be nullptr). Request
     * completions, preemptions, faults, quarantines, and aborts land
     * in its ring; the diagnostics bundle dumps it on abort.
     */
    void setFlightRecorder(FlightRecorder *recorder)
    {
        flight_ = recorder;
    }

    /** True when the last run() aborted (watchdog, budget, all
     * tenants quarantined, or wedged event queue). */
    bool aborted() const { return aborted_; }

    /** Human-readable abort reason; empty when not aborted. */
    const std::string &abortReason() const { return abort_reason_; }

    /** This run's fault injector; nullptr when no plan is set. */
    const FaultInjector *injector() const { return injector_.get(); }

  protected:
    /**
     * Per-tenant execution state: the software side of the workload
     * context table row.
     */
    struct Tenant
    {
        const Workload *wl = nullptr;
        WorkloadId id = 0;
        double priority = 1.0;

        /** Absolute index of the current operator (monotonic across
         * request replays; trace position is execCursor % length). */
        std::uint64_t execCursor = 0;

        /** Trace position of the current operator. */
        std::size_t opIndex = 0;

        /** Remaining compute of a preempted operator. */
        Cycles opRemaining = 0;

        /** Current operator was preempted mid-flight. */
        bool opPreempted = false;

        /** Current operator's DMA finished. */
        bool ready = false;

        /** Operator is executing on an FU. */
        bool running = false;

        /** FU occupied while running. */
        FunctionalUnit *fu = nullptr;

        /** Operators [0, dmaStaged) are staged on chip; the DMA
         * engine runs up to kPrefetchDepth operators ahead. */
        std::uint64_t dmaStaged = 0;

        /** A prefetch DMA is in flight. */
        bool dmaInFlight = false;
        DmaStreamId dma = 0;

        /** The previous operator's dispatch gap ends here; the
         * current operator cannot start earlier. */
        Cycles gapUntil = 0;

        /** A gap-expiry event is scheduled. */
        bool gapEventPending = false;

        /** Open-loop offered load (0 = closed loop). */
        double arrivalRps = 0.0;

        /** The in-flight request spans the warmup boundary; its
         * latency sample would be truncated, so it is skipped. */
        bool skipNextLatency = false;

        /** Arrival cycles of requests not yet completed (FIFO);
         * open-loop latency is measured from these. */
        std::deque<Cycles> arrivalQueue;

        /** Cycle of the most recent dispatch (occupancy metric). */
        Cycles lastDispatch = 0;

        /** Accumulated FU occupancy since arrival (policy metric). */
        Cycles activeCycles = 0;
        Cycles arrivalCycle = 0;

        /** Request accounting. */
        std::uint64_t requestsDone = 0;
        Cycles requestStart = 0;

        /** Requests completed inside the measured window (may
         * exceed the latency sample count by one: the request that
         * straddles the warmup boundary completes but its truncated
         * latency is not sampled). */
        std::uint64_t windowRequests = 0;

        /** Preemption statistics (measured window only). */
        std::uint64_t preemptions = 0;
        Cycles ctxOverheadCycles = 0;

        /** FLOPs of operators completed in the measured window. */
        double doneFlops = 0.0;

        /** Tenant-attributable faults recorded (runaway, flood,
         * DMA-retry exhaustion). */
        std::uint32_t strikes = 0;

        /** Tenant tripped the quarantine threshold: its in-flight
         * work drains, it never becomes ready again, and the
         * completion gates skip it. */
        bool quarantined = false;

        /** Reissues of the current (timed-out) DMA transfer. */
        std::uint32_t dmaRetries = 0;

        /** Pending DMA-timeout event (kNoEvent when disarmed). */
        EventId dmaTimeout = kNoEvent;

        /** Preemption-stall attribution (trace layer; passive).
         * A stall opens when the tenant is evicted and closes at
         * its next dispatch; the perpetrator is whoever took the
         * evicted-from FU in the meantime. */
        bool stallPending = false;
        Cycles stallStart = 0;
        WorkloadId stallPerp = kNoWorkload;
    };

    // ------------------------------------------------------------
    // Hooks for subclasses.
    // ------------------------------------------------------------

    /** Called once at run start, after all tenants begin DMA. */
    virtual void onStart() = 0;

    /** A tenant's current operator became ready (DMA done). */
    virtual void onTenantReady(Tenant &tenant) = 0;

    /** A tenant's operator completed on @p fu; the tenant has
     * already advanced to its next operator. */
    virtual void onOpComplete(Tenant &tenant, FunctionalUnit &fu) = 0;

    /** Subclass hook: register scheduler-specific statistics
     * (context table, timer preemptions, token counters, ...). */
    virtual void onRegisterStats(StatRegistry &registry)
    {
        (void)registry;
    }

    // ------------------------------------------------------------
    // Services for subclasses.
    // ------------------------------------------------------------

    /** All tenants. */
    std::vector<Tenant> &tenants() { return tenants_; }

    /** The current operator of a tenant. */
    const TensorOperator &currentOp(const Tenant &tenant) const;

    /**
     * Dispatch a tenant's current operator onto @p fu, charging
     * @p ctxPenalty overhead cycles up front. Handles prefetch of
     * the next operator's DMA and completion plumbing.
     */
    void dispatch(Tenant &tenant, FunctionalUnit &fu,
                  Cycles ctxPenalty);

    /**
     * Preempt the operator running on @p fu (§3.3). The tenant
     * returns to the ready set with its remaining compute; the next
     * dispatch on this FU pays the context-switch penalty.
     * @return the tenant that was preempted.
     */
    Tenant &preemptFu(FunctionalUnit &fu);

    /** Context-switch penalty for dispatching @p tenant on @p fu
     * right now (resume-of-preempted or switch-after-preemption). */
    Cycles ctxPenaltyFor(const Tenant &tenant,
                         const FunctionalUnit &fu) const;

    /** The per-FU-kind context-switch cost (§3.3 cost model). */
    Cycles contextSwitchCycles(FunctionalUnit::Kind kind) const;

    /** Engine RNG (deterministic per seed). */
    Rng &rng() { return rng_; }

    /** True once every tenant finished its measured requests. */
    bool allDone() const;

    /** Hardware under management. */
    NpuCore &core() { return core_; }

    /** Simulation kernel. */
    Simulator &sim() { return sim_; }

    /** DMA inflation factor for an operator (Fig. 24 spill model). */
    double dmaInflation(const TensorOperator &op) const;

    /** Tenant whose operator occupies @p fu, or nullptr. */
    Tenant *tenantOn(const FunctionalUnit &fu);

    /** True while inside the measured window (after warmup). */
    bool measuring() const { return measuring_; }

    /** Charge @p cycles of context-switch overhead to a tenant
     * (used by schedulers whose switch cost is not FU-attached). */
    void chargeCtxOverhead(Tenant &tenant, Cycles cycles);

    /** Count a task-level preemption that did not interrupt an
     * in-flight operator (PMT switching between operators). */
    void countPreemption(Tenant &tenant);

  private:
    /** Issue the next prefetch DMA if the window has room. */
    void pumpDma(Tenant &tenant);

    /** Start a prefetch transfer after fault arbitration (stall
     * delay and byte inflation already applied). */
    void issueDma(Tenant &tenant, Bytes bytes,
                  const FaultInjector::DmaDecision &decision);

    /** Hand the transfer to the HBM model, or arm the retry timeout
     * when the injector decided it hangs. */
    void startDmaTransfer(Tenant &tenant, Bytes bytes, bool hang);

    /** A hung transfer timed out: strike after maxDmaRetries, else
     * reissue with exponential backoff. */
    void onDmaTimeout(Tenant &tenant, Bytes bytes);

    /** Prefetch DMA completed: mark ready, notify subclass. */
    void onDmaDone(Tenant &tenant);

    /** Record a tenant-attributable fault; quarantine at the
     * configured threshold. */
    void strike(Tenant &tenant, const char *reason);

    /** Isolate a misbehaving tenant: cancel its DMA, drain its
     * in-flight operator, exclude it from the completion gates. */
    void quarantineTenant(Tenant &tenant, const std::string &why);

    /** Evaluate the warmup/stop gates over non-quarantined
     * tenants. */
    void checkProgressGates();

    /** Schedule the first watchdog tick. */
    void armWatchdog();

    /** Periodic liveness check: cycle budget and forward progress. */
    void onWatchdogTick();

    /** Gracefully end the run (not the process) with a reason; the
     * diagnostic bundle is written as run() unwinds. */
    void abortRun(const std::string &reason);

    /** Write diagnostics.json into resilience_.diagnosticDir. */
    void writeDiagnostics(const RunStats &stats) const;

    /** Set the Ready bit and notify once the current operator is
     * staged, the dispatch gap has elapsed, and (open loop) a
     * request has arrived. */
    void maybeBecomeReady(Tenant &tenant);

    /** Schedule the next Poisson arrival of an open-loop tenant. */
    void scheduleArrival(Tenant &tenant);

    /** Operator finished: account request wrap, advance, notify. */
    void onFuComplete(FunctionalUnit &fu, Tenant &tenant);

    /** Advance a tenant past its completed current operator. */
    void advancePastCurrentOp(Tenant &tenant);

    /** Zero every measured statistic (end of warmup). */
    void resetMeasurement();

    /** Collect the RunStats at the end of the measured window. */
    RunStats collectStats();

    /** Register hardware + engine statistics into stats_. */
    void registerStats();

    /** Install the default probe set into sampler_. */
    void registerDefaultProbes();

    /** Window-debt-adjusted busy-cycle sum (same arithmetic as
     * collectStats, exposed to the registry formulas). */
    Cycles windowBusyCycles(bool sa) const;

    Simulator &sim_;
    NpuCore &core_;
    std::vector<Tenant> tenants_;
    Rng rng_;

    OverlapTracker overlap_;
    LatencyRecorder latency_;

    /** Per-FU flag: last op on this unit ended in a preemption. */
    std::vector<bool> fu_last_preempted_;

    /** Per-FU: the tenant evicted by the last preemption on this
     * unit (attribution perpetrator lookup); kNoWorkload once the
     * unit has been re-dispatched. */
    std::vector<WorkloadId> fu_last_victim_;

    /** Compute an in-flight operator had already finished when the
     * measurement window opened; subtracted from the window's
     * busy-cycle accounting (the FU credits the whole operator at
     * completion). */
    struct WindowDebt
    {
        WorkloadId workload = kNoWorkload;
        Cycles cycles = 0;
        double flops = 0.0;
        bool isSa = false;
    };
    std::vector<WindowDebt> window_debts_;

    TimelineTracer *timeline_ = nullptr;
    StatRegistry *stats_ = nullptr;
    IntervalSampler *sampler_ = nullptr;
    RequestTracer *tracer_ = nullptr;
    AttributionCollector *attribution_ = nullptr;
    FlightRecorder *flight_ = nullptr;
    bool stats_registered_ = false;

    /** Engine seed (trace-ID derivation; mirrors rng_'s seed). */
    std::uint64_t seed_ = 1;

    ResilienceOptions resilience_{};
    std::unique_ptr<FaultInjector> injector_;
    bool aborted_ = false;
    std::string abort_reason_;
    Cycles run_start_ = 0;

    /** Retirement counter (DMA completions, operator completions,
     * preemptions) the watchdog differences between ticks. */
    std::uint64_t progress_marks_ = 0;
    std::uint64_t watchdog_last_marks_ = 0;

    std::uint64_t dma_retries_total_ = 0;
    std::uint64_t sa_replays_ = 0;

    /** Monotonic preemption count (never reset at the measurement
     * boundary — Delta probes need a monotonic reading). */
    std::uint64_t lifetime_preemptions_ = 0;

    std::uint64_t warmup_requests_ = 0;
    std::uint64_t stop_requests_ = 0;
    bool measuring_ = false;
    bool stopping_ = false;
    Cycles window_start_ = 0;

    /** FU pointer -> dense index for fu_last_preempted_. */
    std::size_t fuIndex(const FunctionalUnit &fu) const;
    std::vector<FunctionalUnit *> fu_index_;
};

} // namespace v10

#endif // V10_SCHED_ENGINE_H
