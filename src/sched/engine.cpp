#include "sched/engine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/json.h"
#include "common/log.h"
#include "common/result.h"
#include "common/string_util.h"
#include "trace/attribution.h"
#include "trace/flight_recorder.h"
#include "trace/request_tracer.h"
#include "trace/trace_context.h"

namespace v10 {

namespace {

/** Initial DMA retry timeout when the caller left it at 0. */
constexpr Cycles kDefaultDmaTimeout = 50'000;

/** Watchdog period when only a cycle budget was configured. */
constexpr Cycles kDefaultWatchdogInterval = 1'000'000;

} // namespace

Status
QuarantineLadder::check() const
{
    if (throttleStrikes == 0)
        return parseError("quarantine: throttle strikes must be >= 1",
                          "", 0, "throttleStrikes");
    if (isolateStrikes <= throttleStrikes)
        return parseError("quarantine: isolate strikes must exceed "
                          "throttle strikes",
                          "", 0, "isolateStrikes");
    if (evictStrikes <= isolateStrikes)
        return parseError("quarantine: evict strikes must exceed "
                          "isolate strikes",
                          "", 0, "evictStrikes");
    if (!(throttleFactor > 0.0) || throttleFactor > 1.0)
        return parseError("quarantine: throttle factor must be in "
                          "(0, 1]",
                          "", 0, "throttleFactor");
    if (recoveryEpochs == 0)
        return parseError("quarantine: recovery epochs must be >= 1",
                          "", 0, "recoveryEpochs");
    return Status::ok();
}

Status
SchedulerEngine::validateSpecs(const std::vector<TenantSpec> &tenants)
{
    if (tenants.empty())
        return parseError("SchedulerEngine: need at least one tenant");
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantSpec &spec = tenants[i];
        const std::string tenant = "tenant " + std::to_string(i);
        if (spec.workload == nullptr)
            return parseError(
                "SchedulerEngine: " + tenant + " has no workload");
        if (spec.workload->trace().ops.size() < 2)
            return parseError("SchedulerEngine: trace of " +
                                  spec.workload->label() +
                                  " too short",
                              "", 0, tenant);
        if (spec.priority <= 0.0)
            return parseError("SchedulerEngine: non-positive priority",
                              "", 0, tenant);
        if (spec.arrivalRps < 0.0)
            return parseError("SchedulerEngine: negative arrival rate",
                              "", 0, tenant);
    }
    return Status::ok();
}

SchedulerEngine::SchedulerEngine(Simulator &sim, NpuCore &core,
                                 std::vector<TenantSpec> tenants,
                                 std::uint64_t seed)
    : sim_(sim), core_(core), rng_(seed), overlap_(sim),
      latency_(static_cast<std::uint32_t>(tenants.size())),
      seed_(seed)
{
    validateSpecs(tenants).orDie();

    tenants_.reserve(tenants.size());
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantSpec &spec = tenants[i];
        Tenant t;
        t.wl = spec.workload;
        t.id = static_cast<WorkloadId>(i);
        t.priority = spec.priority;
        t.arrivalRps = spec.arrivalRps;
        tenants_.push_back(std::move(t));
    }

    // §3.6: host each tenant in its own HBM segment; deployment
    // fails when the device cannot hold the pool.
    for (auto &t : tenants_) {
        const Bytes footprint = t.wl->memFootprint();
        if (core_.hbmRegions().fits(footprint)) {
            core_.hbmRegions().allocate(t.wl->label(), footprint);
        } else if (core_.config().enforceHbmFit) {
            Status(parseError("SchedulerEngine: " + t.wl->label() +
                              " (" + formatBytes(footprint) +
                              ") does not fit the remaining HBM — " +
                              formatBytes(
                                  core_.hbmRegions().freeBytes()) +
                              " of " +
                              formatBytes(core_.config().hbmBytes) +
                              " free"))
                .orDie();
        } else {
            warn("HBM oversubscribed by ", t.wl->label(),
                 " (capacity check disabled)");
        }
    }

    for (auto &sa : core_.sas())
        fu_index_.push_back(sa.get());
    for (auto &vu : core_.vus())
        fu_index_.push_back(vu.get());
    fu_last_preempted_.assign(fu_index_.size(), false);
    fu_last_victim_.assign(fu_index_.size(), kNoWorkload);

    core_.observeAll(&overlap_);
}

SchedulerEngine::~SchedulerEngine()
{
    // Formulas registered by this engine capture pointers into the
    // engine and its core; settle them while both are still alive
    // (run() already froze on the normal path).
    if (stats_ != nullptr && !stats_->frozen())
        stats_->freeze();
    core_.observeAll(nullptr);
}

std::size_t
SchedulerEngine::fuIndex(const FunctionalUnit &fu) const
{
    for (std::size_t i = 0; i < fu_index_.size(); ++i) {
        if (fu_index_[i] == &fu)
            return i;
    }
    panic("SchedulerEngine: unknown functional unit ", fu.name());
}

const TensorOperator &
SchedulerEngine::currentOp(const Tenant &tenant) const
{
    return tenant.wl->trace().ops[tenant.opIndex];
}

double
SchedulerEngine::dmaInflation(const TensorOperator &op) const
{
    return core_.vmem().dmaInflation(op.workingSetBytes);
}

Cycles
SchedulerEngine::contextSwitchCycles(FunctionalUnit::Kind kind) const
{
    if (kind == FunctionalUnit::Kind::SA)
        return core_.config().saContextSwitchCycles();
    return core_.config().vuContextSwitchCycles();
}

Cycles
SchedulerEngine::ctxPenaltyFor(const Tenant &tenant,
                               const FunctionalUnit &fu) const
{
    if (tenant.opPreempted || fu_last_preempted_[fuIndex(fu)])
        return contextSwitchCycles(fu.kind());
    return 0;
}

SchedulerEngine::Tenant *
SchedulerEngine::tenantOn(const FunctionalUnit &fu)
{
    for (auto &t : tenants_) {
        if (t.running && t.fu == &fu)
            return &t;
    }
    return nullptr;
}

void
SchedulerEngine::setResilience(const ResilienceOptions &options)
{
    resilience_ = options;
    injector_.reset();
    if (options.faults != nullptr && !options.faults->empty()) {
        const std::uint64_t seed = options.faultSeed != 0
                                       ? options.faultSeed
                                       : options.faults->seed();
        injector_ =
            std::make_unique<FaultInjector>(*options.faults, seed);
    }
}

void
SchedulerEngine::setAttribution(AttributionCollector *attribution)
{
    attribution_ = attribution;
    core_.hbm().setContentionObserver(attribution);
    if (attribution == nullptr)
        return;
    for (const auto &t : tenants_) {
        if (attribution->tenantCount() <= t.id)
            (void)attribution->addTenant(t.id, t.wl->label());
    }
}

void
SchedulerEngine::pumpDma(Tenant &tenant)
{
    if (tenant.quarantined)
        return;
    if (tenant.dmaInFlight ||
        tenant.dmaStaged >=
            tenant.execCursor + core_.config().dmaPrefetchDepth)
        return;
    const std::size_t trace_pos = static_cast<std::size_t>(
        tenant.dmaStaged % tenant.wl->trace().ops.size());
    const TensorOperator &op = tenant.wl->trace().ops[trace_pos];
    const auto bytes = static_cast<Bytes>(
        static_cast<double>(op.dmaBytes) * dmaInflation(op));
    tenant.dmaInFlight = true;
    FaultInjector::DmaDecision decision;
    if (injector_)
        decision = injector_->onDmaStart(tenant.id, sim_.now());
    issueDma(tenant, bytes, decision);
}

void
SchedulerEngine::issueDma(Tenant &tenant, Bytes bytes,
                          const FaultInjector::DmaDecision &decision)
{
    const auto inflated = static_cast<Bytes>(
        static_cast<double>(bytes) * decision.inflate);
    if (decision.stallCycles > 0) {
        const bool hang = decision.hang;
        // Scheduler-plane events are explicitly control-domain: they
        // read and mutate shared scheduling state, which is exactly
        // what the domain-partitioned engine must serialize.
        sim_.after(SimDomain::Control, decision.stallCycles,
                   [this, &tenant, inflated, hang] {
                       if (!tenant.quarantined)
                           startDmaTransfer(tenant, inflated, hang);
                   });
        return;
    }
    startDmaTransfer(tenant, inflated, decision.hang);
}

void
SchedulerEngine::startDmaTransfer(Tenant &tenant, Bytes bytes,
                                  bool hang)
{
    if (hang) {
        // The transfer wedges in the HBM subsystem; no completion
        // will arrive. Arm the retry timeout with exponential
        // backoff so the run keeps making forward progress.
        Cycles period = resilience_.dmaTimeoutCycles > 0
                            ? resilience_.dmaTimeoutCycles
                            : kDefaultDmaTimeout;
        period <<= std::min<std::uint32_t>(tenant.dmaRetries, 16);
        tenant.dmaTimeout = sim_.after(
            SimDomain::Control, period,
            [this, &tenant, bytes] { onDmaTimeout(tenant, bytes); });
        return;
    }
    tenant.dma = core_.hbm().startTransfer(
        bytes, tenant.id, [this, &tenant] {
            tenant.dma = 0;
            tenant.dmaRetries = 0;
            onDmaDone(tenant);
        });
}

void
SchedulerEngine::onDmaTimeout(Tenant &tenant, Bytes bytes)
{
    tenant.dmaTimeout = kNoEvent;
    if (tenant.quarantined || stopping_)
        return;
    ++tenant.dmaRetries;
    ++dma_retries_total_;
    if (flight_ != nullptr)
        flight_->record(sim_.now(), "dma-retry", tenant.wl->label(),
                        0,
                        "attempt " +
                            std::to_string(tenant.dmaRetries));
    injector_->record("dma-retry", tenant.id, sim_.now(),
                      "timed-out transfer reissued (attempt " +
                          std::to_string(tenant.dmaRetries) + ")");
    if (tenant.dmaRetries > resilience_.maxDmaRetries) {
        strike(tenant, "DMA retries exhausted");
        // Force-complete so the operator pipeline keeps moving even
        // if the quarantine threshold has not tripped yet.
        tenant.dmaRetries = 0;
        onDmaDone(tenant);
        return;
    }
    // Reissue; the retry draws fresh fault decisions and may stall,
    // droop, or hang again.
    const FaultInjector::DmaDecision decision =
        injector_->onDmaStart(tenant.id, sim_.now());
    issueDma(tenant, bytes, decision);
}

void
SchedulerEngine::onDmaDone(Tenant &tenant)
{
    ++progress_marks_;
    tenant.dmaInFlight = false;
    ++tenant.dmaStaged;
    pumpDma(tenant);
    maybeBecomeReady(tenant);
}

void
SchedulerEngine::strike(Tenant &tenant, const char *reason)
{
    ++tenant.strikes;
    if (injector_)
        injector_->record("strike", tenant.id, sim_.now(), reason);
    if (flight_ != nullptr)
        flight_->record(sim_.now(), "fault", tenant.wl->label(), 0,
                        reason);
    if (resilience_.quarantineThreshold == 0 || tenant.quarantined)
        return;
    if (tenant.strikes >= resilience_.quarantineThreshold)
        quarantineTenant(tenant, reason);
}

void
SchedulerEngine::quarantineTenant(Tenant &tenant,
                                  const std::string &why)
{
    tenant.quarantined = true;
    tenant.ready = false;
    if (tenant.dmaTimeout != kNoEvent) {
        sim_.cancel(tenant.dmaTimeout);
        tenant.dmaTimeout = kNoEvent;
    }
    if (tenant.dma != 0) {
        core_.hbm().cancel(tenant.dma);
        tenant.dma = 0;
    }
    tenant.dmaInFlight = false;
    tenant.arrivalQueue.clear();
    warn(name(), ": tenant ", tenant.wl->label(),
         " quarantined after ", tenant.strikes, " faults (", why,
         ")");
    if (injector_)
        injector_->record("quarantine", tenant.id, sim_.now(), why);
    if (flight_ != nullptr)
        flight_->record(sim_.now(), "quarantine", tenant.wl->label(),
                        0, why);

    bool all = true;
    for (const auto &t : tenants_)
        all = all && t.quarantined;
    if (all) {
        abortRun("every tenant quarantined");
        return;
    }
    // The survivors may already have met the warmup/stop gates that
    // this tenant was holding open.
    checkProgressGates();
}

void
SchedulerEngine::scheduleArrival(Tenant &tenant)
{
    if (tenant.arrivalRps <= 0.0 || stopping_ || tenant.quarantined)
        return;
    const double mean_cycles =
        core_.config().freqGHz * 1e9 / tenant.arrivalRps;
    const Cycles delta = std::max<Cycles>(
        1, static_cast<Cycles>(rng_.exponential(mean_cycles)));
    sim_.after(SimDomain::Control, delta, [this, &tenant] {
        if (tenant.quarantined)
            return;
        tenant.arrivalQueue.push_back(sim_.now());
        if (injector_) {
            const std::uint64_t burst =
                injector_->floodBurst(tenant.id, sim_.now());
            if (burst > 0) {
                for (std::uint64_t i = 0; i < burst; ++i)
                    tenant.arrivalQueue.push_back(sim_.now());
                strike(tenant, "trace flood");
                if (tenant.quarantined)
                    return;
            }
        }
        scheduleArrival(tenant);
        maybeBecomeReady(tenant);
    });
}

void
SchedulerEngine::maybeBecomeReady(Tenant &tenant)
{
    if (tenant.running || tenant.ready || tenant.quarantined)
        return;
    if (tenant.dmaStaged <= tenant.execCursor)
        return; // still waiting on the prefetch DMA
    // Open loop: a fresh request may only start once it has arrived.
    if (tenant.arrivalRps > 0.0 && tenant.opIndex == 0 &&
        !tenant.opPreempted && tenant.arrivalQueue.empty())
        return;
    const Cycles now = sim_.now();
    if (now < tenant.gapUntil) {
        // Dispatch gap still draining; wake up when it ends.
        if (!tenant.gapEventPending) {
            tenant.gapEventPending = true;
            sim_.at(SimDomain::Control, tenant.gapUntil,
                    [this, &tenant] {
                        tenant.gapEventPending = false;
                        maybeBecomeReady(tenant);
                    });
        }
        return;
    }
    tenant.ready = true;
    onTenantReady(tenant);
}

void
SchedulerEngine::dispatch(Tenant &tenant, FunctionalUnit &fu,
                          Cycles ctxPenalty)
{
    if (tenant.running)
        panic("dispatch: tenant ", tenant.wl->label(),
              " already running");
    if (fu.busy())
        panic("dispatch: ", fu.name(), " is busy");
    const TensorOperator &op = currentOp(tenant);
    const bool kind_matches =
        (op.kind == OpKind::SA) ==
        (fu.kind() == FunctionalUnit::Kind::SA);
    if (!kind_matches)
        panic("dispatch: op kind mismatch on ", fu.name());

    Cycles compute =
        tenant.opPreempted ? tenant.opRemaining : op.computeCycles;
    if (injector_ && !tenant.opPreempted) {
        // Runaway operator: the tenant burns a multiple of its
        // declared compute. Tenant-attributable -> strike.
        const double factor =
            injector_->runawayFactor(tenant.id, sim_.now());
        if (factor > 1.0) {
            compute = std::max<Cycles>(
                1, static_cast<Cycles>(
                       static_cast<double>(compute) * factor));
            strike(tenant, "runaway operator");
        }
    }

    tenant.running = true;
    tenant.ready = false;
    tenant.fu = &fu;
    tenant.lastDispatch = sim_.now();
    if (measuring_)
        tenant.ctxOverheadCycles += ctxPenalty;

    const std::size_t fi = fuIndex(fu);
    fu_last_preempted_[fi] = false;

    if (attribution_ != nullptr) {
        // The tenant taking an evicted-from FU is the perpetrator of
        // the victim's stall; a victim's stall closes at its own next
        // dispatch (on any unit). Purely passive bookkeeping.
        const WorkloadId victim = fu_last_victim_[fi];
        if (victim != kNoWorkload && victim != tenant.id &&
            tenants_[victim].stallPending)
            tenants_[victim].stallPerp = tenant.id;
        fu_last_victim_[fi] = kNoWorkload;
        if (tenant.stallPending) {
            attribution_->chargePreemptStall(
                tenant.id, tenant.stallPerp,
                static_cast<double>(sim_.now() - tenant.stallStart));
            tenant.stallPending = false;
            tenant.stallPerp = kNoWorkload;
        }
        if (ctxPenalty > 0)
            attribution_->chargeCtxOverhead(
                tenant.id, static_cast<double>(ctxPenalty));
    }

    if (timeline_)
        timeline_->opBegin(sim_.now(), fu.name(),
                           tenant.wl->label(), op.name, ctxPenalty);

    fu.begin(tenant.id, op.id, compute, ctxPenalty,
             [this, &tenant](FunctionalUnit &unit) {
                 onFuComplete(unit, tenant);
             });
}

SchedulerEngine::Tenant &
SchedulerEngine::preemptFu(FunctionalUnit &fu)
{
    Tenant *tenant = tenantOn(fu);
    if (tenant == nullptr)
        panic("preemptFu: nothing running on ", fu.name());

    if (timeline_)
        timeline_->opEnd(sim_.now(), fu.name(), true);

    const Cycles remaining = fu.preempt();
    ++progress_marks_;
    tenant->activeCycles += sim_.now() - tenant->lastDispatch;
    tenant->opRemaining = std::max<Cycles>(remaining, 1);
    if (injector_ && fu.kind() == FunctionalUnit::Kind::SA &&
        injector_->corruptSaContext(tenant->id, sim_.now())) {
        // The context save is unusable: replay the operator from
        // scratch. The tenant is a victim here — no strike.
        tenant->opRemaining = currentOp(*tenant).computeCycles;
        ++sa_replays_;
    }
    tenant->opPreempted = true;
    tenant->running = false;
    tenant->fu = nullptr;
    tenant->ready = true; // operator is staged; re-dispatchable
    ++lifetime_preemptions_;
    if (measuring_)
        ++tenant->preemptions;
    const std::size_t fi = fuIndex(fu);
    fu_last_preempted_[fi] = true;
    if (attribution_ != nullptr) {
        tenant->stallPending = true;
        tenant->stallStart = sim_.now();
        tenant->stallPerp = kNoWorkload;
        fu_last_victim_[fi] = tenant->id;
    }
    if (flight_ != nullptr)
        flight_->record(sim_.now(), "preempt", tenant->wl->label(),
                        0, fu.name());
    return *tenant;
}

void
SchedulerEngine::onFuComplete(FunctionalUnit &fu, Tenant &tenant)
{
    if (timeline_)
        timeline_->opEnd(sim_.now(), fu.name(), false);
    ++progress_marks_;
    tenant.activeCycles += sim_.now() - tenant.lastDispatch;
    tenant.running = false;
    tenant.fu = nullptr;
    tenant.opPreempted = false;
    tenant.opRemaining = 0;
    if (measuring_)
        tenant.doneFlops += currentOp(tenant).flops;

    if (tenant.quarantined) {
        // Drain semantics: the in-flight operator finishes, the
        // tenant does not advance, and the freed unit goes back to
        // the healthy tenants via the subclass hook.
        onOpComplete(tenant, fu);
        return;
    }
    advancePastCurrentOp(tenant);
    onOpComplete(tenant, fu);
}

void
SchedulerEngine::advancePastCurrentOp(Tenant &tenant)
{
    const std::size_t trace_len = tenant.wl->trace().ops.size();
    // The completed operator's dispatch gap gates the next one.
    tenant.gapUntil =
        sim_.now() + currentOp(tenant).gapCycles;
    ++tenant.execCursor;
    const std::size_t next =
        static_cast<std::size_t>(tenant.execCursor % trace_len);
    if (next == 0) {
        // Request boundary: closed-loop replay, or (open loop) the
        // completion of a queued arrival.
        ++tenant.requestsDone;
        Cycles request_start = tenant.requestStart;
        if (tenant.arrivalRps > 0.0) {
            if (tenant.arrivalQueue.empty())
                panic("advancePastCurrentOp: open-loop request "
                      "completed without an arrival");
            request_start = tenant.arrivalQueue.front();
            tenant.arrivalQueue.pop_front();
            // Warmup reset clamps latency to the window start.
            request_start = std::max(request_start, window_start_);
        }
        if (measuring_) {
            ++tenant.windowRequests;
            if (tenant.skipNextLatency)
                tenant.skipNextLatency = false;
            else
                latency_.record(tenant.id,
                                sim_.now() - request_start);
        }
        if (tracer_ != nullptr || flight_ != nullptr) {
            // Passive request span: the ID is a pure function of
            // (engine seed, tenant, request sequence), so traces are
            // reproducible per seed. Service starts when the previous
            // request finished (or at arrival, whichever is later).
            const std::uint64_t seq = tenant.requestsDone - 1;
            const std::uint64_t traceId =
                traceIdFor(seed_, tenant.id, seq);
            if (tracer_ != nullptr &&
                tracer_->sampler().sampled(traceId)) {
                const double cyclesPerUs =
                    core_.config().freqGHz * 1e3;
                RequestSpan span;
                span.ctx = TraceContext{traceId, tenant.id, seq};
                span.tenant = tenant.wl->label();
                span.arrivalUs =
                    static_cast<double>(request_start) / cyclesPerUs;
                span.startUs = std::max(
                    span.arrivalUs,
                    static_cast<double>(tenant.requestStart) /
                        cyclesPerUs);
                span.endUs =
                    static_cast<double>(sim_.now()) / cyclesPerUs;
                span.soloUs = span.serviceUs();
                tracer_->add(std::move(span));
            }
            if (flight_ != nullptr)
                flight_->record(sim_.now(), "request",
                                tenant.wl->label(), traceId,
                                "request " + std::to_string(seq) +
                                    " completed");
        }
        checkProgressGates();
        tenant.requestStart = sim_.now();
    }
    tenant.opIndex = next;
    tenant.ready = false;
    pumpDma(tenant);
    maybeBecomeReady(tenant);
}

void
SchedulerEngine::resetMeasurement()
{
    measuring_ = true;
    window_start_ = sim_.now();
    core_.resetStats();
    core_.hbm().markWindow();
    overlap_.startWindow();
    latency_.reset();

    // In-flight operators will credit their full compute at
    // completion; remember the pre-window part so the window's
    // busy-cycle accounting stays exact.
    window_debts_.clear();
    for (auto *fu : fu_index_) {
        if (!fu->busy())
            continue;
        const Cycles done = fu->inflightComputeDone();
        if (done == 0)
            continue;
        WindowDebt debt;
        debt.workload = fu->workload();
        debt.cycles = done;
        debt.isSa = fu->kind() == FunctionalUnit::Kind::SA;
        const Tenant *t = tenantOn(*fu);
        if (t != nullptr && fu->inflightComputeTotal() > 0)
            debt.flops =
                currentOp(*t).flops * static_cast<double>(done) /
                static_cast<double>(fu->inflightComputeTotal());
        window_debts_.push_back(debt);
    }

    for (auto &t : tenants_) {
        t.preemptions = 0;
        t.ctxOverheadCycles = 0;
        t.doneFlops = 0.0;
        t.windowRequests = 0;
        // A request in progress spans the boundary; its truncated
        // latency would bias the samples, so it is not recorded.
        if (t.requestStart < window_start_) {
            t.skipNextLatency = true;
            t.requestStart = window_start_;
        }
    }
}

void
SchedulerEngine::checkProgressGates()
{
    // Quarantined tenants no longer complete requests; counting them
    // would hold the gates open forever (the survivors' run must end
    // normally). quarantineTenant() re-evaluates the gates, so a
    // tenant leaving the pool cannot strand a finished run.
    if (!measuring_) {
        bool all = true;
        for (const auto &t : tenants_)
            all = all &&
                  (t.quarantined ||
                   t.requestsDone >= warmup_requests_);
        if (all)
            resetMeasurement();
        return;
    }
    if (stopping_)
        return;
    bool all = true;
    for (const auto &t : tenants_)
        all = all && (t.quarantined ||
                      t.windowRequests >= stop_requests_);
    if (all)
        stopping_ = true;
}

bool
SchedulerEngine::allDone() const
{
    return stopping_;
}

void
SchedulerEngine::armWatchdog()
{
    const Cycles interval = resilience_.watchdogInterval > 0
                                ? resilience_.watchdogInterval
                                : kDefaultWatchdogInterval;
    watchdog_last_marks_ = progress_marks_;
    sim_.after(SimDomain::Control, interval,
               [this] { onWatchdogTick(); });
}

void
SchedulerEngine::onWatchdogTick()
{
    if (stopping_ || aborted_)
        return;
    if (resilience_.cycleBudget > 0 &&
        sim_.now() - run_start_ >= resilience_.cycleBudget) {
        abortRun("cycle budget exceeded (" +
                 std::to_string(sim_.now() - run_start_) + " of " +
                 std::to_string(resilience_.cycleBudget) +
                 " cycles)");
        return;
    }
    bool inflight = false;
    for (auto *fu : fu_index_)
        inflight = inflight || fu->busy();
    for (const auto &t : tenants_)
        inflight =
            inflight || t.dmaInFlight || t.gapEventPending;
    if (progress_marks_ == watchdog_last_marks_ && !inflight) {
        abortRun("no forward progress in the last watchdog period "
                 "(no DMA or operator retired, nothing in flight)");
        return;
    }
    armWatchdog();
}

void
SchedulerEngine::abortRun(const std::string &reason)
{
    if (aborted_)
        return;
    aborted_ = true;
    abort_reason_ = reason;
    stopping_ = true;
    warn(name(), ": run aborted — ", reason);
    if (injector_)
        injector_->record("abort", kNoWorkload, sim_.now(), reason);
    if (flight_ != nullptr)
        flight_->record(sim_.now(), "abort", "", 0, reason);
}

void
SchedulerEngine::chargeCtxOverhead(Tenant &tenant, Cycles cycles)
{
    if (measuring_)
        tenant.ctxOverheadCycles += cycles;
}

void
SchedulerEngine::countPreemption(Tenant &tenant)
{
    ++lifetime_preemptions_;
    if (measuring_)
        ++tenant.preemptions;
}

Cycles
SchedulerEngine::windowBusyCycles(bool sa) const
{
    Cycles busy = 0;
    if (sa) {
        for (auto &unit : core_.sas())
            busy += unit->busyComputeCycles();
    } else {
        for (auto &unit : core_.vus())
            busy += unit->busyComputeCycles();
    }
    for (const WindowDebt &debt : window_debts_) {
        if (debt.isSa == sa)
            busy -= std::min(busy, debt.cycles);
    }
    return busy;
}

void
SchedulerEngine::registerStats()
{
    if (stats_ == nullptr || stats_registered_)
        return;
    stats_registered_ = true;
    StatRegistry &reg = *stats_;

    for (auto &sa : core_.sas())
        sa->registerStats(reg, "core");
    for (auto &vu : core_.vus())
        vu->registerStats(reg, "core");
    core_.hbm().registerStats(reg, "core.hbm");
    core_.vmem().registerStats(reg, "core.vmem");

    // Engine-level aggregates mirror collectStats() exactly (same
    // window-debt adjustment), so the frozen registry agrees with
    // the RunStats the run returns.
    reg.addFormula(
        "sched.sa_busy_cycles",
        [this] {
            return static_cast<double>(windowBusyCycles(true));
        },
        "SA useful compute cycles in the measured window");
    reg.addFormula(
        "sched.vu_busy_cycles",
        [this] {
            return static_cast<double>(windowBusyCycles(false));
        },
        "VU useful compute cycles in the measured window");
    reg.addFormula(
        "sched.window_cycles",
        [this] {
            return static_cast<double>(sim_.now() - window_start_);
        },
        "measured window length");
    reg.addFormula(
        "sched.preemptions",
        [this] {
            std::uint64_t n = 0;
            for (const auto &t : tenants_)
                n += t.preemptions;
            return static_cast<double>(n);
        },
        "preemptions in the measured window");
    reg.addFormula(
        "sched.ctx_overhead_cycles",
        [this] {
            Cycles n = 0;
            for (const auto &t : tenants_)
                n += t.ctxOverheadCycles;
            return static_cast<double>(n);
        },
        "context-switch cycles charged in the measured window");
    reg.addFormula(
        "sched.requests",
        [this] {
            std::uint64_t n = 0;
            for (const auto &t : tenants_)
                n += t.windowRequests;
            return static_cast<double>(n);
        },
        "requests completed in the measured window");
    reg.addFormula(
        "sched.faults_injected",
        [this] {
            return injector_ ? static_cast<double>(
                                   injector_->injectedCount())
                             : 0.0;
        },
        "faults injected by the fault plan");
    reg.addFormula(
        "sched.dma_retries",
        [this] { return static_cast<double>(dma_retries_total_); },
        "timed-out DMA transfers reissued");
    reg.addFormula(
        "sched.sa_replays",
        [this] { return static_cast<double>(sa_replays_); },
        "operators replayed after context-save corruption");
    reg.addFormula(
        "sched.quarantined_tenants",
        [this] {
            std::uint64_t n = 0;
            for (const auto &t : tenants_)
                n += t.quarantined ? 1 : 0;
            return static_cast<double>(n);
        },
        "tenants quarantined by the degradation policy");

    for (const Tenant &tenant : tenants_) {
        const Tenant *t = &tenant;
        const std::string base =
            "sched.tenant" + std::to_string(t->id);
        reg.addFormula(
            base + ".requests",
            [t] { return static_cast<double>(t->windowRequests); },
            "measured requests of " + t->wl->label());
        reg.addFormula(
            base + ".preemptions",
            [t] { return static_cast<double>(t->preemptions); },
            "measured preemptions of " + t->wl->label());
        reg.addFormula(
            base + ".ctx_overhead_cycles",
            [t] { return static_cast<double>(t->ctxOverheadCycles); },
            "context-switch cycles of " + t->wl->label());
        reg.addFormula(
            base + ".active_cycles",
            [t] { return static_cast<double>(t->activeCycles); },
            "FU occupancy cycles of " + t->wl->label());
        reg.addFormula(
            base + ".fault_strikes",
            [t] { return static_cast<double>(t->strikes); },
            "tenant-attributable faults of " + t->wl->label());
    }

    if (attribution_ != nullptr)
        attribution_->registerStats(reg);

    onRegisterStats(reg);
}

void
SchedulerEngine::registerDefaultProbes()
{
    if (sampler_ == nullptr || sampler_->probeCount() > 0)
        return;
    const double num_sa = core_.config().numSa;
    const double num_vu = core_.config().numVu;
    // Rate probes read monotonic live accumulators; the sampler
    // differences them per interval, yielding utilizations in [0,1].
    sampler_->addProbe("sa_util", IntervalSampler::Mode::Rate,
                       [this, num_sa] {
                           Cycles busy = 0;
                           for (auto &sa : core_.sas())
                               busy += sa->liveBusyComputeCycles();
                           return static_cast<double>(busy) / num_sa;
                       });
    sampler_->addProbe("vu_util", IntervalSampler::Mode::Rate,
                       [this, num_vu] {
                           Cycles busy = 0;
                           for (auto &vu : core_.vus())
                               busy += vu->liveBusyComputeCycles();
                           return static_cast<double>(busy) / num_vu;
                       });
    // Read-only by contract: bytesMoved() without advance(); bytes
    // of still-flowing streams land at the next membership change.
    sampler_->addProbe("hbm_util", IntervalSampler::Mode::Rate,
                       [this] {
                           return core_.hbm().bytesMoved() /
                                  core_.hbm().peakBytesPerCycle();
                       });
    sampler_->addProbe("ready_tenants", IntervalSampler::Mode::Level,
                       [this] {
                           std::size_t n = 0;
                           for (const auto &t : tenants_)
                               n += t.ready;
                           return static_cast<double>(n);
                       });
    sampler_->addProbe("running_tenants",
                       IntervalSampler::Mode::Level, [this] {
                           std::size_t n = 0;
                           for (const auto &t : tenants_)
                               n += t.running;
                           return static_cast<double>(n);
                       });
    sampler_->addProbe("preemptions", IntervalSampler::Mode::Delta,
                       [this] {
                           return static_cast<double>(
                               lifetime_preemptions_);
                       });
}

RunStats
SchedulerEngine::run(std::uint64_t targetRequests,
                     std::uint64_t warmupRequests)
{
    if (targetRequests == 0)
        Status(parseError(
                   "SchedulerEngine::run: need targetRequests > 0"))
            .orDie();
    warmup_requests_ = warmupRequests;
    stop_requests_ = targetRequests;
    stopping_ = false;
    measuring_ = false;
    aborted_ = false;
    abort_reason_.clear();
    run_start_ = sim_.now();
    window_start_ = sim_.now();

    for (auto &t : tenants_) {
        t.arrivalCycle = sim_.now();
        t.requestStart = sim_.now();
        pumpDma(t);
        scheduleArrival(t);
    }
    if (warmup_requests_ == 0)
        resetMeasurement();

    registerStats();
    if (sampler_ != nullptr) {
        registerDefaultProbes();
        sampler_->start(sim_);
    }

    onStart();
    if (resilience_.watchdogInterval > 0 ||
        resilience_.cycleBudget > 0)
        armWatchdog();

    // Simulator::run returns Cycles, not a Status; the name merely
    // collides with Result-returning run() APIs collected repo-wide.
    // v10lint: allow(error-discarded-result)
    sim_.run([this] { return stopping_; });

    if (!stopping_) {
        if (resilience_.enabled())
            // Degradation on: a wedged run aborts gracefully with a
            // diagnosable RunStats instead of killing the process.
            abortRun("event queue drained before every tenant "
                     "finished — simulation wedged");
        else
            panic("SchedulerEngine::run: event queue drained before "
                  "all tenants finished — scheduler deadlock");
    }

    // Flush in-flight operators so their partial compute lands in
    // the per-FU accumulators (not counted as preemptions).
    for (auto *fu : fu_index_) {
        if (fu->busy()) {
            Tenant *t = tenantOn(*fu);
            fu->preempt();
            if (t != nullptr) {
                t->activeCycles += sim_.now() - t->lastDispatch;
                t->running = false;
                t->fu = nullptr;
            }
        }
    }
    overlap_.finish();
    if (timeline_)
        timeline_->finish(sim_.now());
    if (sampler_ != nullptr)
        sampler_->stop();
    if (attribution_ != nullptr) {
        // Close stalls still open at run end so the attribution
        // matrices account for every observed stall cycle.
        for (auto &t : tenants_) {
            if (!t.stallPending)
                continue;
            attribution_->chargePreemptStall(
                t.id, t.stallPerp,
                static_cast<double>(sim_.now() - t.stallStart));
            t.stallPending = false;
            t.stallPerp = kNoWorkload;
        }
    }

    RunStats stats = collectStats();
    if (stats_ != nullptr) {
        // Settle every live formula now, while the engine and core
        // are guaranteed alive; the registry then outlives the run.
        stats_->freeze();
        stats.registrySnapshot = stats_->snapshot();
    }
    if (aborted_ && !resilience_.diagnosticDir.empty())
        writeDiagnostics(stats);
    return stats;
}

void
SchedulerEngine::writeDiagnostics(const RunStats &stats) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(resilience_.diagnosticDir, ec);
    if (ec) {
        warn("cannot create diagnostic dir '",
             resilience_.diagnosticDir, "': ", ec.message());
        return;
    }
    const fs::path path =
        fs::path(resilience_.diagnosticDir) / "diagnostics.json";
    std::ofstream os(path);
    if (!os) {
        warn("cannot open diagnostic bundle '", path.string(), "'");
        return;
    }
    JsonWriter w(os);
    w.beginObject();
    w.kv("scheduler", name());
    w.kv("reason", abort_reason_);
    w.kv("cycle", sim_.now());
    w.kv("events_run", sim_.eventsRun());
    w.kv("faults_injected",
         injector_ ? injector_->injectedCount()
                   : std::uint64_t{0});
    w.kv("dma_retries", dma_retries_total_);
    w.kv("sa_replays", sa_replays_);
    w.key("tenants");
    w.beginArray();
    for (const auto &t : tenants_) {
        w.beginObject();
        w.kv("label", t.wl->label());
        w.kv("requests_done", t.requestsDone);
        w.kv("window_requests", t.windowRequests);
        w.kv("exec_cursor", t.execCursor);
        w.kv("op_index", static_cast<std::uint64_t>(t.opIndex));
        w.kv("ready", t.ready);
        w.kv("running", t.running);
        w.kv("dma_in_flight", t.dmaInFlight);
        w.kv("quarantined", t.quarantined);
        w.kv("strikes", static_cast<std::uint64_t>(t.strikes));
        w.endObject();
    }
    w.endArray();
    w.key("fault_log");
    if (injector_) {
        injector_->writeLogJson(w);
    } else {
        w.beginArray();
        w.endArray();
    }
    // The flight recorder's last-K event ring: what happened right
    // before the abort, without re-running the scenario.
    w.key("flight_recorder");
    if (flight_ != nullptr)
        flight_->writeJson(w);
    else
        w.valueNull();
    // The frozen registry snapshot: every hardware and scheduler
    // statistic at abort time (the observability layer's view).
    w.key("registry");
    w.beginObject();
    for (const auto &[stat_path, value] : stats.registrySnapshot)
        w.kv(stat_path, value);
    w.endObject();
    w.endObject();
    os << '\n';
    warn("diagnostic bundle written to ", path.string());
}

RunStats
SchedulerEngine::collectStats()
{
    const NpuConfig &cfg = core_.config();
    RunStats stats;
    stats.windowCycles = sim_.now() - window_start_;
    stats.windowSeconds = cfg.cyclesToSeconds(stats.windowCycles);
    stats.aborted = aborted_;
    stats.abortReason = abort_reason_;
    stats.faultsInjected =
        injector_ ? injector_->injectedCount() : 0;
    stats.dmaRetries = dma_retries_total_;
    stats.saReplays = sa_replays_;
    for (const auto &t : tenants_)
        stats.quarantinedTenants += t.quarantined ? 1 : 0;
    const auto window = static_cast<double>(stats.windowCycles);
    if (stats.windowCycles == 0)
        return stats;

    Cycles sa_busy = 0;
    Cycles vu_busy = 0;
    for (auto &sa : core_.sas())
        sa_busy += sa->busyComputeCycles();
    for (auto &vu : core_.vus())
        vu_busy += vu->busyComputeCycles();
    // Settle the pre-window compute of operators that straddled the
    // measurement boundary (credited in full at completion).
    double flops_debt_total = 0.0;
    for (const WindowDebt &debt : window_debts_) {
        Cycles &bucket = debt.isSa ? sa_busy : vu_busy;
        bucket -= std::min(bucket, debt.cycles);
        flops_debt_total += debt.flops;
    }
    stats.saUtil =
        static_cast<double>(sa_busy) / (window * cfg.numSa);
    stats.vuUtil =
        static_cast<double>(vu_busy) / (window * cfg.numVu);
    stats.combinedUtil = (static_cast<double>(sa_busy) +
                          static_cast<double>(vu_busy)) /
                         (window * (cfg.numSa + cfg.numVu));
    stats.hbmUtil = core_.hbm().utilization(window_start_);

    stats.overlapBothFrac =
        overlap_.bucketFrac(OverlapTracker::Bucket::Both);
    stats.saOnlyFrac =
        overlap_.bucketFrac(OverlapTracker::Bucket::SaOnly);
    stats.vuOnlyFrac =
        overlap_.bucketFrac(OverlapTracker::Bucket::VuOnly);
    stats.idleFrac =
        overlap_.bucketFrac(OverlapTracker::Bucket::Idle);

    double total_flops = 0.0;
    for (auto &t : tenants_) {
        WorkloadRunStats ws;
        ws.label = t.wl->label();
        ws.requests = t.windowRequests;
        ws.avgLatencyUs = cfg.cyclesToUs(
            static_cast<Cycles>(latency_.meanCycles(t.id)));
        ws.p95LatencyUs = cfg.cyclesToUs(
            static_cast<Cycles>(latency_.p95Cycles(t.id)));
        ws.requestsPerSec =
            static_cast<double>(ws.requests) / stats.windowSeconds;
        for (auto &sa : core_.sas())
            ws.saComputeCycles += sa->busyComputeFor(t.id);
        for (auto &vu : core_.vus())
            ws.vuComputeCycles += vu->busyComputeFor(t.id);
        for (const WindowDebt &debt : window_debts_) {
            if (debt.workload != t.id)
                continue;
            Cycles &bucket = debt.isSa ? ws.saComputeCycles
                                       : ws.vuComputeCycles;
            bucket -= std::min(bucket, debt.cycles);
        }
        ws.saUtil = static_cast<double>(ws.saComputeCycles) /
                    (window * cfg.numSa);
        ws.vuUtil = static_cast<double>(ws.vuComputeCycles) /
                    (window * cfg.numVu);
        ws.overheadCycles = t.ctxOverheadCycles;
        ws.preemptions = t.preemptions;
        ws.quarantined = t.quarantined;
        ws.faultStrikes = t.strikes;
        ws.ctxOverheadFrac =
            ws.requests == 0
                ? 0.0
                : static_cast<double>(t.ctxOverheadCycles) /
                      (static_cast<double>(ws.requests) *
                       static_cast<double>(t.wl->computeCycles()));
        total_flops += t.doneFlops;
        stats.workloads.push_back(std::move(ws));
    }
    total_flops = std::max(0.0, total_flops - flops_debt_total);
    stats.flopsUtil =
        total_flops / (window * cfg.peakFlopsPerCycle());
    return stats;
}

} // namespace v10
