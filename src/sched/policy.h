/**
 * @file
 * Scheduling-policy interface for V10's tensor operator scheduler
 * (§3.2): given the workload context table and a free functional
 * unit's kind, pick the workload whose ready operator should run
 * next, and decide preemption contests between a running and a
 * waiting workload.
 */

#ifndef V10_SCHED_POLICY_H
#define V10_SCHED_POLICY_H

#include "common/types.h"
#include "sched/context_table.h"

namespace v10 {

/**
 * Pluggable operator scheduling policy.
 */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Display name ("round-robin", "priority"). */
    virtual const char *name() const = 0;

    /**
     * Pick the next workload to dispatch on a unit of kind
     * @p fuType. Candidates are rows that are ready, not active,
     * and whose current operator matches @p fuType.
     *
     * @return the chosen tenant, or kNoWorkload when no candidate
     *         exists.
     */
    virtual WorkloadId pickNext(const ContextTable &table,
                                OpKind fuType) = 0;

    /**
     * Preemption contest (invoked by the preemption timer, §3.3):
     * should the waiting @p candidate displace the running
     * @p running on a unit they both need?
     */
    virtual bool shouldPreempt(const ContextTable &table,
                               WorkloadId running,
                               WorkloadId candidate) = 0;
};

} // namespace v10

#endif // V10_SCHED_POLICY_H
