#include "sched/context_table.h"

#include <cmath>

#include "common/log.h"
#include "metrics/stat_registry.h"

namespace v10 {

double
ContextRow::activeRate()
 const
{
    if (totalCycles == 0)
        return 0.0;
    return static_cast<double>(activeCycles) /
           static_cast<double>(totalCycles);
}

double
ContextRow::activeRateP() const
{
    if (priority <= 0.0)
        panic("ContextRow: non-positive priority");
    return activeRate() / priority;
}

ContextTable::ContextTable(std::uint32_t tenants) : rows_(tenants)
{
    if (tenants == 0)
        V10_PANIC("ContextTable: need at least one tenant");
}

ContextRow &
ContextTable::row(WorkloadId tenant)
{
    if (tenant >= rows_.size())
        panic("ContextTable: tenant ", tenant, " out of range");
    return rows_[tenant];
}

const ContextRow &
ContextTable::row(WorkloadId tenant) const
{
    if (tenant >= rows_.size())
        panic("ContextTable: tenant ", tenant, " out of range");
    return rows_[tenant];
}

void
ContextTable::tick(Cycles delta)
{
    for (auto &r : rows_)
        r.totalCycles += delta;
}

std::uint32_t
ContextTable::rowBits(std::uint32_t numFus)
{
    std::uint32_t fu_bits = 1;
    while ((1u << fu_bits) < numFus)
        ++fu_bits;
    // 32b op id + 1b op type + 1b active + 1b ready + FU id +
    // 64b active cycles + 64b total cycles + 7b priority (Fig. 11).
    return 32 + 1 + 1 + 1 + fu_bits + 64 + 64 + 7;
}

Bytes
ContextTable::storageBytes(std::uint32_t tenants,
                           std::uint32_t numFus)
{
    const std::uint64_t bits =
        static_cast<std::uint64_t>(tenants) * rowBits(numFus);
    return (bits + 7) / 8;
}

void
ContextTable::registerStats(StatRegistry &registry,
                            const std::string &prefix,
                            std::uint32_t numFus) const
{
    registry.addCounter(prefix + ".rows", "context table rows")
        .set(size());
    registry.addCounter(prefix + ".storage_bytes",
                        "hardware table storage (Table 3)")
        .set(storageBytes(size(), numFus));
    for (std::uint32_t i = 0; i < size(); ++i) {
        const std::string base =
            prefix + ".row" + std::to_string(i);
        const ContextRow *r = &rows_[i];
        registry.addFormula(
            base + ".active_rate", [r] { return r->activeRate(); },
            "active_time / total_time (Algorithm 1 input)");
        registry.addFormula(
            base + ".active_cycles",
            [r] { return static_cast<double>(r->activeCycles); },
            "cycles this workload occupied FUs");
        registry.addFormula(
            base + ".priority", [r] { return r->priority; },
            "relative priority (Algorithm 1 divisor)");
    }
}

} // namespace v10
