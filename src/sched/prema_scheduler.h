/**
 * @file
 * PREMA-style token-based preemptive scheduler (Choi & Rhu,
 * HPCA'20) — the mechanism behind the paper's PMT baseline,
 * implemented in its original form as an extra comparison point:
 *
 *  - while waiting, each task accrues tokens at a rate proportional
 *    to its priority;
 *  - at every checkpoint (periodic, at task-level granularity) the
 *    scheduler collects the tasks whose tokens passed the threshold
 *    and, predictively, runs the one with the shortest estimated
 *    remaining execution time (the "predictive multi-task"
 *    part); with no candidate above the threshold the current task
 *    continues (or the highest-token task starts on an idle core);
 *  - a task switch checkpoints the whole core to HBM at the same
 *    20-40 us cost as PMT.
 *
 * Like PMT it owns the entire core per task: no cross-tenant SA/VU
 * overlap — which is exactly why V10 outperforms both.
 */

#ifndef V10_SCHED_PREMA_SCHEDULER_H
#define V10_SCHED_PREMA_SCHEDULER_H

#include "common/annotations.h"
#include "sched/engine.h"

namespace v10 {

/**
 * Token-based predictive multi-task scheduling baseline.
 */
class V10_DOMAIN_LOCAL PremaScheduler : public SchedulerEngine
{
  public:
    /** PREMA tuning knobs. */
    struct V10_DOMAIN_LOCAL Options
    {
        /** Checkpoint period: how often the token scheduler runs
         * (task-level granularity; ~0.4 ms at 700 MHz). */
        Cycles checkpointPeriod = 1u << 18;

        /** Token threshold for becoming a preemption candidate, in
         * priority-weighted waiting cycles (~3 ms at priority 1). */
        double tokenThreshold = 2097152.0;

        /** Context-switch cost bounds in microseconds. */
        double ctxSwitchMinUs = 20.0;
        double ctxSwitchMaxUs = 40.0;
    };

    /** Recoverable options validation; the constructor enforces the
     * same checks through the legacy orDie() bridge. */
    static Status validateOptions(const Options &options);

    PremaScheduler(Simulator &sim, NpuCore &core,
                   std::vector<TenantSpec> tenants, Options options,
                   std::uint64_t seed = 1);

    /** Defaults: Options{} and seed 1. */
    PremaScheduler(Simulator &sim, NpuCore &core,
                   std::vector<TenantSpec> tenants);

    const char *name() const override { return "PREMA"; }

    /** Whole-core task switches performed so far. */
    std::uint64_t taskSwitches() const { return task_switches_; }

  protected:
    void onStart() override;
    void onTenantReady(Tenant &tenant) override;
    void onOpComplete(Tenant &tenant, FunctionalUnit &fu) override;
    void onRegisterStats(StatRegistry &registry) override;

  private:
    /** Dispatch the active tenant's current operator if possible. */
    void runActive();

    /** Periodic checkpoint: update tokens, maybe switch tasks. */
    void onCheckpoint();

    /** Accrue waiting tenants' tokens since the last update. */
    void accrueTokens();

    /** Estimated remaining cycles of a tenant's current request. */
    Cycles estimatedRemaining(const Tenant &tenant) const;

    /** Switch the core to @p next (checkpoint cost applies). */
    void switchTo(std::size_t next);

    Options options_;
    std::size_t active_ = 0;
    bool switching_ = false;
    std::vector<double> tokens_;
    Cycles last_accrual_ = 0;
    std::uint64_t task_switches_ = 0;
};

} // namespace v10

#endif // V10_SCHED_PREMA_SCHEDULER_H
