#include "sched/rr_policy.h"

namespace v10 {

WorkloadId
RoundRobinPolicy::pickNext(const ContextTable &table, OpKind fuType)
{
    const std::uint32_t n = table.size();
    WorkloadId &cursor = cursor_[static_cast<int>(fuType)];
    for (std::uint32_t step = 1; step <= n; ++step) {
        const WorkloadId cand = (cursor + step) % n;
        const ContextRow &row = table.row(cand);
        if (row.ready && !row.active && row.opType == fuType) {
            cursor = cand;
            return cand;
        }
    }
    return kNoWorkload;
}

bool
RoundRobinPolicy::shouldPreempt(const ContextTable &table,
                                WorkloadId running,
                                WorkloadId candidate)
{
    return table.row(candidate).activeCycles <
           table.row(running).activeCycles;
}

} // namespace v10
