#include "sched/prema_scheduler.h"

#include <limits>

#include "common/log.h"

namespace v10 {

Status
PremaScheduler::validateOptions(const Options &options)
{
    if (options.checkpointPeriod == 0)
        return parseError("PremaScheduler: zero checkpoint period");
    if (options.tokenThreshold <= 0.0)
        return parseError(
            "PremaScheduler: token threshold must be positive");
    if (options.ctxSwitchMinUs < 0.0 ||
        options.ctxSwitchMaxUs < options.ctxSwitchMinUs)
        return parseError(
            "PremaScheduler: bad context-switch bounds");
    return Status::ok();
}

PremaScheduler::PremaScheduler(Simulator &sim, NpuCore &core,
                               std::vector<TenantSpec> tenants,
                               Options options, std::uint64_t seed)
    : SchedulerEngine(sim, core, std::move(tenants), seed),
      options_(options), tokens_(this->tenants().size(), 0.0)
{
    validateOptions(options_).orDie();
}

PremaScheduler::PremaScheduler(Simulator &sim, NpuCore &core,
                               std::vector<TenantSpec> tenants)
    : PremaScheduler(sim, core, std::move(tenants), Options{}, 1)
{
}

void
PremaScheduler::accrueTokens()
{
    const Cycles now = sim().now();
    if (now <= last_accrual_)
        return;
    const double elapsed = static_cast<double>(now - last_accrual_);
    last_accrual_ = now;
    for (std::size_t i = 0; i < tenants().size(); ++i) {
        if (i == active_)
            continue; // only waiting tasks accrue tokens
        // PREMA accrues tokens proportionally to priority and
        // absolute waiting time, so long- and short-request tasks
        // age at the same rate (no starvation of long tasks).
        tokens_[i] += tenants()[i].priority * elapsed;
    }
}

Cycles
PremaScheduler::estimatedRemaining(const Tenant &tenant) const
{
    // PREMA predicts execution time from prior runs; with replayed
    // traces the per-request compute is known exactly. Estimate the
    // remainder of the in-flight request from the trace position.
    const auto &ops = tenant.wl->trace().ops;
    Cycles remaining = tenant.opPreempted
                           ? tenant.opRemaining
                           : ops[tenant.opIndex].computeCycles;
    for (std::size_t i = tenant.opIndex + 1; i < ops.size(); ++i)
        remaining += ops[i].computeCycles;
    return remaining;
}

void
PremaScheduler::onStart()
{
    active_ = 0;
    switching_ = false;
    last_accrual_ = sim().now();
    sim().after(options_.checkpointPeriod,
                [this] { onCheckpoint(); });
    runActive();
}

void
PremaScheduler::runActive()
{
    if (switching_ || allDone())
        return;
    Tenant &t = tenants()[active_];
    if (t.running || !t.ready)
        return;
    const OpKind kind = currentOp(t).kind;
    auto fus = core().units(kind == OpKind::SA
                                ? FunctionalUnit::Kind::SA
                                : FunctionalUnit::Kind::VU);
    for (auto *fu : fus) {
        if (!fu->busy()) {
            dispatch(t, *fu, 0);
            return;
        }
    }
}

void
PremaScheduler::switchTo(std::size_t next)
{
    Tenant &outgoing = tenants()[active_];
    if (outgoing.running)
        preemptFu(*outgoing.fu);
    else
        countPreemption(outgoing);

    const double ctx_us = rng().uniform(options_.ctxSwitchMinUs,
                                        options_.ctxSwitchMaxUs);
    const Cycles ctx_cycles =
        std::max<Cycles>(1, core().config().usToCycles(ctx_us));
    switching_ = true;
    ++task_switches_;
    chargeCtxOverhead(tenants()[next], ctx_cycles);
    sim().after(ctx_cycles, [this, next] {
        switching_ = false;
        active_ = next;
        tokens_[next] = 0.0; // scheduled: spend the tokens
        runActive();
    });
}

void
PremaScheduler::onCheckpoint()
{
    if (allDone())
        return;
    sim().after(options_.checkpointPeriod,
                [this] { onCheckpoint(); });
    if (switching_ || tenants().size() == 1)
        return;
    accrueTokens();

    // Candidates over the threshold compete by token value (tokens
    // keep growing while waiting, so no task starves); near-ties
    // are broken predictively by shortest estimated remaining time.
    std::size_t best = active_;
    double best_tokens = 0.0;
    for (std::size_t i = 0; i < tenants().size(); ++i) {
        if (i == active_ || tokens_[i] < options_.tokenThreshold)
            continue;
        const bool near_tie =
            best != active_ &&
            tokens_[i] > 0.9 * best_tokens &&
            tokens_[i] < 1.1 * best_tokens;
        const bool wins =
            near_tie ? estimatedRemaining(tenants()[i]) <
                           estimatedRemaining(tenants()[best])
                     : tokens_[i] > best_tokens;
        if (wins) {
            best_tokens = std::max(best_tokens, tokens_[i]);
            best = i;
        }
    }
    if (best != active_)
        switchTo(best);
    else
        runActive();
}

void
PremaScheduler::onTenantReady(Tenant &tenant)
{
    if (tenant.id == tenants()[active_].id)
        runActive();
}

void
PremaScheduler::onOpComplete(Tenant &tenant, FunctionalUnit &)
{
    if (tenant.id != tenants()[active_].id)
        return;
    // Request boundary is PREMA's natural scheduling point: yield
    // to the highest-token task if one passed the threshold.
    if (tenant.opIndex == 0 && !allDone() && !switching_) {
        accrueTokens();
        std::size_t best = active_;
        double best_tokens = 0.0;
        for (std::size_t i = 0; i < tenants().size(); ++i) {
            if (i == active_)
                continue;
            if (tokens_[i] >= options_.tokenThreshold &&
                tokens_[i] > best_tokens) {
                best_tokens = tokens_[i];
                best = i;
            }
        }
        if (best != active_) {
            switchTo(best);
            return;
        }
    }
    runActive();
}

void
PremaScheduler::onRegisterStats(StatRegistry &registry)
{
    registry.addFormula(
        "sched.task_switches",
        [this] { return static_cast<double>(task_switches_); },
        "whole-core task switches (checkpoint to HBM)");
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
        registry.addFormula(
            "sched.tokens." + std::to_string(i),
            [this, i] { return tokens_[i]; },
            "accrued PREMA tokens of tenant " + std::to_string(i));
    }
}

} // namespace v10
