/**
 * @file
 * PMT: the state-of-the-art baseline — preemptive multi-tasking at
 * inference-task granularity, modeled after PREMA [HPCA'20] as the
 * paper's §5.1 describes it:
 *
 *  - one tenant owns the whole core at a time; no cross-tenant SA/VU
 *    overlap;
 *  - time slices proportional to tenant priority;
 *  - a task switch checkpoints the entire core state to HBM, costing
 *    20-40 us (drawn uniformly per switch);
 *  - preempted operators resume with their remaining cycles
 *    (checkpoint/recompute semantics).
 */

#ifndef V10_SCHED_PMT_SCHEDULER_H
#define V10_SCHED_PMT_SCHEDULER_H

#include "common/annotations.h"
#include "sched/engine.h"

namespace v10 {

/**
 * Task-level preemptive multitasking baseline.
 */
class V10_DOMAIN_LOCAL PmtScheduler : public SchedulerEngine
{
  public:
    /** Baseline tuning knobs. */
    struct V10_DOMAIN_LOCAL Options
    {
        /** Base task slice in cycles (coarse, to amortize the heavy
         * switch; ~1.5 ms at 700 MHz). */
        Cycles taskSlice = 1u << 20;

        /** Context-switch cost bounds in microseconds (§5.1). */
        double ctxSwitchMinUs = 20.0;
        double ctxSwitchMaxUs = 40.0;
    };

    /** Recoverable options validation; the constructor enforces the
     * same checks through the legacy orDie() bridge. */
    static Status validateOptions(const Options &options);

    PmtScheduler(Simulator &sim, NpuCore &core,
                 std::vector<TenantSpec> tenants, Options options,
                 std::uint64_t seed = 1);

    /** Defaults: Options{} and seed 1. */
    PmtScheduler(Simulator &sim, NpuCore &core,
                 std::vector<TenantSpec> tenants);

    const char *name() const override { return "PMT"; }

    /** Whole-core task switches performed so far. */
    std::uint64_t taskSwitches() const { return task_switches_; }

  protected:
    void onStart() override;
    void onTenantReady(Tenant &tenant) override;
    void onOpComplete(Tenant &tenant, FunctionalUnit &fu) override;
    void onRegisterStats(StatRegistry &registry) override;

  private:
    /** Dispatch the active tenant's current operator if possible. */
    void runActive();

    /** Slice expiry: checkpoint and switch to the next tenant. */
    void onSliceEnd();

    /** Slice length of tenant @p idx (priority-proportional). */
    Cycles sliceFor(std::size_t idx);

    Options options_;
    std::size_t active_ = 0;
    bool switching_ = false;
    double priority_sum_ = 0.0;
    std::uint64_t task_switches_ = 0;
    Cycles switch_cycles_total_ = 0;
};

} // namespace v10

#endif // V10_SCHED_PMT_SCHEDULER_H
