/**
 * @file
 * Round-robin operator scheduling (§3.2 policy 1): circulate through
 * workloads with ready operators. Balances operator *counts*, not
 * execution time, and ignores priorities — the paper's V10-Base.
 */

#ifndef V10_SCHED_RR_POLICY_H
#define V10_SCHED_RR_POLICY_H

#include "sched/policy.h"

namespace v10 {

/**
 * Round-robin policy with a per-kind rotating cursor.
 */
class RoundRobinPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "round-robin"; }

    WorkloadId pickNext(const ContextTable &table,
                        OpKind fuType) override;

    /**
     * RR has no fairness metric; a contest is won only when the
     * candidate has strictly less accumulated FU time (pure
     * time-balance, used when preemption is force-enabled on top of
     * RR for ablations).
     */
    bool shouldPreempt(const ContextTable &table, WorkloadId running,
                       WorkloadId candidate) override;

  private:
    WorkloadId cursor_[2] = {0, 0}; // per OpKind
};

} // namespace v10

#endif // V10_SCHED_RR_POLICY_H
