/**
 * @file
 * V10's tensor operator scheduler (§3.2, Fig. 10): sits at the NPU
 * front end, tracks tenants in the workload context table, and
 * dispatches independent operators from different workloads onto the
 * systolic arrays and vector units *simultaneously*. A periodic
 * preemption timer invokes the scheduling policy to displace
 * over-served operators (§3.3).
 *
 * The three paper variants map to:
 *  - V10-Base: round-robin policy, no preemption
 *  - V10-Fair: priority policy (Algorithm 1), no preemption
 *  - V10-Full: priority policy + operator preemption
 */

#ifndef V10_SCHED_OP_SCHEDULER_H
#define V10_SCHED_OP_SCHEDULER_H

#include <memory>

#include "common/annotations.h"
#include "sched/context_table.h"
#include "sched/engine.h"
#include "sched/policy.h"

namespace v10 {

/**
 * The hardware operator scheduler, at simulation granularity.
 */
class V10_DOMAIN_LOCAL OperatorScheduler : public SchedulerEngine
{
  public:
    /** Paper design points (§5.1). */
    enum class Variant { Base, Fair, Full };

    /** Which scheduling policy to install. */
    enum class PolicyKind { RoundRobin, Priority };

    /**
     * Ablation knobs decoupling the §5.1 design points: any policy
     * can be combined with or without operator preemption.
     */
    struct Options
    {
        PolicyKind policy = PolicyKind::Priority;
        bool preemption = true;
        /** Preemption-timer period; 0 uses the config's timeSlice. */
        Cycles sliceOverride = 0;
        std::uint64_t seed = 1;
    };

    /**
     * @param sim simulation kernel
     * @param core hardware assembly
     * @param tenants collocated workloads
     * @param variant paper design point
     * @param sliceOverride preemption-timer period; 0 uses the
     *        config's timeSlice (Fig. 23 sweeps this)
     * @param seed RNG seed
     */
    OperatorScheduler(Simulator &sim, NpuCore &core,
                      std::vector<TenantSpec> tenants, Variant variant,
                      Cycles sliceOverride = 0, std::uint64_t seed = 1);

    /** Ablation constructor: free policy/preemption combination. */
    OperatorScheduler(Simulator &sim, NpuCore &core,
                      std::vector<TenantSpec> tenants,
                      const Options &options);

    const char *name() const override;

    /** The variant this instance models. */
    Variant variant() const { return variant_; }

    /** Preemption decisions taken by the timer so far. */
    std::uint64_t timerPreemptions() const
    {
        return timer_preemptions_;
    }

  protected:
    void onStart() override;
    void onTenantReady(Tenant &tenant) override;
    void onOpComplete(Tenant &tenant, FunctionalUnit &fu) override;
    void onRegisterStats(StatRegistry &registry) override;

  private:
    /** Mirror engine tenant state into the hardware context table. */
    void syncTable();

    /** Refresh one tenant's context row (hoisted resync: after a
     * dispatch or preemption only the touched tenant's row is
     * stale — the clock does not move inside a scheduling pass). */
    void syncRow(const Tenant &tenant);

    /** First idle unit of @p kind, or nullptr. */
    FunctionalUnit *idleFu(OpKind kind);

    /** Greedily fill every idle FU from the ready set. */
    void fillIdleFus();

    /** Preemption-timer tick (§3.3). */
    void onSliceTimer();

    Variant variant_;
    PolicyKind policy_kind_ = PolicyKind::Priority;
    std::unique_ptr<SchedulingPolicy> policy_;
    bool preemption_enabled_;
    Cycles slice_;
    ContextTable table_;
    std::uint64_t timer_preemptions_ = 0;
    std::vector<FunctionalUnit *> sa_units_;
    std::vector<FunctionalUnit *> vu_units_;
};

} // namespace v10

#endif // V10_SCHED_OP_SCHEDULER_H
