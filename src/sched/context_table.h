/**
 * @file
 * The workload context table of V10's tensor operator scheduler
 * (Fig. 11). One row per collocated workload tracks the most recent
 * operator of that workload — operators within one workload execute
 * sequentially, so a single row per tenant suffices (§3.2).
 *
 * The table is both the scheduler's working state and the hardware
 * cost model's sizing input (Table 3: ~22 bytes per row with 4 FUs).
 */

#ifndef V10_SCHED_CONTEXT_TABLE_H
#define V10_SCHED_CONTEXT_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"
#include "workload/operator.h"

namespace v10 {

class StatRegistry;

/**
 * One row of the workload context table.
 */
struct ContextRow
{
    /** Operator id of the workload's current operator. */
    OpId opId = 0;

    /** FU kind the current operator needs. */
    OpKind opType = OpKind::SA;

    /** Operator is executing on a functional unit. */
    bool active = false;

    /** Operator's DMA finished; it can be dispatched. */
    bool ready = false;

    /** FU the operator occupies when active. */
    FuId fuId = kNoFu;

    /** Cycles this workload has occupied FUs since arrival. */
    Cycles activeCycles = 0;

    /** Cycles since the workload arrived at the NPU. */
    Cycles totalCycles = 0;

    /** Relative priority (Algorithm 1's divisor; 7-bit in HW). */
    double priority = 1.0;

    /**
     * active_rate = active_time / total_time: the fraction of its
     * ideal dedicated-core throughput this workload is receiving.
     */
    double activeRate() const;

    /** active_rate / priority, Algorithm 1's ranking key. */
    double activeRateP() const;
};

/**
 * The full table: one row per tenant.
 */
class V10_DOMAIN_LOCAL ContextTable
{
  public:
    /** @param tenants number of collocated workloads */
    explicit ContextTable(std::uint32_t tenants);

    /** Row of one tenant (mutable). */
    ContextRow &row(WorkloadId tenant);

    /** Row of one tenant. */
    const ContextRow &row(WorkloadId tenant) const;

    /** Number of rows. */
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(rows_.size());
    }

    /** Advance every row's total_time by @p delta. */
    void tick(Cycles delta);

    /**
     * Hardware row size in bits, as a function of FU count (Fig. 11:
     * 32b op id + active + ready + fu-id bits + 2x64b counters + 7b
     * priority + 1b op type).
     */
    static std::uint32_t rowBits(std::uint32_t numFus);

    /** Table storage in bytes for @p tenants rows and @p numFus. */
    static Bytes storageBytes(std::uint32_t tenants,
                              std::uint32_t numFus);

    /**
     * Register table statistics under "<prefix>.*": the hardware
     * storage cost plus per-row active-rate/active-cycle formulas
     * ("<prefix>.rowN.active_rate", ...).
     */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix,
                       std::uint32_t numFus) const;

  private:
    std::vector<ContextRow> rows_;
};

} // namespace v10

#endif // V10_SCHED_CONTEXT_TABLE_H
