/**
 * @file
 * Scheduler design points of the evaluation (§5.1) and a factory to
 * instantiate them uniformly from experiment code.
 */

#ifndef V10_SCHED_SCHEDULER_FACTORY_H
#define V10_SCHED_SCHEDULER_FACTORY_H

#include <memory>
#include <optional>
#include <string>

#include "sched/op_scheduler.h"
#include "sched/pmt_scheduler.h"
#include "sched/prema_scheduler.h"

namespace v10 {

/** The compared designs (§5.1), plus the PREMA extension. */
enum class SchedulerKind {
    Pmt,     ///< task-level preemptive multitasking baseline
    V10Base, ///< simultaneous execution + round-robin
    V10Fair, ///< + priority policy (Algorithm 1)
    V10Full, ///< + operator preemption (§3.3)
    Prema,   ///< token-based PREMA [HPCA'20] (extension baseline)
};

/** The paper's §5.1 designs, in plotting order (excludes the PREMA
 * extension so the figure benches match the paper). */
const std::vector<SchedulerKind> &allSchedulerKinds();

/** Display name ("PMT", "V10-Base", ...). */
const char *schedulerKindName(SchedulerKind kind);

/** Parse a display name back to a kind; fatal() if unknown. */
SchedulerKind schedulerKindFromName(const std::string &name);

/** Recoverable variant: nullopt if unknown (CLI validation). */
std::optional<SchedulerKind>
trySchedulerKindFromName(const std::string &name);

/** Per-run scheduler options. */
struct SchedulerOptions
{
    /** V10 preemption-timer period; 0 = config default (Fig. 23). */
    Cycles sliceOverride = 0;

    /** PMT baseline knobs. */
    PmtScheduler::Options pmt{};

    /** Engine RNG seed. */
    std::uint64_t seed = 1;

    /** Optional operator-timeline tracer (not owned). */
    TimelineTracer *timeline = nullptr;

    /** Optional statistics registry (not owned); the engine
     * registers into it and freezes it at end of run. */
    StatRegistry *stats = nullptr;

    /** Optional interval sampler (not owned); started at run start
     * with the default probe set unless probes were pre-registered. */
    IntervalSampler *sampler = nullptr;

    /** Fault injection and graceful degradation (all off by
     * default); the referenced FaultPlan, if any, is not owned. */
    ResilienceOptions resilience{};

    /** Optional request tracer (not owned); request boundaries emit
     * head-sampled spans. Passive — scheduling is bit-identical. */
    RequestTracer *requestTracer = nullptr;

    /** Optional interference-attribution collector (not owned);
     * charges preemption-stall / HBM-contention / ctx-overhead
     * cycles to the responsible co-runner. Passive. */
    AttributionCollector *attribution = nullptr;

    /** Optional flight recorder (not owned); keeps the last K
     * scheduler events for the abort diagnostics bundle. */
    FlightRecorder *flightRecorder = nullptr;

    /**
     * Engine worker-pool size for the domain-partitioned simulator
     * (--engine-jobs); 0 leaves the kernel in serial merged mode.
     * Single-core engine runs are bit-identical for every value:
     * the scheduler couples every hardware domain through shared
     * state at the HBM arbitration point (zero effective lookahead),
     * so the conservative engine degenerates to serial execution —
     * the parallel windows engage for decoupled domain graphs
     * (multi-core sharding, replay benches).
     */
    std::size_t engineJobs = 0;
};

/**
 * Instantiate a scheduler engine of @p kind over @p core.
 */
std::unique_ptr<SchedulerEngine>
makeScheduler(SchedulerKind kind, Simulator &sim, NpuCore &core,
              std::vector<TenantSpec> tenants,
              const SchedulerOptions &options = SchedulerOptions{});

/** True when @p kind needs vmem reserved for SA preemption
 * contexts (V10-Full). */
bool reservesSaContexts(SchedulerKind kind);

} // namespace v10

#endif // V10_SCHED_SCHEDULER_FACTORY_H
