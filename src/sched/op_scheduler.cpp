#include "sched/op_scheduler.h"

#include "common/log.h"
#include "sched/priority_policy.h"
#include "sched/rr_policy.h"

namespace v10 {

namespace {

/** Map a §5.1 design point onto the ablation knobs. */
OperatorScheduler::Options
variantOptions(OperatorScheduler::Variant variant,
               Cycles sliceOverride, std::uint64_t seed)
{
    OperatorScheduler::Options opts;
    opts.policy = variant == OperatorScheduler::Variant::Base
                      ? OperatorScheduler::PolicyKind::RoundRobin
                      : OperatorScheduler::PolicyKind::Priority;
    opts.preemption = variant == OperatorScheduler::Variant::Full;
    opts.sliceOverride = sliceOverride;
    opts.seed = seed;
    return opts;
}

} // namespace

OperatorScheduler::OperatorScheduler(Simulator &sim, NpuCore &core,
                                     std::vector<TenantSpec> tenants,
                                     Variant variant,
                                     Cycles sliceOverride,
                                     std::uint64_t seed)
    : OperatorScheduler(sim, core, std::move(tenants),
                        variantOptions(variant, sliceOverride, seed))
{
    variant_ = variant;
}

OperatorScheduler::OperatorScheduler(Simulator &sim, NpuCore &core,
                                     std::vector<TenantSpec> tenants,
                                     const Options &options)
    : SchedulerEngine(sim, core, std::move(tenants), options.seed),
      variant_(options.preemption ? Variant::Full
               : options.policy == PolicyKind::RoundRobin
                   ? Variant::Base
                   : Variant::Fair),
      policy_kind_(options.policy),
      preemption_enabled_(options.preemption),
      slice_(options.sliceOverride != 0 ? options.sliceOverride
                                        : core.config().timeSlice),
      table_(static_cast<std::uint32_t>(this->tenants().size()))
{
    if (options.policy == PolicyKind::RoundRobin)
        policy_ = std::make_unique<RoundRobinPolicy>();
    else
        policy_ = std::make_unique<PriorityPolicy>();

    for (auto &t : this->tenants())
        table_.row(t.id).priority = t.priority;

    sa_units_ = core.units(FunctionalUnit::Kind::SA);
    vu_units_ = core.units(FunctionalUnit::Kind::VU);
}

const char *
OperatorScheduler::name() const
{
    if (policy_kind_ == PolicyKind::RoundRobin)
        return preemption_enabled_ ? "V10-RR+Preempt" : "V10-Base";
    return preemption_enabled_ ? "V10-Full" : "V10-Fair";
}

void
OperatorScheduler::syncRow(const Tenant &t)
{
    const Cycles now = sim().now();
    ContextRow &row = table_.row(t.id);
    const TensorOperator &op = currentOp(t);
    row.opId = op.id;
    row.opType = op.kind;
    row.active = t.running;
    row.ready = t.ready && !t.running;
    row.fuId = t.fu != nullptr ? t.fu->id() : kNoFu;
    row.activeCycles =
        t.activeCycles + (t.running ? now - t.lastDispatch : 0);
    row.totalCycles = now - t.arrivalCycle;
    row.priority = t.priority;
}

void
OperatorScheduler::syncTable()
{
    for (auto &t : tenants())
        syncRow(t);
}

FunctionalUnit *
OperatorScheduler::idleFu(OpKind kind)
{
    const auto &fus = kind == OpKind::SA ? sa_units_ : vu_units_;
    for (auto *fu : fus) {
        if (!fu->busy())
            return fu;
    }
    return nullptr;
}

void
OperatorScheduler::fillIdleFus()
{
    // Keep the units busy: issue as soon as an operator is ready and
    // a matching FU is idle (§3.2); the policy arbitrates only when
    // several tenants contend. The table is synced once per pass and
    // then refreshed row-wise: within the pass the clock is frozen,
    // so only the tenant a dispatch touched can have a stale row.
    bool synced = false;
    for (OpKind kind : {OpKind::SA, OpKind::VU}) {
        while (true) {
            FunctionalUnit *fu = idleFu(kind);
            if (fu == nullptr)
                break;
            if (!synced) {
                syncTable();
                synced = true;
            }
            const WorkloadId next = policy_->pickNext(table_, kind);
            if (next == kNoWorkload)
                break;
            Tenant &t = tenants()[next];
            dispatch(t, *fu, ctxPenaltyFor(t, *fu));
            syncRow(t);
        }
    }
}

void
OperatorScheduler::onStart()
{
    if (preemption_enabled_) {
        sim().after(slice_, [this] { onSliceTimer(); });
    }
}

void
OperatorScheduler::onSliceTimer()
{
    if (allDone())
        return;

    // For every busy unit, let the policy decide whether a waiting
    // operator deserves the unit more than the running one (§3.3).
    // One full table sync per tick (lazily, so a tick with no busy
    // unit leaves the table residue untouched, exactly as before the
    // hoist); each preempt/dispatch then refreshes exactly the two
    // rows it changed — the clock is frozen for the whole tick, so
    // every other row is already current.
    bool synced = false;
    for (OpKind op_kind : {OpKind::SA, OpKind::VU}) {
        const auto &fus =
            op_kind == OpKind::SA ? sa_units_ : vu_units_;
        for (auto *fu : fus) {
            if (!fu->busy())
                continue;
            if (!synced) {
                syncTable();
                synced = true;
            }
            const WorkloadId cand =
                policy_->pickNext(table_, op_kind);
            if (cand == kNoWorkload)
                continue;
            const WorkloadId running = fu->workload();
            if (!policy_->shouldPreempt(table_, running, cand))
                continue;
            Tenant &victim = preemptFu(*fu);
            ++timer_preemptions_;
            Tenant &t = tenants()[cand];
            dispatch(t, *fu, ctxPenaltyFor(t, *fu));
            syncRow(victim);
            syncRow(t);
        }
    }
    // Displaced tenants may immediately claim another idle unit.
    fillIdleFus();

    sim().after(slice_, [this] { onSliceTimer(); });
}

void
OperatorScheduler::onTenantReady(Tenant &)
{
    fillIdleFus();
}

void
OperatorScheduler::onOpComplete(Tenant &, FunctionalUnit &)
{
    fillIdleFus();
}

void
OperatorScheduler::onRegisterStats(StatRegistry &registry)
{
    registry.addFormula(
        "sched.timer_preemptions",
        [this] { return static_cast<double>(timer_preemptions_); },
        "preemption decisions taken by the slice timer");
    const auto num_fus = static_cast<std::uint32_t>(
        sa_units_.size() + vu_units_.size());
    table_.registerStats(registry, "sched.ctx_table", num_fus);
}

} // namespace v10
