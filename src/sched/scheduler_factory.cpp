#include "sched/scheduler_factory.h"

#include "common/log.h"
#include "common/result.h"

namespace v10 {

const std::vector<SchedulerKind> &
allSchedulerKinds()
{
    static const std::vector<SchedulerKind> kinds = {
        SchedulerKind::Pmt,
        SchedulerKind::V10Base,
        SchedulerKind::V10Fair,
        SchedulerKind::V10Full,
    };
    return kinds;
}

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Pmt:     return "PMT";
      case SchedulerKind::V10Base: return "V10-Base";
      case SchedulerKind::V10Fair: return "V10-Fair";
      case SchedulerKind::V10Full: return "V10-Full";
      case SchedulerKind::Prema:   return "PREMA";
    }
    panic("schedulerKindName: bad kind");
}

SchedulerKind
schedulerKindFromName(const std::string &name)
{
    const std::optional<SchedulerKind> kind =
        trySchedulerKindFromName(name);
    if (!kind)
        Status(parseError("schedulerKindFromName: unknown "
                          "scheduler '" + name + "'")).orDie();
    return *kind;
}

std::optional<SchedulerKind>
trySchedulerKindFromName(const std::string &name)
{
    for (SchedulerKind kind :
         {SchedulerKind::Pmt, SchedulerKind::V10Base,
          SchedulerKind::V10Fair, SchedulerKind::V10Full,
          SchedulerKind::Prema}) {
        if (name == schedulerKindName(kind))
            return kind;
    }
    return std::nullopt;
}

std::unique_ptr<SchedulerEngine>
makeScheduler(SchedulerKind kind, Simulator &sim, NpuCore &core,
              std::vector<TenantSpec> tenants,
              const SchedulerOptions &options)
{
    switch (kind) {
      case SchedulerKind::Pmt:
        return std::make_unique<PmtScheduler>(
            sim, core, std::move(tenants), options.pmt, options.seed);
      case SchedulerKind::V10Base:
        return std::make_unique<OperatorScheduler>(
            sim, core, std::move(tenants),
            OperatorScheduler::Variant::Base, options.sliceOverride,
            options.seed);
      case SchedulerKind::V10Fair:
        return std::make_unique<OperatorScheduler>(
            sim, core, std::move(tenants),
            OperatorScheduler::Variant::Fair, options.sliceOverride,
            options.seed);
      case SchedulerKind::V10Full:
        return std::make_unique<OperatorScheduler>(
            sim, core, std::move(tenants),
            OperatorScheduler::Variant::Full, options.sliceOverride,
            options.seed);
      case SchedulerKind::Prema:
        return std::make_unique<PremaScheduler>(
            sim, core, std::move(tenants),
            PremaScheduler::Options{}, options.seed);
    }
    panic("makeScheduler: bad kind");
}

bool
reservesSaContexts(SchedulerKind kind)
{
    return kind == SchedulerKind::V10Full;
}

} // namespace v10
