#include "sched/pmt_scheduler.h"

#include <cmath>

#include "common/log.h"

namespace v10 {

Status
PmtScheduler::validateOptions(const Options &options)
{
    if (options.taskSlice == 0)
        return parseError("PmtScheduler: zero task slice");
    if (options.ctxSwitchMinUs < 0.0 ||
        options.ctxSwitchMaxUs < options.ctxSwitchMinUs)
        return parseError("PmtScheduler: bad context-switch bounds");
    return Status::ok();
}

PmtScheduler::PmtScheduler(Simulator &sim, NpuCore &core,
                           std::vector<TenantSpec> tenants,
                           Options options, std::uint64_t seed)
    : SchedulerEngine(sim, core, std::move(tenants), seed),
      options_(options)
{
    validateOptions(options_).orDie();
    for (const auto &t : this->tenants())
        priority_sum_ += t.priority;
}

PmtScheduler::PmtScheduler(Simulator &sim, NpuCore &core,
                           std::vector<TenantSpec> tenants)
    : PmtScheduler(sim, core, std::move(tenants), Options{}, 1)
{
}

Cycles
PmtScheduler::sliceFor(std::size_t idx)
{
    // Priority-proportional share of the round's total slice time
    // (Fig. 22: "assigning time slices proportionally to each
    // workload's priority").
    const double share =
        tenants()[idx].priority * tenants().size() / priority_sum_;
    const auto slice = static_cast<Cycles>(
        std::llround(static_cast<double>(options_.taskSlice) * share));
    return std::max<Cycles>(slice, 1);
}

void
PmtScheduler::onStart()
{
    active_ = 0;
    switching_ = false;
    sim().after(sliceFor(active_), [this] { onSliceEnd(); });
    runActive();
}

void
PmtScheduler::runActive()
{
    if (switching_ || allDone())
        return;
    Tenant &t = tenants()[active_];
    if (t.running || !t.ready)
        return;
    const OpKind kind = currentOp(t).kind;
    auto fus = core().units(kind == OpKind::SA
                                ? FunctionalUnit::Kind::SA
                                : FunctionalUnit::Kind::VU);
    for (auto *fu : fus) {
        if (!fu->busy()) {
            // The heavy task-switch cost is paid at switch time;
            // individual operator dispatches are free.
            dispatch(t, *fu, 0);
            return;
        }
    }
}

void
PmtScheduler::onSliceEnd()
{
    if (allDone())
        return;
    if (tenants().size() == 1) {
        // Nothing to switch to; keep the timer alive for symmetry.
        sim().after(sliceFor(active_), [this] { onSliceEnd(); });
        return;
    }

    Tenant &outgoing = tenants()[active_];
    if (outgoing.running) {
        // Task-level preemption interrupts the in-flight operator;
        // it resumes from its checkpoint next slice.
        preemptFu(*outgoing.fu);
    } else {
        countPreemption(outgoing);
    }

    // Checkpoint the whole core state to HBM: 20-40 us during which
    // nothing executes (§5.1).
    const double ctx_us = rng().uniform(options_.ctxSwitchMinUs,
                                        options_.ctxSwitchMaxUs);
    const Cycles ctx_cycles =
        std::max<Cycles>(1, core().config().usToCycles(ctx_us));

    switching_ = true;
    ++task_switches_;
    switch_cycles_total_ += ctx_cycles;
    const std::size_t next = (active_ + 1) % tenants().size();
    chargeCtxOverhead(tenants()[next], ctx_cycles);

    sim().after(ctx_cycles, [this, next] {
        switching_ = false;
        active_ = next;
        sim().after(sliceFor(active_), [this] { onSliceEnd(); });
        runActive();
    });
}

void
PmtScheduler::onTenantReady(Tenant &tenant)
{
    if (tenant.id == tenants()[active_].id)
        runActive();
}

void
PmtScheduler::onOpComplete(Tenant &tenant, FunctionalUnit &)
{
    if (tenant.id == tenants()[active_].id)
        runActive();
}

void
PmtScheduler::onRegisterStats(StatRegistry &registry)
{
    registry.addFormula(
        "sched.task_switches",
        [this] { return static_cast<double>(task_switches_); },
        "whole-core task switches (checkpoint to HBM)");
    registry.addFormula(
        "sched.task_switch_cycles",
        [this] {
            return static_cast<double>(switch_cycles_total_);
        },
        "cycles spent checkpointing the core");
}

} // namespace v10
