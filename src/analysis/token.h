/**
 * @file
 * Token model for the v10lint lexer. The lexer reduces C++ source to
 * a stream of semantically relevant tokens — identifiers, literals,
 * and punctuation — with comments, whitespace, and preprocessor
 * directives stripped, so rules can pattern-match without tripping
 * over commented-out code or string contents.
 */

#ifndef V10_ANALYSIS_TOKEN_H
#define V10_ANALYSIS_TOKEN_H

#include <cstddef>
#include <string>

namespace v10::analysis {

/** Lexical class of a token. */
enum class TokenKind {
    Identifier, ///< identifiers and keywords (the lexer keeps both)
    Number,     ///< numeric literal, digit separators included
    String,     ///< string literal (raw or cooked), contents dropped
    CharLit,    ///< character literal, contents dropped
    Punct,      ///< punctuation; "::" and "->" are single tokens
};

/** One lexed token with its 1-based source line. */
struct Token
{
    TokenKind kind = TokenKind::Punct;
    std::string text;
    std::size_t line = 0;

    bool
    is(const char *t) const
    {
        return text == t;
    }

    bool isIdent() const { return kind == TokenKind::Identifier; }
};

} // namespace v10::analysis

#endif // V10_ANALYSIS_TOKEN_H
