/**
 * @file
 * Content-hash incremental cache for v10lint (--cache-dir).
 *
 * The cache key folds together every scanned file's (path, FNV-1a
 * content hash) pair, the selected rule names, and the cache format
 * version. Because the semantic rule pack is repo-global — one
 * file's annotations change what every other file's reachability
 * means — any source edit invalidates the whole key; an unchanged
 * tree hits and skips lexing, symbol extraction, and the graph
 * phase entirely. The cached payload is the post-suppression,
 * pre-baseline finding list, so a warm run replays it and applies
 * the baseline exactly as a cold run would: findings are
 * byte-identical by construction.
 */

#ifndef V10_ANALYSIS_CACHE_H
#define V10_ANALYSIS_CACHE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"

namespace v10::analysis {

/** Bump when the rule pack or the payload schema changes. */
inline constexpr int kLintCacheVersion = 1;

/** FNV-1a over @p text; same function SourceFile::contentHash
 * uses, so a key built from raw bytes (before any lexing) matches
 * one built from loaded sources. */
std::uint64_t lintContentHash(const std::string &text);

/** The run key: (path, content hash) pairs + rule selection +
 * format version. Taking raw hashes instead of SourceFile lets a
 * warm run probe the cache without lexing anything. */
std::string lintCacheKey(
    const std::vector<std::pair<std::string, std::uint64_t>>
        &fileHashes,
    const LintOptions &options);

/**
 * Load the cached report for @p key from @p cacheDir. Returns true
 * and fills @p out (all findings FindingStatus::New, baseline not
 * yet applied) only on an exact key match; any mismatch, parse
 * error, or missing file is a miss, never an error.
 */
bool loadLintCache(const std::string &cacheDir,
                   const std::string &key, LintReport *out);

/**
 * Store @p report (pre-baseline) under @p key. Best-effort: an
 * unwritable cache directory degrades to cold runs.
 */
void storeLintCache(const std::string &cacheDir,
                    const std::string &key,
                    const LintReport &report);

} // namespace v10::analysis

#endif // V10_ANALYSIS_CACHE_H
