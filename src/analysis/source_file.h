/**
 * @file
 * One analyzed translation unit: its text, its token stream, and the
 * suppressions its comments declared. Rules receive a SourceFile and
 * emit findings against it; the analyzer then drops findings the
 * file suppressed inline.
 */

#ifndef V10_ANALYSIS_SOURCE_FILE_H
#define V10_ANALYSIS_SOURCE_FILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/lexer.h"
#include "common/result.h"

namespace v10::analysis {

/** A lexed source file, addressed by its root-relative path. */
class SourceFile
{
  public:
    /**
     * Build from in-memory text (tests, fixtures). @p relPath is the
     * path rules see — fixtures pass a pretend path to exercise
     * path-scoped rules.
     */
    static SourceFile fromString(std::string relPath,
                                 const std::string &text);

    /** Load @p absPath from disk; ParseError when unreadable. */
    static Result<SourceFile> load(std::string relPath,
                                   const std::string &absPath);

    /** Root-relative path with forward slashes. */
    const std::string &path() const { return path_; }

    /** FNV-1a of the raw text; the incremental cache's file key. */
    std::uint64_t contentHash() const { return content_hash_; }

    const std::vector<Token> &tokens() const { return lexed_.tokens; }

    /** Verbatim source line (1-based), for finding snippets. */
    const std::string &lineText(std::size_t line) const;

    /**
     * True when @p rule is suppressed at @p line: an allow() on this
     * line or the one above, or an allow-file() anywhere.
     */
    bool isSuppressed(const std::string &rule,
                      std::size_t line) const;

  private:
    std::string path_;
    LexedSource lexed_;
    std::vector<std::string> lines_;
    std::uint64_t content_hash_ = 0;
};

} // namespace v10::analysis

#endif // V10_ANALYSIS_SOURCE_FILE_H
