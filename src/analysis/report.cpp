/**
 * @file
 * Report rendering for v10lint. The text form mirrors the PR 3
 * ingestion diagnostics ("source:line: message"); the JSON form is
 * the machine contract CI and tests assert on.
 */

#include <map>
#include <ostream>

#include "analysis/analyzer.h"
#include "common/json.h"

namespace v10::analysis {

void
writeTextReport(const LintReport &report, std::ostream &os)
{
    for (const Finding &f : report.findings) {
        if (f.status == FindingStatus::Baselined)
            continue;
        os << f.toString() << "\n";
        if (!f.snippet.empty())
            os << "    " << f.snippet << "\n";
    }
    for (const BaselineEntry &e : report.stale) {
        os << e.file << ":" << e.lineHint << ": [" << e.rule
           << "] stale baseline entry (hash " << e.hash
           << "): the finding is gone — delete the entry\n";
    }
    os << report.filesScanned << " files scanned: "
       << report.newCount() << " new, "
       << report.baselinedCount() << " baselined, "
       << report.suppressedInline << " suppressed, "
       << report.stale.size() << " stale baseline entr"
       << (report.stale.size() == 1 ? "y" : "ies") << "\n";
}

void
writeJsonReport(const LintReport &report, std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("tool", "v10lint");
    w.kv("version", 1);

    w.key("counts");
    w.beginObject();
    w.kv("files_scanned",
         static_cast<std::uint64_t>(report.filesScanned));
    w.kv("total", static_cast<std::uint64_t>(report.findings.size()));
    w.kv("new", static_cast<std::uint64_t>(report.newCount()));
    w.kv("baselined",
         static_cast<std::uint64_t>(report.baselinedCount()));
    w.kv("suppressed",
         static_cast<std::uint64_t>(report.suppressedInline));
    w.kv("stale_baseline",
         static_cast<std::uint64_t>(report.stale.size()));
    w.endObject();

    std::map<std::string, std::uint64_t> by_rule;
    for (const Finding &f : report.findings)
        ++by_rule[f.rule];
    w.key("by_rule");
    w.beginObject();
    for (const auto &[rule, n] : by_rule)
        w.kv(rule, n);
    w.endObject();

    w.key("findings");
    w.beginArray();
    for (const Finding &f : report.findings) {
        w.beginObject();
        w.kv("rule", f.rule);
        w.kv("file", f.file);
        w.kv("line", static_cast<std::uint64_t>(f.line));
        w.kv("message", f.message);
        w.kv("snippet", f.snippet);
        w.kv("status", f.status == FindingStatus::New
                           ? "new"
                           : "baselined");
        w.kv("hash", findingHash(f));
        w.endObject();
    }
    w.endArray();

    w.key("stale_baseline");
    w.beginArray();
    for (const BaselineEntry &e : report.stale) {
        w.beginObject();
        w.kv("rule", e.rule);
        w.kv("file", e.file);
        w.kv("line_hint", static_cast<std::uint64_t>(e.lineHint));
        w.kv("hash", e.hash);
        w.kv("note", e.note);
        w.endObject();
    }
    w.endArray();

    w.endObject();
    os << "\n";
}

} // namespace v10::analysis
