/**
 * @file
 * The semantic rule pack: four rules sharing one SemanticEngine.
 * Each rule's collect() feeds the engine a file summary; the first
 * check() finalizes the repo-wide model and every rule then filters
 * the precomputed violations down to the file being checked. The
 * engine is created per makeSemanticRules() call, so fixture corpora
 * and repo scans never share state.
 */

#include <memory>

#include "analysis/rules_internal.h"
#include "analysis/semantic_model.h"

namespace v10::analysis {

namespace {

class SemanticRuleBase : public Rule
{
  public:
    SemanticRuleBase(std::shared_ptr<SemanticEngine> engine,
                     SemanticRule id)
        : engine_(std::move(engine)), id_(id)
    {
    }

    void
    collect(const SourceFile &file, RuleContext &ctx) override
    {
        (void)ctx;
        engine_->addFile(file);
    }

    void
    check(const SourceFile &file, const RuleContext &ctx,
          std::vector<Finding> &out) override
    {
        (void)ctx;
        for (const SemanticViolation &v :
             engine_->violations(id_)) {
            if (v.file == file.path())
                out.push_back(
                    finding(*this, file, v.line, v.message));
        }
    }

  private:
    std::shared_ptr<SemanticEngine> engine_;
    SemanticRule id_;
};

/** Shared-state reachability: the domain-isolation contract. */
class SharedStateRule final : public SemanticRuleBase
{
  public:
    explicit SharedStateRule(std::shared_ptr<SemanticEngine> e)
        : SemanticRuleBase(std::move(e),
                           SemanticRule::SharedState)
    {
    }

    const char *
    name() const override
    {
        return "semantic-shared-state";
    }

    const char *
    description() const override
    {
        return "mutable state reachable from EventFn/"
               "ParallelExecutor contexts must carry a V10_* "
               "domain annotation (src/common/annotations.h)";
    }

    const PathFilter &
    paths() const override
    {
        // The parallel-in-run refactor's blast radius: the event
        // core, the schedulers, the serving layer, and the shared
        // infrastructure they reach into.
        static const PathFilter filter{
            {"src/sim/", "src/sched/", "src/serve/", "src/npu/",
             "src/metrics/", "src/common/"},
            {}};
        return filter;
    }
};

/** Lock discipline over V10_GUARDED_BY members. */
class LockDisciplineRule final : public SemanticRuleBase
{
  public:
    explicit LockDisciplineRule(std::shared_ptr<SemanticEngine> e)
        : SemanticRuleBase(std::move(e),
                           SemanticRule::LockDiscipline)
    {
    }

    const char *
    name() const override
    {
        return "semantic-lock-discipline";
    }

    const char *
    description() const override
    {
        return "V10_GUARDED_BY members must be accessed under "
               "the named mutex; nested acquisitions must keep "
               "one global order";
    }

    const PathFilter &
    paths() const override
    {
        static const PathFilter filter{{"src/", "tools/"}, {}};
        return filter;
    }
};

/** Cross-thread floating-point reduction order. */
class FpOrderRule final : public SemanticRuleBase
{
  public:
    explicit FpOrderRule(std::shared_ptr<SemanticEngine> e)
        : SemanticRuleBase(std::move(e), SemanticRule::FpOrder)
    {
    }

    const char *
    name() const override
    {
        return "semantic-fp-order";
    }

    const char *
    description() const override
    {
        return "floating-point accumulation into shared state "
               "from parallel contexts is order-dependent; use "
               "per-domain partials with a serial reduction";
    }

    const PathFilter &
    paths() const override
    {
        static const PathFilter filter{{"src/", "tools/"}, {}};
        return filter;
    }
};

/** Cycle-arithmetic overflow/narrowing. */
class CycleOverflowRule final : public SemanticRuleBase
{
  public:
    explicit CycleOverflowRule(std::shared_ptr<SemanticEngine> e)
        : SemanticRuleBase(std::move(e),
                           SemanticRule::CycleOverflow)
    {
    }

    const char *
    name() const override
    {
        return "semantic-cycle-overflow";
    }

    const char *
    description() const override
    {
        return "cycle values must not flow into narrow or signed "
               "integer types; keep them in Cycles or CycleDelta "
               "(src/common/types.h)";
    }

    const PathFilter &
    paths() const override
    {
        // The cycle-accurate hot paths.
        static const PathFilter filter{
            {"src/sim/", "src/sched/", "src/serve/", "src/npu/"},
            {}};
        return filter;
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
makeSemanticRules()
{
    auto engine = std::make_shared<SemanticEngine>();
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<SharedStateRule>(engine));
    rules.push_back(std::make_unique<LockDisciplineRule>(engine));
    rules.push_back(std::make_unique<FpOrderRule>(engine));
    rules.push_back(std::make_unique<CycleOverflowRule>(engine));
    return rules;
}

} // namespace v10::analysis
