/**
 * @file
 * The v10lint driver: walks the tree, runs the rule pack's collect
 * and check phases, applies inline suppressions and the baseline,
 * and renders text or JSON reports. tools/v10lint is a thin CLI
 * over runLint(); tests call it directly on fixture corpora.
 */

#ifndef V10_ANALYSIS_ANALYZER_H
#define V10_ANALYSIS_ANALYZER_H

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/baseline.h"
#include "analysis/finding.h"
#include "analysis/rule.h"
#include "common/result.h"

namespace v10::analysis {

/** What to scan and how to judge it. */
struct LintOptions
{
    /** Repository root; findings and filters use paths relative to
     * it. */
    std::string root = ".";

    /** Root-relative directories/files to scan. */
    std::vector<std::string> paths = {"src", "tools"};

    /** Scan only rules with these names (empty = the full pack). */
    std::vector<std::string> ruleFilter;

    /** Baseline file path; empty = no grandfathering. */
    std::string baselinePath;

    /** Cache directory for content-hash incremental runs; empty =
     * always cold (docs/STATIC_ANALYSIS.md, "Incremental cache"). */
    std::string cacheDir;
};

/** Outcome of a lint run. */
struct LintReport
{
    /** Every unsuppressed finding, scan order, baselined included. */
    std::vector<Finding> findings;

    /** Baseline entries that matched nothing: fixed violations
     * whose entries should now be deleted. */
    std::vector<BaselineEntry> stale;

    std::size_t filesScanned = 0;
    std::size_t suppressedInline = 0;

    /** True when the findings were replayed from --cache-dir. */
    bool cacheHit = false;

    std::size_t
    newCount() const
    {
        std::size_t n = 0;
        for (const Finding &f : findings)
            n += f.status == FindingStatus::New;
        return n;
    }

    std::size_t
    baselinedCount() const
    {
        return findings.size() - newCount();
    }
};

/**
 * Run the rule pack over the tree. Fails (ParseError) on an
 * unreadable root/baseline or an unknown rule name in the filter.
 */
Result<LintReport> runLint(const LintOptions &options);

/**
 * Run the rule pack over in-memory sources (fixture corpora and
 * golden tests); same semantics as runLint() minus the filesystem.
 */
LintReport lintSources(const std::vector<SourceFile> &files,
                       const LintOptions &options,
                       const Baseline *baseline);

/** Human-oriented report: one finding per line, then a summary. */
void writeTextReport(const LintReport &report, std::ostream &os);

/** Machine-oriented report (schema in docs/STATIC_ANALYSIS.md). */
void writeJsonReport(const LintReport &report, std::ostream &os);

} // namespace v10::analysis

#endif // V10_ANALYSIS_ANALYZER_H
