/**
 * @file
 * Rule engine interfaces for v10lint.
 *
 * A rule runs in two phases. collect() sees every scanned file and
 * may record repo-wide facts into the shared RuleContext (e.g. which
 * function names return Result/Status); check() then runs per file
 * and emits findings. Rules are path-scoped: a PathFilter decides
 * which root-relative paths a rule applies to, so e.g. the RNG ban
 * exempts src/common/rng.h and the CLI timing paths by construction
 * rather than by suppression.
 */

#ifndef V10_ANALYSIS_RULE_H
#define V10_ANALYSIS_RULE_H

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/finding.h"
#include "analysis/source_file.h"

namespace v10::analysis {

/**
 * Prefix-based include/exclude filter over root-relative paths.
 * Empty include list = everything; excludes win over includes.
 */
struct PathFilter
{
    std::vector<std::string> include;
    std::vector<std::string> exclude;

    bool
    matches(const std::string &path) const
    {
        for (const auto &p : exclude) {
            if (path.compare(0, p.size(), p) == 0)
                return false;
        }
        if (include.empty())
            return true;
        for (const auto &p : include) {
            if (path.compare(0, p.size(), p) == 0)
                return true;
        }
        return false;
    }
};

/** Facts shared between rule phases across the whole scan. */
struct RuleContext
{
    /** Function names declared (anywhere in the scan) to return
     * Result<T>, Status, or ParseError. */
    std::set<std::string> resultReturning;
};

/** One lint rule. */
class Rule
{
  public:
    virtual ~Rule() = default;

    /** Stable name used in suppressions, baselines, and reports. */
    virtual const char *name() const = 0;

    /** One-line rationale shown by --list-rules and the docs. */
    virtual const char *description() const = 0;

    /** Paths this rule applies to. */
    virtual const PathFilter &paths() const = 0;

    /** Repo-wide fact gathering; default: nothing to collect.
     * Runs for every scanned file regardless of paths(). */
    virtual void
    collect(const SourceFile &file, RuleContext &ctx)
    {
        (void)file;
        (void)ctx;
    }

    /** Emit findings for @p file into @p out. */
    virtual void check(const SourceFile &file, const RuleContext &ctx,
                       std::vector<Finding> &out) = 0;

  protected:
    /** Build a finding with the file's source line as snippet. */
    static Finding
    finding(const Rule &rule, const SourceFile &file,
            std::size_t line, std::string message)
    {
        Finding f;
        f.rule = rule.name();
        f.file = file.path();
        f.line = line;
        f.message = std::move(message);
        f.snippet = file.lineText(line);
        // Trim leading indentation for compact reports.
        const std::size_t first =
            f.snippet.find_first_not_of(" \t");
        if (first != std::string::npos)
            f.snippet.erase(0, first);
        return f;
    }
};

/**
 * The repo's rule pack: determinism, error discipline, and
 * concurrency hygiene (docs/STATIC_ANALYSIS.md has the catalog).
 */
std::vector<std::unique_ptr<Rule>> makeDefaultRules();

} // namespace v10::analysis

#endif // V10_ANALYSIS_RULE_H
