/**
 * @file
 * Repo-wide semantic model for the v10lint semantic rule pack.
 *
 * The SemanticEngine accumulates per-file symbol summaries during
 * the collect() phase, then (lazily, on the first check()) builds
 * the call/containment graph, runs the reachability analysis from
 * every EventFn/ParallelExecutor entry lambda, and materializes the
 * violations each semantic rule reports:
 *
 *  - SharedState:    mutable members/globals reachable from event
 *                    or parallel contexts without a V10_* claim.
 *  - LockDiscipline: V10_GUARDED_BY members accessed without the
 *                    named mutex held, plus lock-order inversions.
 *  - FpOrder:        floating-point accumulation into shared state
 *                    from parallel contexts (order-dependent).
 *  - CycleOverflow:  cycle values flowing into narrow or signed
 *                    integer types (CycleDelta is the sanctioned
 *                    signed cycle type).
 *
 * Violations are addressed by (file, line) and sorted, so a rule's
 * check() just filters by the file it was handed; re-running over
 * identical sources yields byte-identical findings, which the
 * incremental cache and the warm/cold CI comparison rely on.
 */

#ifndef V10_ANALYSIS_SEMANTIC_MODEL_H
#define V10_ANALYSIS_SEMANTIC_MODEL_H

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/symbols.h"

namespace v10::analysis {

/** The four semantic analyses. */
enum class SemanticRule {
    SharedState,
    LockDiscipline,
    FpOrder,
    CycleOverflow,
};

/** One semantic diagnostic before it becomes a Finding. */
struct SemanticViolation
{
    std::string file; ///< root-relative path the finding lands in
    std::size_t line = 0;
    std::string message;
};

/** Shared across the four semantic rules of one rule pack. */
class SemanticEngine
{
  public:
    /** Record @p file's summary (idempotent per path). */
    void addFile(const SourceFile &file);

    /** Build the graph and run the analyses (idempotent). */
    void finalize();

    /** The sorted violations of @p rule (finalize() implied). */
    const std::vector<SemanticViolation> &
    violations(SemanticRule rule);

  private:
    struct FnRef
    {
        const FunctionSym *fn = nullptr;
        const FileSummary *in = nullptr;
    };
    struct MemberRef
    {
        const MemberSym *member = nullptr;
        const ClassSym *cls = nullptr;
        const FileSummary *in = nullptr;
    };

    void buildIndexes();
    void runReachability();
    void checkSharedState();
    void checkLockDiscipline();
    void checkFpOrder();
    void checkCycleOverflow();

    MemberRef memberOf(const std::string &className,
                       const std::string &memberName) const;
    /** The known class a member's type names, or "". */
    std::string typeClassOf(const std::string &type) const;
    std::vector<FnRef> callTargets(const FnRef &from,
                                   const CallSite &call) const;
    bool calleeReturnsCycles(const std::string &owner,
                             const std::string &callee) const;

    std::map<std::string, FileSummary> files_; ///< by path
    bool finalized_ = false;

    std::map<std::string,
             std::vector<std::pair<const ClassSym *,
                                   const FileSummary *>>>
        classesByName_;
    std::map<std::pair<std::string, std::string>,
             std::vector<FnRef>>
        fnsByKey_; ///< (ownerClass, name) -> bodies
    std::map<std::string,
             std::vector<std::pair<const GlobalSym *,
                                   const FileSummary *>>>
        globalsByName_;
    std::vector<FnRef> allFns_;

    /** Reachability flavor bits per function body. */
    static constexpr int kFromEvent = 1;
    static constexpr int kFromParallel = 2;
    // Lookup-only (probed per function from the deterministic
    // allFns_ walk, never iterated), so address order is inert.
    // v10lint: allow(determinism-pointer-key)
    std::map<const FunctionSym *, int> reach_;

    std::map<SemanticRule, std::vector<SemanticViolation>>
        violations_;
};

} // namespace v10::analysis

#endif // V10_ANALYSIS_SEMANTIC_MODEL_H
