#include "analysis/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "analysis/cache.h"

namespace v10::analysis {

namespace fs = std::filesystem;

namespace {

bool
isSourceExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" ||
           ext == ".cc" || ext == ".cxx";
}

std::string
toForwardSlashes(std::string s)
{
    std::replace(s.begin(), s.end(), '\\', '/');
    return s;
}

/** Collect the scan set, sorted by relative path so reports,
 * baselines, and exit codes are machine-independent. */
Result<std::vector<std::pair<std::string, std::string>>>
collectFiles(const LintOptions &options)
{
    std::vector<std::pair<std::string, std::string>> files;
    const fs::path root(options.root);
    std::error_code ec;
    if (!fs::exists(root, ec) || ec)
        return parseError("lint root does not exist", options.root);

    for (const std::string &rel : options.paths) {
        const fs::path base = root / rel;
        if (fs::is_regular_file(base, ec)) {
            files.emplace_back(toForwardSlashes(rel),
                               base.string());
            continue;
        }
        if (!fs::is_directory(base, ec))
            return parseError("scan path not found", rel);
        for (fs::recursive_directory_iterator it(base, ec), end;
             it != end && !ec; it.increment(ec)) {
            if (!it->is_regular_file() ||
                !isSourceExtension(it->path()))
                continue;
            const std::string abs = it->path().string();
            const std::string relpath = toForwardSlashes(
                fs::relative(it->path(), root).string());
            files.emplace_back(relpath, abs);
        }
        if (ec)
            return parseError("cannot walk scan path: " +
                                  ec.message(),
                              rel);
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()),
                files.end());
    return files;
}

/** The rule pack, narrowed by --rule filters. */
Result<std::vector<std::unique_ptr<Rule>>>
selectRules(const LintOptions &options)
{
    std::vector<std::unique_ptr<Rule>> rules = makeDefaultRules();
    if (options.ruleFilter.empty())
        return rules;
    std::set<std::string> wanted(options.ruleFilter.begin(),
                                 options.ruleFilter.end());
    std::vector<std::unique_ptr<Rule>> selected;
    for (auto &rule : rules) {
        if (wanted.erase(rule->name()) > 0)
            selected.push_back(std::move(rule));
    }
    if (!wanted.empty())
        return parseError("unknown rule name", "", 0,
                          *wanted.begin());
    return selected;
}

/** Baseline matching: each entry absorbs up to `count` findings
 * with its (rule, file, hash) key; leftovers are new, unmatched
 * entries are stale. Shared by the cold path and cache replay. */
void
applyBaseline(LintReport &report, const Baseline &baseline)
{
    std::map<std::tuple<std::string, std::string, std::string>,
             std::pair<std::size_t, const BaselineEntry *>>
        remaining;
    for (const BaselineEntry &e : baseline.entries) {
        auto &slot =
            remaining[std::make_tuple(e.rule, e.file, e.hash)];
        slot.first += e.count;
        slot.second = &e;
    }
    for (Finding &f : report.findings) {
        auto it = remaining.find(
            std::make_tuple(f.rule, f.file, findingHash(f)));
        if (it != remaining.end() && it->second.first > 0) {
            --it->second.first;
            f.status = FindingStatus::Baselined;
        }
    }
    for (const BaselineEntry &e : baseline.entries) {
        auto it = remaining.find(
            std::make_tuple(e.rule, e.file, e.hash));
        if (it != remaining.end() && it->second.first >= e.count) {
            // Nothing consumed any of this entry's budget.
            report.stale.push_back(e);
            it->second.first -= e.count;
        }
    }
}

} // namespace

LintReport
lintSources(const std::vector<SourceFile> &files,
            const LintOptions &options, const Baseline *baseline)
{
    LintReport report;
    report.filesScanned = files.size();

    auto rules_or = selectRules(options);
    // Callers of lintSources pass validated options (runLint
    // rejects unknown rule names before loading any file).
    std::vector<std::unique_ptr<Rule>> rules = rules_or.take();

    RuleContext ctx;
    for (const SourceFile &file : files) {
        for (auto &rule : rules)
            rule->collect(file, ctx);
    }

    for (const SourceFile &file : files) {
        for (auto &rule : rules) {
            if (!rule->paths().matches(file.path()))
                continue;
            std::vector<Finding> raw;
            // Rule::check is void; the name merely collides with
            // Status-returning check() APIs collected repo-wide.
            // v10lint: allow(error-discarded-result)
            rule->check(file, ctx, raw);
            for (Finding &f : raw) {
                if (file.isSuppressed(f.rule, f.line))
                    ++report.suppressedInline;
                else
                    report.findings.push_back(std::move(f));
            }
        }
    }

    if (baseline != nullptr)
        applyBaseline(report, *baseline);
    return report;
}

Result<LintReport>
runLint(const LintOptions &options)
{
    // Validate the rule filter up front for a crisp usage error.
    auto rules_or = selectRules(options);
    if (!rules_or.ok())
        return rules_or.error();

    auto files_or = collectFiles(options);
    if (!files_or.ok())
        return files_or.error();

    // Read raw bytes up front; lexing is deferred so a cache hit
    // below can skip it for every file.
    std::vector<std::pair<std::string, std::string>> texts;
    texts.reserve(files_or.value().size());
    for (const auto &[rel, abs] : files_or.value()) {
        std::ifstream is(abs, std::ios::binary);
        if (!is)
            return parseError("cannot open source file", abs);
        std::ostringstream buf;
        buf << is.rdbuf();
        texts.emplace_back(rel, buf.str());
    }

    Baseline baseline;
    const bool have_baseline = !options.baselinePath.empty();
    if (have_baseline) {
        auto baseline_or = Baseline::load(options.baselinePath);
        if (!baseline_or.ok())
            return baseline_or.error();
        baseline = baseline_or.take();
    }

    // Incremental cache: replay an exact content-hash match, else
    // run cold and refresh the cache for the next run.
    std::string key;
    if (!options.cacheDir.empty()) {
        std::vector<std::pair<std::string, std::uint64_t>> hashes;
        hashes.reserve(texts.size());
        for (const auto &[rel, text] : texts)
            hashes.emplace_back(rel, lintContentHash(text));
        key = lintCacheKey(hashes, options);
        LintReport cached;
        if (loadLintCache(options.cacheDir, key, &cached)) {
            if (have_baseline)
                applyBaseline(cached, baseline);
            return cached;
        }
    }

    std::vector<SourceFile> sources;
    sources.reserve(texts.size());
    for (const auto &[rel, text] : texts)
        sources.push_back(SourceFile::fromString(rel, text));

    if (!options.cacheDir.empty()) {
        LintReport report = lintSources(sources, options, nullptr);
        storeLintCache(options.cacheDir, key, report);
        if (have_baseline)
            applyBaseline(report, baseline);
        return report;
    }

    return lintSources(sources, options,
                       have_baseline ? &baseline : nullptr);
}

} // namespace v10::analysis
