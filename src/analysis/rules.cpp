#include "analysis/rules_internal.h"

namespace v10::analysis {

namespace detail {

std::size_t
matchForward(const std::vector<Token> &tokens, std::size_t open)
{
    const std::string &opener = tokens[open].text;
    const char close = opener == "(" ? ')'
                     : opener == "<" ? '>'
                     : opener == "{" ? '}'
                                     : ']';
    const bool angle = opener == "<";
    std::size_t depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        const std::string &t = tokens[i].text;
        if (t == opener) {
            ++depth;
        } else if (t.size() == 1 && t[0] == close) {
            if (--depth == 0)
                return i;
        } else if (angle && (t == ";" || t == "{")) {
            return tokens.size(); // comparison, not a template
        }
    }
    return tokens.size();
}

} // namespace detail

std::vector<std::unique_ptr<Rule>>
makeDefaultRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    for (auto *maker : {&makeDeterminismRules,
                        &makeErrorDisciplineRules,
                        &makeConcurrencyRules,
                        &makeSemanticRules}) {
        for (auto &rule : (*maker)())
            rules.push_back(std::move(rule));
    }
    return rules;
}

} // namespace v10::analysis
