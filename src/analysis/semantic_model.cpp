#include "analysis/semantic_model.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <tuple>

namespace v10::analysis {

namespace {

bool
holds(const std::vector<std::string> &locks,
      const std::string &mutex)
{
    return std::find(locks.begin(), locks.end(), mutex) !=
           locks.end();
}

std::string
contextName(int mask)
{
    if ((mask & 1) != 0 && (mask & 2) != 0)
        return "event and parallel contexts";
    if ((mask & 2) != 0)
        return "a ParallelExecutor task";
    return "an EventFn callback";
}

void
sortViolations(std::vector<SemanticViolation> &v)
{
    std::sort(v.begin(), v.end(),
              [](const SemanticViolation &a,
                 const SemanticViolation &b) {
                  return std::tie(a.file, a.line, a.message) <
                         std::tie(b.file, b.line, b.message);
              });
    v.erase(std::unique(v.begin(), v.end(),
                        [](const SemanticViolation &a,
                           const SemanticViolation &b) {
                            return a.file == b.file &&
                                   a.line == b.line &&
                                   a.message == b.message;
                        }),
            v.end());
}

} // namespace

void
SemanticEngine::addFile(const SourceFile &file)
{
    if (finalized_ || files_.count(file.path()) > 0)
        return;
    files_.emplace(file.path(), summarizeFile(file));
}

void
SemanticEngine::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    buildIndexes();
    runReachability();
    checkSharedState();
    checkLockDiscipline();
    checkFpOrder();
    checkCycleOverflow();
    for (auto &[rule, v] : violations_)
        sortViolations(v);
}

const std::vector<SemanticViolation> &
SemanticEngine::violations(SemanticRule rule)
{
    finalize();
    return violations_[rule];
}

void
SemanticEngine::buildIndexes()
{
    for (const auto &[path, summary] : files_) {
        for (const ClassSym &cls : summary.classes)
            classesByName_[cls.name].emplace_back(&cls, &summary);
        for (const FunctionSym &fn : summary.functions) {
            fnsByKey_[{fn.ownerClass, fn.name}].push_back(
                {&fn, &summary});
            allFns_.push_back({&fn, &summary});
        }
        for (const GlobalSym &g : summary.globals)
            globalsByName_[g.name].emplace_back(&g, &summary);
    }
}

SemanticEngine::MemberRef
SemanticEngine::memberOf(const std::string &className,
                         const std::string &memberName) const
{
    const auto it = classesByName_.find(className);
    if (it == classesByName_.end())
        return {};
    for (const auto &[cls, in] : it->second) {
        if (const MemberSym *m = cls->member(memberName))
            return {m, cls, in};
    }
    return {};
}

std::string
SemanticEngine::typeClassOf(const std::string &type) const
{
    // The type string is space/::-joined tokens; any word that names
    // a known class wins (covers T, T*, unique_ptr<T>, vector<T>).
    std::string word;
    for (std::size_t i = 0; i <= type.size(); ++i) {
        const char c = i < type.size() ? type[i] : ' ';
        if (std::isalnum(static_cast<unsigned char>(c)) ||
            c == '_') {
            word += c;
            continue;
        }
        if (!word.empty() && classesByName_.count(word) > 0)
            return word;
        word.clear();
    }
    return "";
}

std::vector<SemanticEngine::FnRef>
SemanticEngine::callTargets(const FnRef &from,
                            const CallSite &call) const
{
    std::vector<FnRef> targets;
    auto append = [&](const std::string &owner) {
        const auto it = fnsByKey_.find({owner, call.callee});
        if (it != fnsByKey_.end())
            targets.insert(targets.end(), it->second.begin(),
                           it->second.end());
    };
    if (call.receiver.empty()) {
        if (!from.fn->ownerClass.empty())
            append(from.fn->ownerClass);
        append("");
        return targets;
    }
    // Receiver is a member of the calling function's class: resolve
    // its declared type to a known class.
    const MemberRef recv =
        memberOf(from.fn->ownerClass, call.receiver);
    if (recv.member == nullptr || recv.member->isFunction)
        return targets;
    const std::string cls = typeClassOf(recv.member->type);
    if (!cls.empty())
        append(cls);
    return targets;
}

bool
SemanticEngine::calleeReturnsCycles(const std::string &owner,
                                    const std::string &callee) const
{
    for (const std::string &o :
         {owner, std::string()}) {
        const auto it = fnsByKey_.find({o, callee});
        if (it == fnsByKey_.end())
            continue;
        for (const FnRef &ref : it->second) {
            if (ref.fn->returnsCycles)
                return true;
        }
    }
    return false;
}

void
SemanticEngine::runReachability()
{
    std::deque<FnRef> work;
    for (const FnRef &ref : allFns_) {
        if (ref.fn->entry == EntryKind::None)
            continue;
        const int mask = ref.fn->entry == EntryKind::Event
                             ? kFromEvent
                             : kFromParallel;
        reach_[ref.fn] |= mask;
        work.push_back(ref);
    }
    while (!work.empty()) {
        const FnRef cur = work.front();
        work.pop_front();
        const int mask = reach_[cur.fn];
        for (const CallSite &call : cur.fn->calls) {
            for (const FnRef &next : callTargets(cur, call)) {
                const int had = reach_[next.fn];
                if ((had | mask) == had)
                    continue;
                reach_[next.fn] = had | mask;
                work.push_back(next);
            }
        }
    }
}

void
SemanticEngine::checkSharedState()
{
    auto &out = violations_[SemanticRule::SharedState];
    // Accumulate the reaching flavor per declaration site so the
    // message names every context that can reach it.
    std::map<std::pair<std::string, std::size_t>,
             std::pair<int, std::string>>
        sites;
    for (const FnRef &ref : allFns_) {
        const auto rit = reach_.find(ref.fn);
        if (rit == reach_.end() || rit->second == 0)
            continue;
        const int mask = rit->second;
        for (const AccessSite &a : ref.fn->accesses) {
            std::string ownerForBare = ref.fn->ownerClass;
            MemberRef m;
            if (a.object.empty()) {
                m = memberOf(ownerForBare, a.member);
            } else {
                const MemberRef recv =
                    memberOf(ownerForBare, a.object);
                if (recv.member != nullptr &&
                    !recv.member->isFunction)
                    m = memberOf(typeClassOf(recv.member->type),
                                 a.member);
            }
            if (m.member != nullptr) {
                const MemberSym &mem = *m.member;
                if (mem.isFunction || mem.isConst ||
                    mem.isStatic || mem.isReference ||
                    mem.isMutex ||
                    mem.type.find("atomic") !=
                        std::string::npos)
                    continue;
                Annotations anno = mem.anno;
                anno.merge(m.cls->anno);
                if (anno.any())
                    continue;
                auto &slot = sites[{m.in->path, mem.line}];
                slot.first |= mask;
                slot.second = "mutable member '" + m.cls->name +
                              "::" + mem.name + "'";
                continue;
            }
            if (!a.object.empty())
                continue;
            const auto git = globalsByName_.find(a.member);
            if (git == globalsByName_.end())
                continue;
            for (const auto &[g, in] : git->second) {
                // std::atomic globals synchronize themselves; the
                // annotation vocabulary documents *unsynchronized*
                // state.
                if (g->anno.any() ||
                    g->type.find("atomic") != std::string::npos)
                    continue;
                auto &slot = sites[{in->path, g->line}];
                slot.first |= mask;
                slot.second = "mutable global '" + g->name + "'";
            }
        }
    }
    for (const auto &[site, info] : sites) {
        out.push_back(
            {site.first, site.second,
             info.second + " is reachable from " +
                 contextName(info.first) +
                 " but carries no domain annotation; mark it "
                 "V10_DOMAIN_LOCAL, V10_SHARED_STATE, "
                 "V10_GUARDED_BY(m), or V10_COUPLING_POINT "
                 "(src/common/annotations.h)"});
    }
}

void
SemanticEngine::checkLockDiscipline()
{
    auto &out = violations_[SemanticRule::LockDiscipline];
    for (const FnRef &ref : allFns_) {
        if (ref.fn->isCtorDtor)
            continue;
        for (const AccessSite &a : ref.fn->accesses) {
            MemberRef m;
            if (a.object.empty()) {
                m = memberOf(ref.fn->ownerClass, a.member);
            } else {
                const MemberRef recv =
                    memberOf(ref.fn->ownerClass, a.object);
                if (recv.member != nullptr &&
                    !recv.member->isFunction)
                    m = memberOf(typeClassOf(recv.member->type),
                                 a.member);
            }
            if (m.member == nullptr || m.member->isFunction ||
                m.member->isMutex)
                continue;
            std::string guard = m.member->anno.guardedBy;
            if (guard.empty())
                guard = m.cls->anno.guardedBy;
            if (guard.empty() || holds(a.locksHeld, guard))
                continue;
            out.push_back(
                {ref.in->path, a.line,
                 "'" + m.cls->name + "::" + m.member->name +
                     "' is V10_GUARDED_BY(" + guard +
                     ") but this access does not hold '" + guard +
                     "' (wrap it in std::lock_guard/"
                     "scoped_lock/unique_lock)"});
        }
    }
    // Lock-order inversions: the same two mutexes acquired nested
    // in both orders anywhere in the repo.
    std::map<std::pair<std::string, std::string>,
             std::pair<std::string, std::size_t>>
        first_site;
    for (const FnRef &ref : allFns_) {
        for (const LockPair &p : ref.fn->lockPairs) {
            auto key = std::make_pair(p.first, p.second);
            auto site = std::make_pair(ref.in->path, p.line);
            auto it = first_site.find(key);
            if (it == first_site.end() || site < it->second)
                first_site[key] = site;
        }
    }
    for (const auto &[key, site] : first_site) {
        const auto rev =
            first_site.find({key.second, key.first});
        if (rev == first_site.end())
            continue;
        out.push_back(
            {site.first, site.second,
             "lock-order inversion: '" + key.first + "' then '" +
                 key.second + "' here, but '" + key.second +
                 "' then '" + key.first + "' at " +
                 rev->second.first + ":" +
                 std::to_string(rev->second.second)});
    }
}

void
SemanticEngine::checkFpOrder()
{
    auto &out = violations_[SemanticRule::FpOrder];
    for (const FnRef &ref : allFns_) {
        const auto rit = reach_.find(ref.fn);
        if (rit == reach_.end() ||
            (rit->second & kFromParallel) == 0)
            continue;
        for (const AccessSite &a : ref.fn->accesses) {
            if (!a.fpAccumulate)
                continue;
            MemberRef m;
            if (a.object.empty()) {
                m = memberOf(ref.fn->ownerClass, a.member);
            } else {
                const MemberRef recv =
                    memberOf(ref.fn->ownerClass, a.object);
                if (recv.member != nullptr &&
                    !recv.member->isFunction)
                    m = memberOf(typeClassOf(recv.member->type),
                                 a.member);
            }
            bool is_float = false;
            bool domain_local = false;
            std::string what;
            if (m.member != nullptr && !m.member->isFunction) {
                Annotations anno = m.member->anno;
                anno.merge(m.cls->anno);
                is_float = m.member->isFloat;
                domain_local = anno.domainLocal;
                what = m.cls->name + "::" + m.member->name;
            } else if (a.object.empty()) {
                const auto git = globalsByName_.find(a.member);
                if (git != globalsByName_.end()) {
                    is_float = git->second.front().first->isFloat;
                    domain_local = git->second.front()
                                       .first->anno.domainLocal;
                    what = a.member;
                }
            }
            if (!is_float || domain_local)
                continue;
            out.push_back(
                {ref.in->path, a.line,
                 "floating-point accumulation into '" + what +
                     "' from a parallel context is "
                     "order-dependent; accumulate into "
                     "V10_DOMAIN_LOCAL partials and reduce in a "
                     "deterministic serial order"});
        }
    }
}

void
SemanticEngine::checkCycleOverflow()
{
    auto &out = violations_[SemanticRule::CycleOverflow];
    for (const FnRef &ref : allFns_) {
        std::set<std::string> cycle_members;
        const auto cit = classesByName_.find(ref.fn->ownerClass);
        if (cit != classesByName_.end()) {
            for (const auto &[cls, in] : cit->second) {
                for (const MemberSym &mem : cls->members) {
                    if (mem.isCycles && !mem.isFunction)
                        cycle_members.insert(mem.name);
                }
            }
        }
        for (const CastSite &cs : ref.fn->casts) {
            bool involved = false;
            for (const std::string &id : cs.idents) {
                if (ref.fn->cycleLocals.count(id) > 0 ||
                    cycle_members.count(id) > 0) {
                    involved = true;
                    break;
                }
            }
            if (!involved) {
                for (const std::string &callee : cs.callees) {
                    if (calleeReturnsCycles(ref.fn->ownerClass,
                                            callee)) {
                        involved = true;
                        break;
                    }
                }
            }
            if (!involved)
                continue;
            out.push_back(
                {ref.in->path, cs.line,
                 std::string(cs.fromCast
                                 ? "narrowing cast of a cycle "
                                   "value to '"
                                 : "cycle value stored into "
                                   "narrow/signed '") +
                     cs.target +
                     "'; cycle arithmetic must stay in Cycles "
                     "(uint64) or the sanctioned CycleDelta"});
        }
    }
}

} // namespace v10::analysis
