/**
 * @file
 * One diagnostic produced by a lint rule, addressed the same way the
 * ingestion diagnostics are (source:line), so editors and the CI log
 * treat both uniformly.
 */

#ifndef V10_ANALYSIS_FINDING_H
#define V10_ANALYSIS_FINDING_H

#include <cstddef>
#include <string>

namespace v10::analysis {

/** How a finding relates to the committed baseline. */
enum class FindingStatus {
    New,       ///< not in the baseline: fails --error-on-new
    Baselined, ///< grandfathered by a baseline entry
};

/** One rule violation at a source location. */
struct Finding
{
    std::string rule;    ///< rule name ("error-no-fatal", ...)
    std::string file;    ///< root-relative path
    std::size_t line = 0; ///< 1-based
    std::string message; ///< what is wrong and what to do instead
    std::string snippet; ///< the offending source line, trimmed
    FindingStatus status = FindingStatus::New;

    /** "file:line: [rule] message" — the PR 3 diagnostic shape. */
    std::string
    toString() const
    {
        return file + ":" + std::to_string(line) + ": [" + rule +
               "] " + message;
    }
};

} // namespace v10::analysis

#endif // V10_ANALYSIS_FINDING_H
