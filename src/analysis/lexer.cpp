#include "analysis/lexer.h"

#include <cctype>

namespace v10::analysis {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** String-literal prefixes whose next token is a quote. */
bool
isStringPrefix(const std::string &ident)
{
    return ident == "R" || ident == "u8R" || ident == "uR" ||
           ident == "LR" || ident == "UR" || ident == "L" ||
           ident == "u8" || ident == "u" || ident == "U";
}

bool
isRawPrefix(const std::string &ident)
{
    return !ident.empty() && ident.back() == 'R';
}

/** Cursor over the source text; tracks the 1-based line. */
struct Cursor
{
    const std::string &text;
    std::size_t pos = 0;
    std::size_t line = 1;

    bool done() const { return pos >= text.size(); }
    char peek(std::size_t ahead = 0) const
    {
        return pos + ahead < text.size() ? text[pos + ahead] : '\0';
    }

    char
    take()
    {
        const char c = text[pos++];
        if (c == '\n')
            ++line;
        return c;
    }
};

/**
 * Parse "v10lint:" directives out of one comment's text and record
 * them against @p line (the line the comment starts on).
 */
void
scanCommentDirectives(const std::string &comment, std::size_t line,
                      LexedSource &out)
{
    std::size_t at = comment.find("v10lint:");
    while (at != std::string::npos) {
        std::size_t p = at + 8;
        while (p < comment.size() && comment[p] == ' ')
            ++p;
        bool file_scope = false;
        if (comment.compare(p, 11, "allow-file(") == 0) {
            file_scope = true;
            p += 11;
        } else if (comment.compare(p, 6, "allow(") == 0) {
            p += 6;
        } else {
            at = comment.find("v10lint:", at + 8);
            continue;
        }
        const std::size_t close = comment.find(')', p);
        if (close == std::string::npos)
            break;
        // Split the comma-separated rule list.
        std::string name;
        for (std::size_t i = p; i <= close; ++i) {
            const char c = i < close ? comment[i] : ',';
            if (c == ',') {
                if (!name.empty()) {
                    if (file_scope)
                        out.allowFile.insert(name);
                    else
                        out.allowByLine[line].insert(name);
                }
                name.clear();
            } else if (c != ' ' && c != '\t') {
                name += c;
            }
        }
        at = comment.find("v10lint:", close);
    }
}

} // namespace

LexedSource
lexSource(const std::string &text)
{
    LexedSource out;
    Cursor cur{text};

    auto push = [&out](TokenKind kind, std::string tok,
                       std::size_t line) {
        out.tokens.push_back(Token{kind, std::move(tok), line});
    };

    auto lexCooked = [&cur](char quote) {
        while (!cur.done()) {
            const char c = cur.take();
            if (c == '\\' && !cur.done()) {
                cur.take();
                continue;
            }
            if (c == quote || c == '\n')
                break;
        }
    };

    auto lexRaw = [&cur, &lexCooked]() {
        // At the opening quote of R"delim( ... )delim". The d-char
        // sequence is at most 16 characters and may not contain
        // space, parentheses, backslash, quotes, or control
        // whitespace ([lex.string]). Validate the opener by lookahead
        // *before* consuming anything: a malformed opener (e.g. R"";)
        // is not a raw string, and treating it as one used to swallow
        // arbitrary trailing source — hiding real findings — while
        // hunting for a closer that never comes.
        std::string delim;
        bool valid = false;
        for (std::size_t i = 0; i <= 16; ++i) {
            const char d = cur.peek(1 + i);
            if (d == '(') {
                valid = true;
                break;
            }
            const bool dchar =
                i < 16 && d != '\0' && d != ' ' && d != ')' &&
                d != '\\' && d != '"' && d != '\t' && d != '\v' &&
                d != '\f' && d != '\n' && d != '\r';
            if (!dchar)
                break;
            delim += d;
        }
        cur.take(); // the quote
        if (!valid) {
            // Lex the opener as a cooked literal and resynchronize.
            lexCooked('"');
            return;
        }
        for (std::size_t i = 0; i < delim.size(); ++i)
            cur.take();
        cur.take(); // '('
        const std::string close = ")" + delim + "\"";
        while (!cur.done()) {
            if (cur.text.compare(cur.pos, close.size(), close) == 0) {
                for (std::size_t i = 0; i < close.size(); ++i)
                    cur.take();
                return;
            }
            cur.take();
        }
    };

    bool line_has_token = false;
    std::size_t token_line = 0;

    while (!cur.done()) {
        const char c = cur.peek();
        const std::size_t line = cur.line;
        if (line != token_line)
            line_has_token = false;

        if (c == '\n' || c == ' ' || c == '\t' || c == '\r' ||
            c == '\v' || c == '\f') {
            cur.take();
            continue;
        }

        // Preprocessor directive: only when '#' begins the logical
        // line; consumed whole (backslash continuations included).
        if (c == '#' && !line_has_token) {
            while (!cur.done()) {
                const char d = cur.take();
                if (d == '\\' && cur.peek() == '\n') {
                    cur.take();
                    continue;
                }
                if (d == '\n')
                    break;
            }
            continue;
        }

        if (c == '/' && cur.peek(1) == '/') {
            std::string comment;
            while (!cur.done() && cur.peek() != '\n')
                comment += cur.take();
            scanCommentDirectives(comment, line, out);
            continue;
        }

        if (c == '/' && cur.peek(1) == '*') {
            cur.take();
            cur.take();
            std::string comment;
            while (!cur.done()) {
                if (cur.peek() == '*' && cur.peek(1) == '/') {
                    cur.take();
                    cur.take();
                    break;
                }
                comment += cur.take();
            }
            scanCommentDirectives(comment, line, out);
            continue;
        }

        if (c == '"') {
            cur.take();
            lexCooked('"');
            push(TokenKind::String, "\"\"", line);
            line_has_token = true;
            token_line = line;
            continue;
        }

        if (c == '\'') {
            cur.take();
            lexCooked('\'');
            push(TokenKind::CharLit, "''", line);
            line_has_token = true;
            token_line = line;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
            std::string num;
            while (!cur.done()) {
                const char d = cur.peek();
                if (isIdentChar(d) || d == '.') {
                    num += cur.take();
                } else if (d == '\'' && isIdentChar(cur.peek(1))) {
                    num += cur.take(); // digit separator
                } else if ((d == '+' || d == '-') && !num.empty() &&
                           (num.back() == 'e' || num.back() == 'E' ||
                            num.back() == 'p' || num.back() == 'P')) {
                    num += cur.take();
                } else {
                    break;
                }
            }
            push(TokenKind::Number, std::move(num), line);
            line_has_token = true;
            token_line = line;
            continue;
        }

        if (isIdentStart(c)) {
            std::string ident;
            while (!cur.done() && isIdentChar(cur.peek()))
                ident += cur.take();
            // String prefix directly abutting a quote: the literal
            // swallows the "identifier" (R"(...)", L"...", ...).
            if (cur.peek() == '"' && isStringPrefix(ident)) {
                if (isRawPrefix(ident)) {
                    lexRaw();
                } else {
                    cur.take();
                    lexCooked('"');
                }
                push(TokenKind::String, "\"\"", line);
            } else {
                push(TokenKind::Identifier, std::move(ident), line);
            }
            line_has_token = true;
            token_line = line;
            continue;
        }

        // Punctuation; keep "::" and "->" whole (rules walk
        // qualified-name chains), everything else single-char so the
        // template-depth scans can count '<' / '>' one at a time.
        std::string punct(1, cur.take());
        if ((punct == ":" && cur.peek() == ':') ||
            (punct == "-" && cur.peek() == '>'))
            punct += cur.take();
        push(TokenKind::Punct, std::move(punct), line);
        line_has_token = true;
        token_line = line;
    }

    return out;
}

} // namespace v10::analysis
