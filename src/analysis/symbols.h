/**
 * @file
 * Per-file symbol extraction for the v10lint semantic rule pack.
 *
 * summarizeFile() runs a lightweight declaration parser over the
 * token stream and produces a FileSummary: the classes (with their
 * data members, mutexes, and V10_* annotations), free and member
 * function bodies (with their call sites, member-access sites,
 * RAII-lock scopes, and cycle-arithmetic sites), and mutable
 * globals. The SemanticModel stitches summaries from every scanned
 * file into a repo-wide call/containment graph.
 *
 * This is a heuristic C++ parser, deliberately so: it must never
 * fail, it tolerates everything the lexer tolerates, and when a
 * construct is too exotic to classify it drops the construct rather
 * than guessing (a lint pass prefers a missed edge over a false
 * one). The shapes it does understand — classes with trailing-
 * annotated members, in-class and out-of-class method definitions,
 * lambdas passed to the Simulator/ParallelExecutor scheduling
 * verbs, lock_guard/scoped_lock/unique_lock declarations — are the
 * shapes this repository is written in, and the fixture corpus
 * pins them.
 */

#ifndef V10_ANALYSIS_SYMBOLS_H
#define V10_ANALYSIS_SYMBOLS_H

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "analysis/source_file.h"

namespace v10::analysis {

/** Claims parsed from the src/common/annotations.h vocabulary. */
struct Annotations
{
    bool domainLocal = false;   ///< V10_DOMAIN_LOCAL
    bool sharedState = false;   ///< V10_SHARED_STATE
    bool couplingPoint = false; ///< V10_COUPLING_POINT
    std::string guardedBy;      ///< mutex named by V10_GUARDED_BY(m)

    bool
    any() const
    {
        return domainLocal || sharedState || couplingPoint ||
               !guardedBy.empty();
    }

    void
    merge(const Annotations &other)
    {
        domainLocal = domainLocal || other.domainLocal;
        sharedState = sharedState || other.sharedState;
        couplingPoint = couplingPoint || other.couplingPoint;
        if (guardedBy.empty())
            guardedBy = other.guardedBy;
    }
};

/** One class member: a data field or the name of a method. */
struct MemberSym
{
    std::string name;
    std::string type;     ///< joined declaration-head tokens
    std::size_t line = 0;
    bool isFunction = false;
    bool isStatic = false;
    bool isConst = false;     ///< const / constexpr / constinit
    bool isReference = false; ///< reference members cannot be reseated
    bool isMutex = false;     ///< *mutex-typed (the lock, not data)
    bool isFloat = false;     ///< float / double
    bool isCycles = false;    ///< Cycles-typed (CycleDelta is exempt)
    Annotations anno;
};

/** One class or struct definition. */
struct ClassSym
{
    std::string name; ///< unqualified
    std::size_t line = 0;
    Annotations anno; ///< a class-level claim covers every member
    std::vector<MemberSym> members;

    const MemberSym *
    member(const std::string &memberName) const
    {
        for (const MemberSym &m : members) {
            if (m.name == memberName)
                return &m;
        }
        return nullptr;
    }
};

/** Why a function body seeds the reachability analysis. */
enum class EntryKind {
    None,     ///< reached only through calls
    Event,    ///< lambda passed to at/after/every/schedule
    Parallel, ///< lambda passed to ParallelExecutor forEach/map
};

/** One call inside a function body. */
struct CallSite
{
    std::string callee;
    /** "" = bare or this-> call (resolves against the enclosing
     * class, then free functions); otherwise the receiver object's
     * name when it is a simple identifier. Unresolvable receivers
     * (chained expressions) are dropped at extraction. */
    std::string receiver;
    std::size_t line = 0;
};

/** One member/global access inside a function body. */
struct AccessSite
{
    std::string object; ///< "" = bare or this->; else object name
    std::string member;
    std::size_t line = 0;
    bool isWrite = false;
    bool fpAccumulate = false; ///< += -= *= /= compound assignment
    /** Mutex names (final identifier of each lock argument) of the
     * RAII guards alive at this access. */
    std::vector<std::string> locksHeld;
};

/** Two mutexes acquired nested, outer first. */
struct LockPair
{
    std::string first;
    std::string second;
    std::size_t line = 0;
};

/** A narrowing cast or narrow-typed init a cycle value flows into. */
struct CastSite
{
    std::string target;  ///< e.g. "int", "std::uint32_t"
    bool fromCast = true; ///< static_cast<> vs narrow-typed init
    std::size_t line = 0;
    std::vector<std::string> idents;  ///< bare identifiers in expr
    std::vector<std::string> callees; ///< called names in expr
};

/** One function body (free, member, or scheduling lambda). */
struct FunctionSym
{
    std::string ownerClass; ///< "" = free function
    std::string name;       ///< "<lambda>" suffix for entry lambdas
    std::size_t line = 0;
    EntryKind entry = EntryKind::None;
    bool isCtorDtor = false; ///< exempt from lock discipline
    bool returnsCycles = false;
    Annotations anno; ///< e.g. V10_COUPLING_POINT on the function
    std::vector<CallSite> calls;
    std::vector<AccessSite> accesses;
    std::vector<LockPair> lockPairs;
    std::vector<CastSite> casts;
    std::set<std::string> cycleLocals;      ///< Cycles locals/params
    std::set<std::string> sanctionedLocals; ///< CycleDelta-typed
};

/** A mutable namespace-scope variable. */
struct GlobalSym
{
    std::string name;
    std::string type;
    std::size_t line = 0;
    bool isFloat = false;
    Annotations anno;
};

/** Everything extracted from one file. */
struct FileSummary
{
    std::string path;
    std::vector<ClassSym> classes;
    std::vector<FunctionSym> functions;
    std::vector<GlobalSym> globals;
};

/** Extract the summary of @p file. Never fails. */
FileSummary summarizeFile(const SourceFile &file);

} // namespace v10::analysis

#endif // V10_ANALYSIS_SYMBOLS_H
