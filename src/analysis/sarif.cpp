#include "analysis/sarif.h"

#include <map>
#include <ostream>

#include "analysis/baseline.h"
#include "common/json.h"

namespace v10::analysis {

void
writeSarifReport(const LintReport &report, std::ostream &os)
{
    // The catalog, with indices for ruleIndex back-references.
    std::map<std::string, std::size_t> rule_index;
    const auto rules = makeDefaultRules();
    for (const auto &rule : rules)
        rule_index.emplace(rule->name(), rule_index.size());

    JsonWriter w(os);
    w.beginObject();
    w.kv("$schema",
         "https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json");
    w.kv("version", "2.1.0");
    w.key("runs");
    w.beginArray();
    w.beginObject();

    w.key("tool");
    w.beginObject();
    w.key("driver");
    w.beginObject();
    w.kv("name", "v10lint");
    w.kv("informationUri",
         "https://example.invalid/v10/docs/STATIC_ANALYSIS.md");
    w.kv("version", "2.0.0");
    w.key("rules");
    w.beginArray();
    for (const auto &rule : rules) {
        w.beginObject();
        w.kv("id", rule->name());
        w.key("shortDescription");
        w.beginObject();
        w.kv("text", rule->description());
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject(); // driver
    w.endObject(); // tool

    w.key("results");
    w.beginArray();
    for (const Finding &f : report.findings) {
        w.beginObject();
        w.kv("ruleId", f.rule);
        const auto it = rule_index.find(f.rule);
        if (it != rule_index.end())
            w.kv("ruleIndex",
                 static_cast<std::uint64_t>(it->second));
        w.kv("level", f.status == FindingStatus::New ? "warning"
                                                     : "note");
        w.key("message");
        w.beginObject();
        w.kv("text", f.message);
        w.endObject();
        w.key("locations");
        w.beginArray();
        w.beginObject();
        w.key("physicalLocation");
        w.beginObject();
        w.key("artifactLocation");
        w.beginObject();
        w.kv("uri", f.file);
        w.kv("uriBaseId", "SRCROOT");
        w.endObject();
        w.key("region");
        w.beginObject();
        w.kv("startLine", static_cast<std::uint64_t>(f.line));
        w.key("snippet");
        w.beginObject();
        w.kv("text", f.snippet);
        w.endObject();
        w.endObject(); // region
        w.endObject(); // physicalLocation
        w.endObject(); // location
        w.endArray();  // locations
        w.key("partialFingerprints");
        w.beginObject();
        w.kv("v10lintFindingHash/v1", findingHash(f));
        w.endObject();
        w.endObject(); // result
    }
    w.endArray(); // results

    w.endObject(); // run
    w.endArray();  // runs
    w.endObject();
    os << "\n";
}

} // namespace v10::analysis
