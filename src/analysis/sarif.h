/**
 * @file
 * SARIF 2.1.0 output for v10lint, so CI can upload findings as a
 * code-scanning artifact and editors can ingest them natively. One
 * run, one tool (the rule catalog embedded as reportingDescriptors),
 * one result per finding: new findings map to level "warning",
 * baselined ones to "note", and findingHash() rides along as a
 * partialFingerprint so downstream dedup survives line drift the
 * same way the baseline does.
 */

#ifndef V10_ANALYSIS_SARIF_H
#define V10_ANALYSIS_SARIF_H

#include <iosfwd>

#include "analysis/analyzer.h"

namespace v10::analysis {

/** Render @p report as a SARIF 2.1.0 document. */
void writeSarifReport(const LintReport &report, std::ostream &os);

} // namespace v10::analysis

#endif // V10_ANALYSIS_SARIF_H
