/**
 * @file
 * Determinism rules. V10's fairness/utilization comparisons (paper
 * §3.2–3.3) assume a run is bit-identical given its seed, serial or
 * under --jobs N; anything that samples ambient entropy — wall
 * clocks, libc RNGs, hash-table iteration order, pointer values used
 * as keys — silently corrupts a sweep instead of failing it.
 */

#include <set>
#include <string>

#include "analysis/rules_internal.h"

namespace v10::analysis {

namespace {

using detail::matchForward;
using detail::prevText;
using detail::tokenIs;

/** Ban libc/std RNG entry points outside src/common/rng.h. */
class RandomRule : public Rule
{
  public:
    const char *name() const override { return "determinism-random"; }

    const char *
    description() const override
    {
        return "bans rand()/std::random_device/mt19937 and friends; "
               "all randomness must flow through the seeded v10::Rng "
               "so runs replay bit-for-bit";
    }

    const PathFilter &
    paths() const override
    {
        static const PathFilter filter{{"src/", "tools/"},
                                       {"src/common/rng.h"}};
        return filter;
    }

    void
    check(const SourceFile &file, const RuleContext &,
          std::vector<Finding> &out) override
    {
        static const std::set<std::string> funcs = {
            "rand", "srand", "rand_r", "random", "srandom",
            "drand48", "lrand48", "random_shuffle",
        };
        static const std::set<std::string> types = {
            "random_device", "mt19937", "mt19937_64",
            "minstd_rand", "minstd_rand0", "default_random_engine",
            "knuth_b", "ranlux24", "ranlux48",
        };
        const auto &toks = file.tokens();
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!toks[i].isIdent())
                continue;
            const std::string &prev = prevText(toks, i);
            if (prev == "." || prev == "->")
                continue; // member access, not the libc symbol
            const bool call = funcs.count(toks[i].text) &&
                              tokenIs(toks, i + 1, "(");
            if (call || types.count(toks[i].text)) {
                out.push_back(finding(
                    *this, file, toks[i].line,
                    "non-deterministic RNG '" + toks[i].text +
                        "'; draw from the seeded v10::Rng "
                        "(src/common/rng.h) instead"));
            }
        }
    }
};

/** Ban wall-clock reads outside the CLI/bench timing paths. */
class TimeRule : public Rule
{
  public:
    const char *name() const override { return "determinism-time"; }

    const char *
    description() const override
    {
        return "bans *_clock::now(), time(), gettimeofday() in "
               "simulation code; model time is Simulator::now() — "
               "wall time belongs to the CLI/bench timing paths only";
    }

    const PathFilter &
    paths() const override
    {
        static const PathFilter filter{{"src/"}, {}};
        return filter;
    }

    void
    check(const SourceFile &file, const RuleContext &,
          std::vector<Finding> &out) override
    {
        static const std::set<std::string> funcs = {
            "time", "clock", "gettimeofday", "clock_gettime",
            "localtime", "gmtime", "ftime", "timespec_get",
        };
        static const std::set<std::string> clocks = {
            "steady_clock", "system_clock", "high_resolution_clock",
        };
        const auto &toks = file.tokens();
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!toks[i].isIdent())
                continue;
            const std::string &prev = prevText(toks, i);
            if (funcs.count(toks[i].text) &&
                tokenIs(toks, i + 1, "(") && prev != "." &&
                prev != "->") {
                out.push_back(finding(
                    *this, file, toks[i].line,
                    "wall-clock call '" + toks[i].text +
                        "()' in simulation code; use the simulated "
                        "clock (Simulator::now()) or move timing to "
                        "the CLI layer"));
            }
            if (clocks.count(toks[i].text) &&
                tokenIs(toks, i + 1, "::") &&
                tokenIs(toks, i + 2, "now")) {
                out.push_back(finding(
                    *this, file, toks[i].line,
                    "wall-clock read '" + toks[i].text +
                        "::now()' in simulation code; results must "
                        "not depend on host time"));
            }
        }
    }
};

/**
 * Flag unordered containers in result-affecting directories. The
 * declaration alone is a (weak) finding — someone will eventually
 * iterate it; iteration (range-for or .begin()) over a name declared
 * unordered in the same file is a (strong) finding.
 */
class UnorderedRule : public Rule
{
  public:
    const char *
    name() const override
    {
        return "determinism-unordered";
    }

    const char *
    description() const override
    {
        return "flags std::unordered_map/set in result-affecting "
               "code (sched/sim/npu/metrics/serve/trace): iteration "
               "order is "
               "unspecified and varies across libstdc++ versions — "
               "use std::map or sorted iteration, or suppress with a "
               "rationale proving the site is order-insensitive";
    }

    const PathFilter &
    paths() const override
    {
        static const PathFilter filter{
            {"src/sched/", "src/sim/", "src/npu/", "src/metrics/",
             "src/serve/", "src/trace/", "src/workload/",
             "src/collocate/"},
            {}};
        return filter;
    }

    void
    check(const SourceFile &file, const RuleContext &,
          std::vector<Finding> &out) override
    {
        static const std::set<std::string> unordered = {
            "unordered_map", "unordered_set", "unordered_multimap",
            "unordered_multiset",
        };
        const auto &toks = file.tokens();

        // Pass 1: flag every unordered type use; remember declared
        // variable/member names for the iteration pass.
        std::set<std::string> names;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!toks[i].isIdent() || !unordered.count(toks[i].text))
                continue;
            out.push_back(finding(
                *this, file, toks[i].line,
                "'" + toks[i].text +
                    "' in result-affecting code; its iteration "
                    "order is unspecified — use std::map or sort "
                    "before iterating"));
            if (!tokenIs(toks, i + 1, "<"))
                continue;
            const std::size_t close = matchForward(toks, i + 1);
            if (close + 1 < toks.size() &&
                toks[close + 1].isIdent()) {
                const std::string &after =
                    close + 2 < toks.size() ? toks[close + 2].text
                                            : std::string(";");
                if (after == ";" || after == "=" || after == "{" ||
                    after == ",")
                    names.insert(toks[close + 1].text);
            }
        }

        // Pass 2: iteration over a name declared unordered here.
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].is("for") && tokenIs(toks, i + 1, "(")) {
                const std::size_t close = matchForward(toks, i + 1);
                bool seen_colon = false;
                for (std::size_t j = i + 2; j < close; ++j) {
                    if (toks[j].is(":"))
                        seen_colon = true;
                    else if (seen_colon && toks[j].isIdent() &&
                             names.count(toks[j].text)) {
                        out.push_back(finding(
                            *this, file, toks[i].line,
                            "range-for over unordered container '" +
                                toks[j].text +
                                "' visits elements in unspecified "
                                "order"));
                        break;
                    }
                }
            }
            if (toks[i].isIdent() && names.count(toks[i].text) &&
                (tokenIs(toks, i + 1, ".") ||
                 tokenIs(toks, i + 1, "->")) &&
                i + 2 < toks.size() &&
                (toks[i + 2].is("begin") || toks[i + 2].is("cbegin"))) {
                out.push_back(finding(
                    *this, file, toks[i].line,
                    "iterator walk over unordered container '" +
                        toks[i].text +
                        "' visits elements in unspecified order"));
            }
        }
    }
};

/**
 * Flag ordered containers keyed by pointers: the order exists, but
 * it is allocation-address order, which differs run to run.
 */
class PointerKeyRule : public Rule
{
  public:
    const char *
    name() const override
    {
        return "determinism-pointer-key";
    }

    const char *
    description() const override
    {
        return "flags std::map/set/priority_queue keyed by a raw "
               "pointer: address order changes run to run — key by a "
               "stable id (WorkloadId, FuId, dense index) instead";
    }

    const PathFilter &
    paths() const override
    {
        static const PathFilter filter{{"src/"}, {}};
        return filter;
    }

    void
    check(const SourceFile &file, const RuleContext &,
          std::vector<Finding> &out) override
    {
        static const std::set<std::string> keyed = {
            "map", "set", "multimap", "multiset", "priority_queue",
        };
        const auto &toks = file.tokens();
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!toks[i].isIdent() || !keyed.count(toks[i].text) ||
                !tokenIs(toks, i + 1, "<"))
                continue;
            const std::size_t close = matchForward(toks, i + 1);
            if (close >= toks.size())
                continue;
            // The first template argument ends at a depth-1 comma
            // (or the closing '>' for set-like containers).
            std::size_t arg_end = close;
            std::size_t depth = 0;
            for (std::size_t j = i + 1; j < close; ++j) {
                if (toks[j].is("<") || toks[j].is("(")) {
                    ++depth;
                } else if (toks[j].is(">") || toks[j].is(")")) {
                    --depth;
                } else if (toks[j].is(",") && depth == 1) {
                    arg_end = j;
                    break;
                }
            }
            if (arg_end > i + 2 && toks[arg_end - 1].is("*")) {
                out.push_back(finding(
                    *this, file, toks[i].line,
                    "'" + toks[i].text +
                        "' keyed by a raw pointer orders elements "
                        "by allocation address; key by a stable id "
                        "instead"));
            }
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
makeDeterminismRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<RandomRule>());
    rules.push_back(std::make_unique<TimeRule>());
    rules.push_back(std::make_unique<UnorderedRule>());
    rules.push_back(std::make_unique<PointerKeyRule>());
    return rules;
}

} // namespace v10::analysis
