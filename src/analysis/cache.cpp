#include "analysis/cache.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.h"

namespace v10::analysis {

namespace {

std::uint64_t
fnv1a(const std::string &data, std::uint64_t h)
{
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h;
}

std::string
cachePath(const std::string &cacheDir)
{
    return (std::filesystem::path(cacheDir) / "v10lint-cache.json")
        .string();
}

} // namespace

std::uint64_t
lintContentHash(const std::string &text)
{
    return fnv1a(text, 0xCBF29CE484222325ull);
}

std::string
lintCacheKey(
    const std::vector<std::pair<std::string, std::uint64_t>>
        &fileHashes,
    const LintOptions &options)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    h = fnv1a(std::to_string(kLintCacheVersion), h);
    for (const std::string &rule : options.ruleFilter)
        h = fnv1a("|rule=" + rule, h);
    for (const auto &[path, hash] : fileHashes) {
        h = fnv1a("|" + path + "=", h);
        std::ostringstream fh;
        fh << std::hex << hash;
        h = fnv1a(fh.str(), h);
    }
    std::ostringstream os;
    os << std::hex << h;
    return os.str();
}

bool
loadLintCache(const std::string &cacheDir, const std::string &key,
              LintReport *out)
{
    std::ifstream is(cachePath(cacheDir), std::ios::binary);
    if (!is)
        return false;
    std::ostringstream buf;
    buf << is.rdbuf();

    JsonValue doc;
    if (!JsonValue::parse(buf.str(), &doc))
        return false;
    const JsonValue *version = doc.find("version");
    const JsonValue *cached_key = doc.find("key");
    const JsonValue *findings = doc.find("findings");
    const JsonValue *scanned = doc.find("files_scanned");
    const JsonValue *suppressed = doc.find("suppressed_inline");
    if (version == nullptr || !version->isNumber() ||
        static_cast<int>(version->number) != kLintCacheVersion ||
        cached_key == nullptr || !cached_key->isString() ||
        cached_key->str != key || findings == nullptr ||
        !findings->isArray() || scanned == nullptr ||
        !scanned->isNumber() || suppressed == nullptr ||
        !suppressed->isNumber())
        return false;

    LintReport report;
    report.filesScanned =
        static_cast<std::size_t>(scanned->number);
    report.suppressedInline =
        static_cast<std::size_t>(suppressed->number);
    for (const JsonValue &e : findings->array) {
        const JsonValue *rule = e.find("rule");
        const JsonValue *file = e.find("file");
        const JsonValue *line = e.find("line");
        const JsonValue *message = e.find("message");
        const JsonValue *snippet = e.find("snippet");
        if (rule == nullptr || !rule->isString() ||
            file == nullptr || !file->isString() ||
            line == nullptr || !line->isNumber() ||
            message == nullptr || !message->isString() ||
            snippet == nullptr || !snippet->isString())
            return false;
        Finding f;
        f.rule = rule->str;
        f.file = file->str;
        f.line = static_cast<std::size_t>(line->number);
        f.message = message->str;
        f.snippet = snippet->str;
        report.findings.push_back(std::move(f));
    }
    report.cacheHit = true;
    *out = std::move(report);
    return true;
}

void
storeLintCache(const std::string &cacheDir, const std::string &key,
               const LintReport &report)
{
    std::error_code ec;
    std::filesystem::create_directories(cacheDir, ec);
    std::ofstream os(cachePath(cacheDir), std::ios::binary);
    if (!os)
        return;
    JsonWriter w(os);
    w.beginObject();
    w.kv("tool", "v10lint-cache");
    w.kv("version", kLintCacheVersion);
    w.kv("key", key);
    w.kv("files_scanned",
         static_cast<std::uint64_t>(report.filesScanned));
    w.kv("suppressed_inline",
         static_cast<std::uint64_t>(report.suppressedInline));
    w.key("findings");
    w.beginArray();
    for (const Finding &f : report.findings) {
        w.beginObject();
        w.kv("rule", f.rule);
        w.kv("file", f.file);
        w.kv("line", static_cast<std::uint64_t>(f.line));
        w.kv("message", f.message);
        w.kv("snippet", f.snippet);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace v10::analysis
