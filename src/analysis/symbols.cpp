#include "analysis/symbols.h"

#include <algorithm>

#include "analysis/rules_internal.h"

namespace v10::analysis {

namespace {

using detail::matchForward;

const std::set<std::string> &
keywords()
{
    static const std::set<std::string> kw = {
        "alignas",      "alignof",     "asm",
        "auto",         "bool",        "break",
        "case",         "catch",       "char",
        "char16_t",     "char32_t",    "char8_t",
        "class",        "co_await",    "co_return",
        "co_yield",     "concept",     "const",
        "const_cast",   "consteval",   "constexpr",
        "constinit",    "continue",    "decltype",
        "default",      "delete",      "do",
        "double",       "dynamic_cast","else",
        "enum",         "explicit",    "export",
        "extern",       "false",       "final",
        "float",        "for",         "friend",
        "goto",         "if",          "inline",
        "int",          "long",        "mutable",
        "namespace",    "new",         "noexcept",
        "nullptr",      "operator",    "override",
        "private",      "protected",   "public",
        "register",     "reinterpret_cast",
        "requires",     "return",      "short",
        "signed",       "sizeof",      "static",
        "static_assert","static_cast", "struct",
        "switch",       "template",    "this",
        "thread_local", "throw",       "true",
        "try",          "typedef",     "typeid",
        "typename",     "union",       "unsigned",
        "using",        "virtual",     "void",
        "volatile",     "wchar_t",     "while",
    };
    return kw;
}

bool
isKeyword(const std::string &s)
{
    return keywords().count(s) > 0;
}

/** The scheduling verbs whose lambda argument is an entry point. */
EntryKind
entryKindOfCall(const std::string &callee)
{
    if (callee == "at" || callee == "after" || callee == "every" ||
        callee == "schedule")
        return EntryKind::Event;
    if (callee == "forEach" || callee == "map")
        return EntryKind::Parallel;
    return EntryKind::None;
}

bool
isRaiiLock(const std::string &name)
{
    return name == "lock_guard" || name == "scoped_lock" ||
           name == "unique_lock" || name == "shared_lock";
}

/** Integer types too small (or wrongly signed) to hold a Cycles
 * value; CycleDelta is the sanctioned signed cycle type. */
bool
isNarrowCycleTarget(const std::vector<std::string> &target)
{
    static const std::set<std::string> narrow = {
        "int",      "short",    "signed",   "unsigned",
        "int8_t",   "int16_t",  "int32_t",  "int64_t",
        "uint8_t",  "uint16_t", "uint32_t", "long",
        "ptrdiff_t",
    };
    bool hit = false;
    for (const std::string &t : target) {
        if (t == "CycleDelta" || t == "Cycles" || t == "uint64_t" ||
            t == "size_t" || t == "uintmax_t")
            return false;
        if (narrow.count(t) > 0)
            hit = true;
    }
    return hit;
}

/** The extractor: one pass, recursive over brace scopes. */
class Extractor
{
  public:
    explicit Extractor(const SourceFile &file)
        : toks_(file.tokens())
    {
        out_.path = file.path();
    }

    FileSummary
    run()
    {
        parseNamespaceScope(0, toks_.size(), nullptr);
        return std::move(out_);
    }

  private:
    const std::vector<Token> &toks_;
    FileSummary out_;

    const std::string &
    text(std::size_t i) const
    {
        static const std::string none;
        return i < toks_.size() ? toks_[i].text : none;
    }

    bool
    is(std::size_t i, const char *t) const
    {
        return i < toks_.size() && toks_[i].text == t;
    }

    std::size_t
    lineOf(std::size_t i) const
    {
        return i < toks_.size() ? toks_[i].line : 0;
    }

    bool
    isIdent(std::size_t i) const
    {
        return i < toks_.size() && toks_[i].isIdent();
    }

    /** matchForward clamped to the stream end. */
    std::size_t
    closeOf(std::size_t open) const
    {
        const std::size_t c = matchForward(toks_, open);
        return c < toks_.size() ? c : toks_.size() - 1;
    }

    // ----------------------------------------------------------
    // Statement scanning shared by namespace and class scope.
    // ----------------------------------------------------------

    struct Statement
    {
        /** Token indices with V10_* annotations stripped out. */
        std::vector<std::size_t> idx;
        Annotations anno;
        bool hasTopParen = false;
        bool sawEq = false;
        /** Position in idx where '=' / brace-init starts (idx.size()
         * when none): the declarator name sits before it. */
        std::size_t declEnd = 0;
        /** Token index of a function body's '{', or npos. */
        std::size_t bodyBrace = static_cast<std::size_t>(-1);
        /** First token index after the statement. */
        std::size_t next = 0;
    };

    /** True when the '{' at @p brace ends a function header: the
     * statement had a top-level paren group and everything between
     * the last group and the brace is header trivia. */
    bool
    looksLikeBody(const Statement &st) const
    {
        if (!st.hasTopParen || st.sawEq)
            return false;
        // Walk idx backwards to the last ')' and vet the tail.
        std::size_t last = st.idx.size();
        while (last > 0 && text(st.idx[last - 1]) != ")")
            --last;
        if (last == 0)
            return false;
        for (std::size_t k = last; k < st.idx.size(); ++k) {
            const std::string &t = text(st.idx[k]);
            if (t == "const" || t == "noexcept" || t == "override" ||
                t == "final" || t == "->" || t == "::" || t == "<" ||
                t == ">" || t == "," || t == "&" || t == "*" ||
                toks_[st.idx[k]].isIdent())
                continue;
            return false;
        }
        return true;
    }

    /**
     * Scan one declaration-ish statement starting at @p i: collect
     * its tokens (jumping over balanced (), <>, [] groups and
     * initializers), strip V10_* annotations into st.anno, and stop
     * at ';' or at a function body's '{'.
     */
    Statement
    scanStatement(std::size_t i, std::size_t end)
    {
        Statement st;
        std::size_t j = i;
        bool decl_end_set = false;
        while (j < end) {
            const std::string &t = text(j);
            if (isIdent(j) && t.rfind("V10_", 0) == 0) {
                st.anno.domainLocal |= t == "V10_DOMAIN_LOCAL";
                st.anno.sharedState |= t == "V10_SHARED_STATE";
                st.anno.couplingPoint |= t == "V10_COUPLING_POINT";
                if (t == "V10_GUARDED_BY" && is(j + 1, "(")) {
                    const std::size_t close = closeOf(j + 1);
                    // The mutex name: last identifier in the args.
                    for (std::size_t k = j + 2; k < close; ++k) {
                        if (isIdent(k))
                            st.anno.guardedBy = text(k);
                    }
                    j = close + 1;
                } else {
                    ++j;
                }
                continue;
            }
            if (t == "(") {
                if (!st.sawEq)
                    st.hasTopParen = true;
                const std::size_t close = closeOf(j);
                for (std::size_t k = j; k <= close; ++k)
                    st.idx.push_back(k);
                j = close + 1;
                continue;
            }
            if (t == "<") {
                const std::size_t close = matchForward(toks_, j);
                if (close < toks_.size() && close < end) {
                    for (std::size_t k = j; k <= close; ++k)
                        st.idx.push_back(k);
                    j = close + 1;
                } else {
                    st.idx.push_back(j++);
                }
                continue;
            }
            if (t == "[") {
                j = closeOf(j) + 1; // attribute or array extent
                continue;
            }
            if (t == "=") {
                if (!decl_end_set) {
                    st.declEnd = st.idx.size();
                    decl_end_set = true;
                }
                st.sawEq = true;
                st.idx.push_back(j++);
                continue;
            }
            if (t == "{") {
                if (looksLikeBody(st)) {
                    st.bodyBrace = j;
                    st.next = j;
                    if (!decl_end_set)
                        st.declEnd = st.idx.size();
                    return st;
                }
                // Brace initializer (member init or = { ... }).
                if (!decl_end_set) {
                    st.declEnd = st.idx.size();
                    decl_end_set = true;
                }
                j = closeOf(j) + 1;
                continue;
            }
            if (t == ";") {
                st.next = j + 1;
                if (!decl_end_set)
                    st.declEnd = st.idx.size();
                return st;
            }
            if (t == "}") {
                // Malformed statement (we over-ran the scope).
                st.next = j;
                if (!decl_end_set)
                    st.declEnd = st.idx.size();
                return st;
            }
            st.idx.push_back(j++);
        }
        st.next = j;
        if (!decl_end_set)
            st.declEnd = st.idx.size();
        return st;
    }

    /** The declarator: last identifier in idx[0, declEnd). */
    std::size_t
    declaratorOf(const Statement &st) const
    {
        for (std::size_t k = st.declEnd; k > 0; --k) {
            if (isIdent(st.idx[k - 1]) &&
                !isKeyword(text(st.idx[k - 1])))
                return st.idx[k - 1];
        }
        return static_cast<std::size_t>(-1);
    }

    /** Name token directly before the first top-level '(': the
     * function declarator (param contents excluded by walking the
     * raw indices and skipping the group bodies). */
    std::size_t
    functionNameOf(const Statement &st, std::size_t *paren) const
    {
        std::size_t last_ident = static_cast<std::size_t>(-1);
        for (std::size_t k = 0; k < st.idx.size(); ++k) {
            const std::size_t ti = st.idx[k];
            const std::string &t = text(ti);
            if (t == "(") {
                if (paren != nullptr)
                    *paren = ti;
                return last_ident;
            }
            if (isIdent(ti) && !isKeyword(t))
                last_ident = ti;
        }
        return static_cast<std::size_t>(-1);
    }

    // ----------------------------------------------------------
    // Scope parsers.
    // ----------------------------------------------------------

    void
    parseNamespaceScope(std::size_t i, std::size_t end,
                        const ClassSym *unused)
    {
        (void)unused;
        while (i < end) {
            const std::string &t = text(i);
            if (t == ";" || t == "}") {
                ++i;
                continue;
            }
            if (t == "namespace") {
                std::size_t j = i + 1;
                while (j < end && !is(j, "{") && !is(j, ";"))
                    ++j;
                if (is(j, "{")) {
                    const std::size_t close = closeOf(j);
                    parseNamespaceScope(j + 1, close, nullptr);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
                continue;
            }
            if (t == "template") {
                i = is(i + 1, "<") ? closeOf(i + 1) + 1 : i + 1;
                continue;
            }
            if (t == "using" || t == "typedef" ||
                t == "static_assert" || t == "friend") {
                while (i < end && !is(i, ";"))
                    ++i;
                continue;
            }
            if (t == "enum") {
                i = skipEnum(i, end);
                continue;
            }
            if (t == "class" || t == "struct" || t == "union") {
                if (classDefAt(i, end)) {
                    i = parseClass(i, end);
                } else {
                    // Forward declaration or a specialization head
                    // (`class SmallFn<R(Args...)>`); not a variable.
                    while (i < end && !is(i, ";") && !is(i, "{"))
                        ++i;
                    i = is(i, "{") ? closeOf(i) + 1 : i + 1;
                }
                continue;
            }
            // Generic: free-function definition, declaration, or a
            // namespace-scope variable.
            Statement st = scanStatement(i, end);
            if (st.bodyBrace != static_cast<std::size_t>(-1)) {
                i = parseFunctionFromStatement(st, "");
                continue;
            }
            if (!st.hasTopParen && !st.idx.empty())
                recordGlobal(st);
            i = std::max(st.next, i + 1);
        }
    }

    /** True when the class-key at @p i opens a definition (not a
     * forward declaration or a template parameter). */
    bool
    classDefAt(std::size_t i, std::size_t end) const
    {
        std::size_t j = i + 1;
        // Skip annotations and attributes in the class head.
        while (j < end) {
            const std::string &t = text(j);
            if (isIdent(j) && t.rfind("V10_", 0) == 0) {
                j = is(j + 1, "(") ? closeOf(j + 1) + 1 : j + 1;
                continue;
            }
            if (t == "[") {
                j = closeOf(j) + 1;
                continue;
            }
            break;
        }
        if (!isIdent(j) || isKeyword(text(j)))
            return false;
        const std::string &after = text(j + 1);
        return after == "{" || after == ":" || after == "final";
    }

    std::size_t
    parseClass(std::size_t i, std::size_t end)
    {
        ClassSym cls;
        cls.line = lineOf(i);
        std::size_t j = i + 1;
        while (j < end) {
            const std::string &t = text(j);
            if (isIdent(j) && t.rfind("V10_", 0) == 0) {
                cls.anno.domainLocal |= t == "V10_DOMAIN_LOCAL";
                cls.anno.sharedState |= t == "V10_SHARED_STATE";
                cls.anno.couplingPoint |= t == "V10_COUPLING_POINT";
                j = is(j + 1, "(") ? closeOf(j + 1) + 1 : j + 1;
                continue;
            }
            if (t == "[") {
                j = closeOf(j) + 1;
                continue;
            }
            break;
        }
        if (isIdent(j))
            cls.name = text(j);
        // Skip the base-clause to the body brace.
        while (j < end && !is(j, "{") && !is(j, ";")) {
            if (is(j, "<")) {
                const std::size_t close = matchForward(toks_, j);
                j = close < end ? close + 1 : j + 1;
            } else {
                ++j;
            }
        }
        if (!is(j, "{"))
            return j + 1; // forward declaration after all
        const std::size_t close = closeOf(j);
        const std::size_t cls_index = out_.classes.size();
        out_.classes.push_back(std::move(cls));
        parseClassBody(cls_index, j + 1, close);
        return close + 1;
    }

    void
    parseClassBody(std::size_t clsIndex, std::size_t i,
                   std::size_t end)
    {
        while (i < end) {
            const std::string &t = text(i);
            if (t == ";" || t == "}") {
                ++i;
                continue;
            }
            if ((t == "public" || t == "private" ||
                 t == "protected") &&
                is(i + 1, ":")) {
                i += 2;
                continue;
            }
            if (t == "template") {
                i = is(i + 1, "<") ? closeOf(i + 1) + 1 : i + 1;
                continue;
            }
            if (t == "using" || t == "typedef" ||
                t == "static_assert" || t == "friend") {
                while (i < end && !is(i, ";"))
                    ++i;
                continue;
            }
            if (t == "enum") {
                i = skipEnum(i, end);
                continue;
            }
            if (t == "class" || t == "struct" || t == "union") {
                if (classDefAt(i, end)) {
                    i = parseClass(i, end);
                } else {
                    while (i < end && !is(i, ";") && !is(i, "{"))
                        ++i;
                    i = is(i, "{") ? closeOf(i) + 1 : i + 1;
                }
                continue;
            }
            Statement st = scanStatement(i, end);
            const std::string owner = out_.classes[clsIndex].name;
            if (st.bodyBrace != static_cast<std::size_t>(-1)) {
                i = parseFunctionFromStatement(st, owner);
                continue;
            }
            if (!st.idx.empty())
                recordMember(clsIndex, st);
            i = std::max(st.next, i + 1);
        }
    }

    std::size_t
    skipEnum(std::size_t i, std::size_t end) const
    {
        std::size_t j = i;
        while (j < end && !is(j, "{") && !is(j, ";"))
            ++j;
        if (is(j, "{"))
            j = closeOf(j) + 1;
        while (j < end && !is(j, ";"))
            ++j;
        return j + 1;
    }

    // ----------------------------------------------------------
    // Declaration recording.
    // ----------------------------------------------------------

    /** Head classification shared by members and globals. */
    struct HeadInfo
    {
        std::string type;
        bool isStatic = false;
        bool isConst = false;
        bool isReference = false;
        bool isMutex = false;
        bool isFloat = false;
        bool isCycles = false;
    };

    HeadInfo
    classifyHead(const Statement &st, std::size_t declTok) const
    {
        HeadInfo h;
        for (std::size_t k = 0; k < st.declEnd; ++k) {
            const std::size_t ti = st.idx[k];
            if (ti == declTok)
                break;
            const std::string &t = text(ti);
            if (t == "static") {
                h.isStatic = true;
                continue;
            }
            if (t == "const" || t == "constexpr" ||
                t == "constinit") {
                h.isConst = true;
                continue;
            }
            if (t == "mutable" || t == "inline" ||
                t == "thread_local")
                continue;
            if (t == "&") {
                h.isReference = true;
                continue;
            }
            if (t.find("mutex") != std::string::npos)
                h.isMutex = true;
            if (t == "double" || t == "float")
                h.isFloat = true;
            if (t == "Cycles")
                h.isCycles = true;
            if (!h.type.empty())
                h.type += ' ';
            h.type += t;
        }
        return h;
    }

    void
    recordMember(std::size_t clsIndex, const Statement &st)
    {
        MemberSym m;
        m.anno = st.anno;
        if (st.hasTopParen) {
            // A method declaration (definitions took the body path).
            std::size_t paren = 0;
            const std::size_t name = functionNameOf(st, &paren);
            if (name == static_cast<std::size_t>(-1))
                return;
            m.isFunction = true;
            m.name = text(name);
            m.line = lineOf(name);
            out_.classes[clsIndex].members.push_back(std::move(m));
            return;
        }
        const std::size_t decl = declaratorOf(st);
        if (decl == static_cast<std::size_t>(-1))
            return;
        const HeadInfo h = classifyHead(st, decl);
        if (h.type.empty())
            return; // a lone identifier is not a declaration
        m.name = text(decl);
        m.line = lineOf(decl);
        m.type = h.type;
        m.isStatic = h.isStatic;
        m.isConst = h.isConst;
        m.isReference = h.isReference;
        m.isMutex = h.isMutex;
        m.isFloat = h.isFloat;
        m.isCycles = h.isCycles;
        out_.classes[clsIndex].members.push_back(std::move(m));
    }

    void
    recordGlobal(const Statement &st)
    {
        const std::size_t decl = declaratorOf(st);
        if (decl == static_cast<std::size_t>(-1))
            return;
        const HeadInfo h = classifyHead(st, decl);
        // Only mutable variables matter; consts and types we cannot
        // classify are dropped.
        if (h.type.empty() || h.isConst || h.isReference)
            return;
        GlobalSym g;
        g.name = text(decl);
        g.type = h.type;
        g.line = lineOf(decl);
        g.isFloat = h.isFloat;
        g.anno = st.anno;
        out_.globals.push_back(std::move(g));
    }

    // ----------------------------------------------------------
    // Function bodies.
    // ----------------------------------------------------------

    /** Parse the header in @p st, then its body; returns the index
     * after the body's closing brace. */
    std::size_t
    parseFunctionFromStatement(const Statement &st,
                               const std::string &enclosingClass)
    {
        FunctionSym fn;
        fn.anno = st.anno;
        std::size_t paren = 0;
        const std::size_t name = functionNameOf(st, &paren);
        if (name == static_cast<std::size_t>(-1)) {
            // Unclassifiable header; still walk the braces so the
            // scan resynchronizes.
            return closeOf(st.bodyBrace) + 1;
        }
        fn.name = text(name);
        fn.line = lineOf(name);
        fn.ownerClass = enclosingClass;
        // Out-of-class definition: Class :: name.
        if (text(name - 1) == "::" && isIdent(name - 2))
            fn.ownerClass = text(name - 2);
        if (text(name - 1) == "~" ||
            (!fn.ownerClass.empty() && fn.name == fn.ownerClass))
            fn.isCtorDtor = true;
        // Return type: any Cycles token before the declarator.
        for (std::size_t k = 0; k < st.idx.size(); ++k) {
            if (st.idx[k] >= name)
                break;
            if (text(st.idx[k]) == "Cycles")
                fn.returnsCycles = true;
        }
        // Cycle-typed parameters.
        const std::size_t paren_close = closeOf(paren);
        for (std::size_t k = paren + 1; k < paren_close; ++k) {
            const std::string &t = text(k);
            if (t != "Cycles" && t != "CycleDelta")
                continue;
            std::size_t p = k + 1;
            while (is(p, "&") || is(p, "*") || is(p, "const"))
                ++p;
            if (isIdent(p) && !isKeyword(text(p))) {
                if (t == "Cycles")
                    fn.cycleLocals.insert(text(p));
                else
                    fn.sanctionedLocals.insert(text(p));
            }
        }
        const std::size_t body_close = closeOf(st.bodyBrace);
        std::vector<std::string> locks;
        parseBody(fn, st.bodyBrace + 1, body_close, locks);
        out_.functions.push_back(std::move(fn));
        return body_close + 1;
    }

    /** Last identifier inside [begin, end): the mutex a lock
     * argument names (`other.mu_` -> "mu_"). */
    std::string
    lastIdentIn(std::size_t begin, std::size_t end) const
    {
        std::string last;
        for (std::size_t k = begin; k < end; ++k) {
            if (isIdent(k) && !isKeyword(text(k)))
                last = text(k);
        }
        return last;
    }

    /**
     * Scan a function (or lambda) body in [i, end).
     * @p locks is the RAII-guard stack shared with enclosing scopes
     * (a lambda executed inline inherits the guards of its parent).
     */
    void
    parseBody(FunctionSym &fn, std::size_t i, std::size_t end,
              std::vector<std::string> &locks)
    {
        struct EnclosingCall
        {
            std::string callee;
            std::size_t close;
        };
        std::vector<EnclosingCall> call_stack;
        // Each nested '{' remembers how many guards were alive when
        // it opened, so '}' can drop the guards it introduced.
        std::vector<std::size_t> brace_marks;

        while (i < end) {
            const std::string &t = text(i);
            while (!call_stack.empty() && i > call_stack.back().close)
                call_stack.pop_back();

            if (t == "{") {
                brace_marks.push_back(locks.size());
                ++i;
                continue;
            }
            if (t == "}") {
                if (!brace_marks.empty()) {
                    locks.resize(brace_marks.back());
                    brace_marks.pop_back();
                }
                ++i;
                continue;
            }

            // Lambda introducer?
            if (t == "[") {
                const std::string &prev = text(i - 1);
                const bool intro = prev == "(" || prev == "," ||
                                   prev == "=" || prev == "return" ||
                                   prev == "{" || prev == ";";
                if (!intro) {
                    ++i; // subscript or attribute: just punctuation
                    continue;
                }
                std::size_t j = closeOf(i) + 1; // past the capture
                if (is(j, "("))
                    j = closeOf(j) + 1; // past the parameter list
                while (is(j, "mutable") || is(j, "noexcept") ||
                       is(j, "->") || is(j, "::") ||
                       (isIdent(j) && !isKeyword(text(j))) ||
                       is(j, "<") || is(j, ">") || is(j, "&") ||
                       is(j, "*"))
                    ++j; // specifiers / trailing return type
                if (!is(j, "{")) {
                    ++i;
                    continue;
                }
                const std::size_t body_close = closeOf(j);
                const EntryKind kind =
                    call_stack.empty()
                        ? EntryKind::None
                        : entryKindOfCall(call_stack.back().callee);
                if (kind == EntryKind::None) {
                    // Synchronous helper lambda: fold its body into
                    // the enclosing function.
                    parseBody(fn, j + 1, body_close, locks);
                } else {
                    FunctionSym lam;
                    lam.ownerClass = fn.ownerClass;
                    lam.name = fn.name + "::<lambda>";
                    lam.line = lineOf(i);
                    lam.entry = kind;
                    lam.cycleLocals = fn.cycleLocals;
                    lam.sanctionedLocals = fn.sanctionedLocals;
                    std::vector<std::string> fresh_locks;
                    parseBody(lam, j + 1, body_close, fresh_locks);
                    out_.functions.push_back(std::move(lam));
                }
                i = body_close + 1;
                continue;
            }

            if (!isIdent(i)) {
                ++i;
                continue;
            }

            // RAII guard declaration:
            //   [std::]lock_guard[<...>] name (args);   (or {args})
            if (isRaiiLock(t)) {
                std::size_t j = i + 1;
                if (is(j, "<"))
                    j = closeOf(j) + 1;
                if (isIdent(j) &&
                    (is(j + 1, "(") || is(j + 1, "{"))) {
                    const std::size_t open = j + 1;
                    const std::size_t close = closeOf(open);
                    std::size_t arg_begin = open + 1;
                    std::vector<std::string> acquired;
                    for (std::size_t k = open + 1; k <= close; ++k) {
                        if (k == close || is(k, ",")) {
                            const std::string mx =
                                lastIdentIn(arg_begin, k);
                            if (!mx.empty())
                                acquired.push_back(mx);
                            arg_begin = k + 1;
                        } else if (is(k, "(") || is(k, "<")) {
                            k = closeOf(k);
                        }
                    }
                    for (const std::string &mx : acquired) {
                        for (const std::string &held : locks) {
                            if (held != mx)
                                fn.lockPairs.push_back(
                                    {held, mx, lineOf(open)});
                        }
                        locks.push_back(mx);
                    }
                    i = close + 1;
                    continue;
                }
                ++i;
                continue;
            }

            // static_cast<T>(expr): record cycle-narrowing hazards.
            if (t == "static_cast" && is(i + 1, "<")) {
                const std::size_t tclose = closeOf(i + 1);
                CastSite cs;
                cs.line = lineOf(i);
                std::vector<std::string> target;
                for (std::size_t k = i + 2; k < tclose; ++k)
                    target.push_back(text(k));
                cs.target = joinTokens(target);
                if (is(tclose + 1, "(") &&
                    isNarrowCycleTarget(target)) {
                    const std::size_t eclose = closeOf(tclose + 1);
                    collectExpr(tclose + 2, eclose, cs);
                    fn.casts.push_back(std::move(cs));
                }
                i = tclose + 1; // the expr still scans as accesses
                continue;
            }

            if (isKeyword(t)) {
                // Narrow-typed local initialized from an expression:
                //   int x = <expr>;   (a cycle value must not flow
                // in). The initializer still scans as accesses on
                // the following iterations.
                narrowLocalDeclAt(i, end, fn);
                ++i;
                continue;
            }
            if (t == "Cycles" || t == "CycleDelta") {
                std::size_t p = i + 1;
                while (is(p, "&") || is(p, "*") || is(p, "const"))
                    ++p;
                if (isIdent(p) && !isKeyword(text(p))) {
                    if (t == "Cycles")
                        fn.cycleLocals.insert(text(p));
                    else
                        fn.sanctionedLocals.insert(text(p));
                }
                ++i;
                continue;
            }
            if (text(i - 1) == "::") {
                // Qualified tail (std::foo, Class::statics): not a
                // member access; still track the call context so a
                // lambda argument resolves its enclosing call.
                if (is(i + 1, "("))
                    call_stack.push_back({t, closeOf(i + 1)});
                ++i;
                continue;
            }

            const std::string &prev = text(i - 1);
            std::string object;
            bool qualified = false;
            if (prev == "." || prev == "->") {
                qualified = true;
                if (text(i - 2) == "this")
                    object.clear();
                else if (isIdent(i - 2) && !isKeyword(text(i - 2)))
                    object = text(i - 2);
                else
                    object = "<expr>";
            }

            if (is(i + 1, "(")) {
                call_stack.push_back({t, closeOf(i + 1)});
                if (object != "<expr>")
                    fn.calls.push_back({t, object, lineOf(i)});
                ++i;
                continue;
            }

            if (qualified && object == "<expr>") {
                ++i;
                continue;
            }
            if (!qualified && is(i + 1, "::")) {
                ++i; // qualifier head (std, v10, Class::)
                continue;
            }

            AccessSite a;
            a.object = object;
            a.member = t;
            a.line = lineOf(i);
            a.locksHeld = locks;
            const std::string &n1 = text(i + 1);
            const std::string &n2 = text(i + 2);
            if (n1 == "=" && n2 != "=")
                a.isWrite = true;
            else if ((n1 == "+" || n1 == "-" || n1 == "*" ||
                      n1 == "/" || n1 == "%" || n1 == "&" ||
                      n1 == "|" || n1 == "^") &&
                     n2 == "=") {
                a.isWrite = true;
                a.fpAccumulate = n1 == "+" || n1 == "-" ||
                                 n1 == "*" || n1 == "/";
            } else if ((n1 == "+" && n2 == "+") ||
                       (n1 == "-" && n2 == "-")) {
                a.isWrite = true;
            } else if ((prev == "+" && text(i - 2) == "+") ||
                       (prev == "-" && text(i - 2) == "-")) {
                a.isWrite = true;
            }
            fn.accesses.push_back(std::move(a));
            ++i;
        }
    }

    /** At a keyword @p i: if it opens `narrow x = expr;`, record the
     * init expression as a CastSite. */
    bool
    narrowLocalDeclAt(std::size_t i, std::size_t end,
                      FunctionSym &fn)
    {
        std::vector<std::string> target;
        std::size_t j = i;
        while (j < end && isIdent(j) && isKeyword(text(j)) &&
               text(j) != "return" && text(j) != "sizeof")
            target.push_back(text(j++));
        if (target.empty() || !isNarrowCycleTarget(target))
            return false;
        if (!isIdent(j) || isKeyword(text(j)))
            return false;
        if (!is(j + 1, "="))
            return false;
        CastSite cs;
        cs.fromCast = false;
        cs.target = joinTokens(target);
        cs.line = lineOf(j);
        std::size_t k = j + 2;
        while (k < end && !is(k, ";")) {
            if (is(k, "(") || is(k, "{"))
                k = collectExpr(k + 1, closeOf(k), cs);
            else
                collectExprToken(k, cs);
            ++k;
        }
        fn.casts.push_back(std::move(cs));
        return true;
    }

    void
    collectExprToken(std::size_t k, CastSite &cs)
    {
        if (!isIdent(k) || isKeyword(text(k)))
            return;
        if (text(k - 1) == "::")
            return;
        if (is(k + 1, "("))
            cs.callees.push_back(text(k));
        else if (!is(k + 1, "::"))
            cs.idents.push_back(text(k));
    }

    /** Record every identifier/call in [begin, end); returns end. */
    std::size_t
    collectExpr(std::size_t begin, std::size_t end, CastSite &cs)
    {
        for (std::size_t k = begin; k < end; ++k)
            collectExprToken(k, cs);
        return end;
    }

    static std::string
    joinTokens(const std::vector<std::string> &ts)
    {
        std::string s;
        for (const std::string &t : ts) {
            if (!s.empty() && t != "::" &&
                (s.size() < 2 || s.compare(s.size() - 2, 2, "::") != 0))
                s += ' ';
            s += t;
        }
        return s;
    }
};

} // namespace

FileSummary
summarizeFile(const SourceFile &file)
{
    return Extractor(file).run();
}

} // namespace v10::analysis
