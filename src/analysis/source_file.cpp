#include "analysis/source_file.h"

#include <fstream>
#include <sstream>

namespace v10::analysis {

SourceFile
SourceFile::fromString(std::string relPath, const std::string &text)
{
    SourceFile f;
    f.path_ = std::move(relPath);
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    f.content_hash_ = h;
    f.lexed_ = lexSource(text);
    std::string line;
    std::istringstream is(text);
    while (std::getline(is, line))
        f.lines_.push_back(line);
    return f;
}

Result<SourceFile>
SourceFile::load(std::string relPath, const std::string &absPath)
{
    std::ifstream is(absPath, std::ios::binary);
    if (!is)
        return parseError("cannot open source file", absPath);
    std::ostringstream buf;
    buf << is.rdbuf();
    return fromString(std::move(relPath), buf.str());
}

const std::string &
SourceFile::lineText(std::size_t line) const
{
    static const std::string empty;
    if (line == 0 || line > lines_.size())
        return empty;
    return lines_[line - 1];
}

bool
SourceFile::isSuppressed(const std::string &rule,
                         std::size_t line) const
{
    if (lexed_.allowFile.count(rule))
        return true;
    auto covers = [&](std::size_t l) {
        auto it = lexed_.allowByLine.find(l);
        return it != lexed_.allowByLine.end() &&
               it->second.count(rule) > 0;
    };
    return covers(line) || (line > 0 && covers(line - 1));
}

} // namespace v10::analysis
