/**
 * @file
 * Grandfathering for v10lint: a committed baseline file records the
 * findings that predate the rule pack so CI can demand "no NEW
 * violations" while the backlog is burned down deliberately.
 *
 * Entries are keyed by (rule, file, hash-of-normalized-source-line),
 * not by line number, so unrelated edits that shift a file do not
 * invalidate the baseline; the recorded line is only a hint for
 * humans. Entries that no longer match anything are *stale* — the
 * violation was fixed — and are reported so the baseline shrinks
 * monotonically instead of fossilizing.
 */

#ifndef V10_ANALYSIS_BASELINE_H
#define V10_ANALYSIS_BASELINE_H

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/finding.h"
#include "common/result.h"

namespace v10::analysis {

/** One grandfathered finding (or several identical ones). */
struct BaselineEntry
{
    std::string rule;
    std::string file;
    std::size_t lineHint = 0; ///< where it was when recorded
    std::string hash;         ///< findingHash() of the source line
    std::size_t count = 1;    ///< identical findings absorbed
    std::string note;         ///< the rationale for keeping it
};

/**
 * Content hash identifying a finding independent of its line
 * number: FNV-1a over rule, file, and the whitespace-normalized
 * offending source line.
 */
std::string findingHash(const Finding &finding);

/** A loaded (or freshly generated) baseline. */
struct Baseline
{
    std::vector<BaselineEntry> entries;

    /** Parse the JSON baseline at @p path. */
    static Result<Baseline> load(const std::string &path);

    /** Aggregate @p findings into entries (identical keys merge
     * into one entry with a count). Notes start empty — the author
     * fills in the rationale before committing — except where
     * @p prior already carries a note for the same (rule, file,
     * hash) key, which regeneration preserves. */
    static Baseline fromFindings(const std::vector<Finding> &findings,
                                 const Baseline *prior = nullptr);

    /** Write the JSON baseline to @p path. */
    Status save(const std::string &path) const;

    /** Serialize to a JSON string (stable entry order). */
    std::string toJson() const;
};

} // namespace v10::analysis

#endif // V10_ANALYSIS_BASELINE_H
