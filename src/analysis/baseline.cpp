#include "analysis/baseline.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "common/json.h"

namespace v10::analysis {

namespace {

/** Collapse whitespace runs so formatting churn keeps the hash. */
std::string
normalizeLine(const std::string &line)
{
    std::string out;
    bool in_ws = true; // also trims leading whitespace
    for (char c : line) {
        if (c == ' ' || c == '\t') {
            if (!in_ws)
                out += ' ';
            in_ws = true;
        } else {
            out += c;
            in_ws = false;
        }
    }
    while (!out.empty() && out.back() == ' ')
        out.pop_back();
    return out;
}

std::uint64_t
fnv1a(const std::string &data, std::uint64_t h)
{
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h;
}

} // namespace

std::string
findingHash(const Finding &finding)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    h = fnv1a(finding.rule, h);
    h = fnv1a("|", h);
    h = fnv1a(finding.file, h);
    h = fnv1a("|", h);
    h = fnv1a(normalizeLine(finding.snippet), h);
    std::ostringstream os;
    os << std::hex << h;
    return os.str();
}

Result<Baseline>
Baseline::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return parseError("cannot open baseline file", path);
    std::ostringstream buf;
    buf << is.rdbuf();

    JsonValue doc;
    std::string err;
    if (!JsonValue::parse(buf.str(), &doc, &err))
        return parseError("malformed baseline JSON: " + err, path);
    const JsonValue *entries = doc.find("entries");
    if (entries == nullptr || !entries->isArray())
        return parseError("baseline has no 'entries' array", path);

    Baseline baseline;
    for (std::size_t i = 0; i < entries->array.size(); ++i) {
        const JsonValue &e = entries->array[i];
        const JsonValue *rule = e.find("rule");
        const JsonValue *file = e.find("file");
        const JsonValue *hash = e.find("hash");
        if (rule == nullptr || !rule->isString() ||
            file == nullptr || !file->isString() ||
            hash == nullptr || !hash->isString()) {
            return parseError(
                "baseline entry needs string rule/file/hash fields",
                path, 0, "entries[" + std::to_string(i) + "]");
        }
        BaselineEntry entry;
        entry.rule = rule->str;
        entry.file = file->str;
        entry.hash = hash->str;
        if (const JsonValue *line = e.find("line_hint");
            line != nullptr && line->isNumber())
            entry.lineHint = static_cast<std::size_t>(line->number);
        if (const JsonValue *count = e.find("count");
            count != nullptr && count->isNumber() &&
            count->number >= 1.0)
            entry.count = static_cast<std::size_t>(count->number);
        if (const JsonValue *note = e.find("note");
            note != nullptr && note->isString())
            entry.note = note->str;
        baseline.entries.push_back(std::move(entry));
    }
    return baseline;
}

Baseline
Baseline::fromFindings(const std::vector<Finding> &findings,
                       const Baseline *prior)
{
    // Merge identical keys; preserve first-seen order via the map
    // key (file, rule, hash) — findings already arrive in scan
    // order, and sorting keeps regeneration diff-stable.
    std::map<std::tuple<std::string, std::string, std::string>,
             BaselineEntry>
        merged;
    for (const Finding &f : findings) {
        const std::string hash = findingHash(f);
        auto key = std::make_tuple(f.file, f.rule, hash);
        auto it = merged.find(key);
        if (it != merged.end()) {
            ++it->second.count;
            continue;
        }
        BaselineEntry entry;
        entry.rule = f.rule;
        entry.file = f.file;
        entry.lineHint = f.line;
        entry.hash = hash;
        merged.emplace(std::move(key), std::move(entry));
    }
    // Regeneration must not erase the human-written rationale of
    // entries that are still live.
    if (prior != nullptr) {
        for (const BaselineEntry &old : prior->entries) {
            if (old.note.empty())
                continue;
            auto it = merged.find(
                std::make_tuple(old.file, old.rule, old.hash));
            if (it != merged.end() && it->second.note.empty())
                it->second.note = old.note;
        }
    }

    Baseline baseline;
    baseline.entries.reserve(merged.size());
    for (auto &[key, entry] : merged)
        baseline.entries.push_back(std::move(entry));
    return baseline;
}

std::string
Baseline::toJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("tool", "v10lint-baseline");
    w.kv("version", 1);
    w.key("entries");
    w.beginArray();
    for (const BaselineEntry &e : entries) {
        w.beginObject();
        w.kv("rule", e.rule);
        w.kv("file", e.file);
        w.kv("line_hint",
             static_cast<std::uint64_t>(e.lineHint));
        w.kv("hash", e.hash);
        w.kv("count", static_cast<std::uint64_t>(e.count));
        w.kv("note", e.note);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return os.str();
}

Status
Baseline::save(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return parseError("cannot write baseline file", path);
    os << toJson();
    if (!os)
        return parseError("short write on baseline file", path);
    return Status::ok();
}

} // namespace v10::analysis
