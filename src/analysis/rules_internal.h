/**
 * @file
 * Internal glue for the rule pack: per-category factories assembled
 * by makeDefaultRules(), plus token-scanning helpers shared by the
 * rule implementations. Not installed API — include only from
 * src/analysis.
 */

#ifndef V10_ANALYSIS_RULES_INTERNAL_H
#define V10_ANALYSIS_RULES_INTERNAL_H

#include <cstddef>
#include <memory>
#include <vector>

#include "analysis/rule.h"

namespace v10::analysis {

std::vector<std::unique_ptr<Rule>> makeDeterminismRules();
std::vector<std::unique_ptr<Rule>> makeErrorDisciplineRules();
std::vector<std::unique_ptr<Rule>> makeConcurrencyRules();
std::vector<std::unique_ptr<Rule>> makeSemanticRules();

namespace detail {

/**
 * Index of the token matching the opener at @p open (which must be
 * "(", "<", "{", or "["), or tokens.size() when unbalanced. For "<"
 * the scan treats ";" and "{" as hard stops: an unmatched less-than
 * (a comparison, not a template) never spans a statement.
 */
std::size_t matchForward(const std::vector<Token> &tokens,
                         std::size_t open);

/** True when tokens[i] exists and equals @p text. */
inline bool
tokenIs(const std::vector<Token> &tokens, std::size_t i,
        const char *text)
{
    return i < tokens.size() && tokens[i].text == text;
}

/** Previous token's text, or "" at the start of the stream. */
inline const std::string &
prevText(const std::vector<Token> &tokens, std::size_t i)
{
    static const std::string none;
    return i == 0 ? none : tokens[i - 1].text;
}

} // namespace detail

} // namespace v10::analysis

#endif // V10_ANALYSIS_RULES_INTERNAL_H
