/**
 * @file
 * Concurrency-hygiene rules. PR 1's ParallelExecutor runs sweep
 * cells on a fixed pool; the bit-identity proof (serial ==
 * --jobs N) only holds while cells share no mutable state. Mutable
 * statics are the easiest way to break that silently — two cells
 * race on the shared object and TSan only catches it when the
 * interleaving cooperates.
 */

#include <set>
#include <string>

#include "analysis/rules_internal.h"

namespace v10::analysis {

namespace {

using detail::tokenIs;

/**
 * Flag mutable static-storage declarations (namespace-scope statics,
 * class statics, and function-local statics alike — all are process
 * globals shared across ParallelExecutor workers). const/constexpr
 * statics are fine: initialization is thread-safe and the state
 * never changes afterwards. thread_local is per-worker and reviewed
 * under TSan, so it passes here too.
 */
class MutableStaticRule : public Rule
{
  public:
    const char *
    name() const override
    {
        return "concurrency-mutable-static";
    }

    const char *
    description() const override
    {
        return "flags mutable static state in code reachable from "
               "ParallelExecutor workers: shared statics break the "
               "serial-vs-parallel bit-identity guarantee — make it "
               "per-run state, const, or suppress with the external "
               "synchronization spelled out";
    }

    const PathFilter &
    paths() const override
    {
        static const PathFilter filter{{"src/"}, {}};
        return filter;
    }

    void
    check(const SourceFile &file, const RuleContext &,
          std::vector<Finding> &out) override
    {
        const auto &toks = file.tokens();
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!toks[i].is("static"))
                continue;
            // Scan the declaration head. A '(' before any of
            // ';' '=' '{' means a function (or a parenthesized
            // initializer, which we accept missing): skip. const/
            // constexpr/constinit/thread_local anywhere in the head
            // clears the declaration.
            bool immutable = false;
            bool function_like = false;
            std::size_t end = i;
            for (std::size_t j = i + 1;
                 j < toks.size() && j < i + 48; ++j) {
                const std::string &t = toks[j].text;
                if (t == "const" || t == "constexpr" ||
                    t == "constinit" || t == "thread_local") {
                    immutable = true;
                    break;
                }
                if (t == "(") {
                    function_like = true;
                    break;
                }
                if (t == ";" || t == "=" || t == "{") {
                    end = j;
                    break;
                }
            }
            if (immutable || function_like || end == i)
                continue;
            // The declared name is the identifier just before the
            // terminator.
            std::string declared;
            if (end > 0 && toks[end - 1].isIdent())
                declared = toks[end - 1].text;
            out.push_back(finding(
                *this, file, toks[i].line,
                "mutable static" +
                    (declared.empty() ? std::string()
                                      : " '" + declared + "'") +
                    " is shared across ParallelExecutor workers; "
                    "make it per-run state or const"));
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
makeConcurrencyRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<MutableStaticRule>());
    return rules;
}

} // namespace v10::analysis
