/**
 * @file
 * Comment- and string-aware C++ lexer for v10lint.
 *
 * Rules operate on the token stream, never on raw text, so a banned
 * call inside a comment, a string literal, or a preprocessor line is
 * not a finding. Comments are still *scanned* (not emitted): they
 * carry the suppression grammar
 *
 *     // v10lint: allow(rule-a, rule-b)       — this line and the next
 *     // v10lint: allow-file(rule-a)          — the whole file
 *
 * optionally followed by free-text rationale after the closing
 * parenthesis.
 */

#ifndef V10_ANALYSIS_LEXER_H
#define V10_ANALYSIS_LEXER_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/token.h"

namespace v10::analysis {

/** Lexer output: tokens plus the suppressions found in comments. */
struct LexedSource
{
    std::vector<Token> tokens;

    /** allow(...) directives: line of the comment -> rule names.
     * A suppression covers its own line and the line below it. */
    std::map<std::size_t, std::set<std::string>> allowByLine;

    /** allow-file(...) directives: rules suppressed everywhere. */
    std::set<std::string> allowFile;
};

/**
 * Lex @p text. Never fails: unterminated constructs lex to their
 * enclosing end-of-file, which is the forgiving behavior a linter
 * wants (the compiler will complain about the real problem).
 */
LexedSource lexSource(const std::string &text);

} // namespace v10::analysis

#endif // V10_ANALYSIS_LEXER_H
