/**
 * @file
 * Error-discipline rules. PR 3 made ingestion recoverable: library
 * code reports failures as Result<T>/Status and the process-exit
 * decision belongs to the caller (CLI, bench, embedding service).
 * These rules keep that boundary from eroding.
 */

#include <set>
#include <string>

#include "analysis/rules_internal.h"

namespace v10::analysis {

namespace {

using detail::matchForward;
using detail::prevText;
using detail::tokenIs;

/**
 * Ban process-killing calls in library code. panic()/V10_PANIC stay
 * legal: they mark simulator bugs (broken invariants), not user
 * errors, and gem5-style panic semantics are part of the design. The
 * sanctioned bridges live in exempted files: fatal() itself in
 * src/common/log.*, and the orDie()/valueOrDie() legacy adapters in
 * src/common/result.h.
 */
class NoFatalRule : public Rule
{
  public:
    const char *name() const override { return "error-no-fatal"; }

    const char *
    description() const override
    {
        return "bans fatal()/abort()/exit() in library code: return "
               "Result<T>/Status (src/common/result.h) and let the "
               "caller decide how to die (docs/ROBUSTNESS.md)";
    }

    const PathFilter &
    paths() const override
    {
        static const PathFilter filter{
            {"src/"},
            {"src/common/log.h", "src/common/log.cpp",
             "src/common/result.h"}};
        return filter;
    }

    void
    check(const SourceFile &file, const RuleContext &,
          std::vector<Finding> &out) override
    {
        static const std::set<std::string> banned = {
            "fatal", "abort", "exit", "_Exit", "quick_exit",
            "V10_FATAL",
        };
        const auto &toks = file.tokens();
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!toks[i].isIdent() || !banned.count(toks[i].text))
                continue;
            const std::string &prev = prevText(toks, i);
            if (prev == "." || prev == "->")
                continue; // a member that happens to share the name
            if (!tokenIs(toks, i + 1, "("))
                continue;
            out.push_back(finding(
                *this, file, toks[i].line,
                "'" + toks[i].text +
                    "()' kills the process from library code; "
                    "return Result<T>/Status so the caller decides "
                    "(panic() is the invariant-violation path)"));
        }
    }
};

/**
 * Flag expression-statements that discard a Result<T>/Status/
 * ParseError return. collect() gathers the names of functions
 * declared with those return types anywhere in the scan, so calls
 * are caught in files that only see the declaration through a
 * header. The [[nodiscard]] attributes on the types are the
 * compiler-enforced backstop; this rule reports the same class of
 * bug at lint time with a source-anchored diagnostic.
 */
class DiscardedResultRule : public Rule
{
  public:
    const char *
    name() const override
    {
        return "error-discarded-result";
    }

    const char *
    description() const override
    {
        return "flags statements that call a Result/Status-returning "
               "function and drop the value: an unchecked error is "
               "an ignored error";
    }

    const PathFilter &
    paths() const override
    {
        static const PathFilter filter{{"src/", "tools/"}, {}};
        return filter;
    }

    void
    collect(const SourceFile &file, RuleContext &ctx) override
    {
        const auto &toks = file.tokens();
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!toks[i].isIdent())
                continue;
            std::size_t after = i + 1;
            if (toks[i].is("Result")) {
                if (!tokenIs(toks, after, "<"))
                    continue;
                after = matchForward(toks, after);
                if (after >= toks.size())
                    continue;
                ++after;
            } else if (toks[i].is("Status") ||
                       toks[i].is("ParseError")) {
                // plain return type
            } else {
                continue;
            }
            // Skip over the qualified name: Ident (:: Ident)*.
            if (after >= toks.size() || !toks[after].isIdent())
                continue;
            std::size_t name_at = after;
            while (tokenIs(toks, name_at + 1, "::") &&
                   name_at + 2 < toks.size() &&
                   toks[name_at + 2].isIdent())
                name_at += 2;
            if (tokenIs(toks, name_at + 1, "("))
                ctx.resultReturning.insert(toks[name_at].text);
        }
    }

    void
    check(const SourceFile &file, const RuleContext &ctx,
          std::vector<Finding> &out) override
    {
        const auto &toks = file.tokens();
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!toks[i].isIdent() ||
                !ctx.resultReturning.count(toks[i].text) ||
                !tokenIs(toks, i + 1, "("))
                continue;
            const std::size_t close = matchForward(toks, i + 1);
            if (!tokenIs(toks, close + 1, ";"))
                continue; // the value is consumed somehow

            // Walk back over the object/namespace chain to the
            // start of the expression-statement.
            std::size_t start = i;
            while (start >= 2) {
                const std::string &link = toks[start - 1].text;
                if ((link == "." || link == "->" || link == "::") &&
                    (toks[start - 2].isIdent() ||
                     toks[start - 2].is(")")))
                    start -= 2;
                else
                    break;
            }
            if (start == 0)
                continue;
            const std::string &before = toks[start - 1].text;
            static const std::set<std::string> stmt_start = {
                ";", "{", "}", ")", "else", ":",
            };
            if (!stmt_start.count(before))
                continue;
            // "(void)call();" is an explicit discard — honor it.
            if (before == ")" && start >= 3 &&
                toks[start - 2].is("void") && toks[start - 3].is("("))
                continue;
            out.push_back(finding(
                *this, file, toks[i].line,
                "call to '" + toks[i].text +
                    "' discards its Result/Status; check it, or "
                    "cast to void with a reason"));
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
makeErrorDisciplineRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<NoFatalRule>());
    rules.push_back(std::make_unique<DiscardedResultRule>());
    return rules;
}

} // namespace v10::analysis
