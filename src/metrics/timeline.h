/**
 * @file
 * Operator-timeline tracing: records every operator execution slice
 * (functional unit, tenant, operator, context-switch penalty,
 * preempted-or-completed) and renders it as a Chrome trace-event
 * JSON file (load in chrome://tracing or https://ui.perfetto.dev)
 * — Fig. 12's timelines, reconstructed from an actual run.
 */

#ifndef V10_METRICS_TIMELINE_H
#define V10_METRICS_TIMELINE_H

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace v10 {

class IntervalSampler;

/**
 * Producer of Chrome async span events ("ph":"b"/"e") that merge into
 * a TimelineTracer's event array alongside the op slices and counter
 * tracks. Implemented by the request tracer in src/trace; declared
 * here so metrics does not depend on the trace library.
 */
class AsyncSpanSource
{
  public:
    virtual ~AsyncSpanSource() = default;

    /**
     * Emit async span events onto an open JSON event array.
     * @param cyclesPerUs converts cycle timestamps (unused by
     *   sources that record in microseconds already)
     * @param needComma true when the array already holds events
     * @return true if any event was written
     */
    virtual bool writeAsyncSpanEvents(std::ostream &os,
                                      double cyclesPerUs,
                                      bool needComma) const = 0;
};

/**
 * Collects operator execution slices for offline visualization.
 */
class TimelineTracer
{
  public:
    /** @param cyclesPerUs core cycles per microsecond (freq * 1e3) */
    explicit TimelineTracer(double cyclesPerUs);

    /** An operator started on a unit (after @p penalty overhead). */
    void opBegin(Cycles now, const std::string &fu,
                 const std::string &tenant, const std::string &op,
                 Cycles penalty);

    /** The unit's in-flight operator ended.
     * @param preempted true when ended by preemption (§3.3) */
    void opEnd(Cycles now, const std::string &fu, bool preempted);

    /** Close any still-open slices at @p now (end of run). */
    void finish(Cycles now);

    /** Recorded slice count. */
    std::size_t sliceCount() const { return slices_.size(); }

    /** Recorded preemption count. */
    std::size_t preemptionCount() const;

    /**
     * Compact per-slice labels ("sa0:BERT@32:matmul.0@700") in
     * recording order — for golden-sequence regression tests.
     */
    std::vector<std::string> sliceLabels() const;

    /**
     * Merge @p sampler's time-series into the trace as "ph":"C"
     * counter events (utilization tracks above the op slices in
     * Perfetto). The sampler must outlive this tracer.
     */
    void attachSampler(const IntervalSampler *sampler)
    {
        sampler_ = sampler;
    }

    /**
     * Merge @p spans' request spans into the trace as async
     * "ph":"b"/"e" events. The source must outlive this tracer.
     */
    void attachSpans(const AsyncSpanSource *spans) { spans_ = spans; }

    /** Emit Chrome trace-event JSON. */
    void writeChromeTrace(std::ostream &os) const;

    /** writeChromeTrace() to a file path; fatal() if unwritable. */
    void writeChromeTraceFile(const std::string &path) const;

  private:
    struct Slice
    {
        std::string fu;
        std::string tenant;
        std::string op;
        Cycles start = 0;
        Cycles end = 0;
        Cycles penalty = 0;
        bool preempted = false;
    };

    double cycles_per_us_;
    const IntervalSampler *sampler_ = nullptr;
    const AsyncSpanSource *spans_ = nullptr;
    std::vector<Slice> slices_;
    // Ordered map: finish() iterates to close open slices, and the
    // resulting slice order lands in golden-sequence tests.
    std::map<std::string, std::size_t> open_; ///< fu -> idx
};

} // namespace v10

#endif // V10_METRICS_TIMELINE_H
