#include "metrics/timeline.h"

#include <fstream>
#include <ostream>

#include "common/log.h"
#include "metrics/interval_sampler.h"

namespace v10 {

TimelineTracer::TimelineTracer(double cyclesPerUs)
    : cycles_per_us_(cyclesPerUs)
{
    if (cycles_per_us_ <= 0.0)
        fatal("TimelineTracer: cyclesPerUs must be positive");
}

void
TimelineTracer::opBegin(Cycles now, const std::string &fu,
                        const std::string &tenant,
                        const std::string &op, Cycles penalty)
{
    if (open_.count(fu))
        panic("TimelineTracer: ", fu, " already has an open slice");
    Slice slice;
    slice.fu = fu;
    slice.tenant = tenant;
    slice.op = op;
    slice.start = now;
    slice.penalty = penalty;
    open_[fu] = slices_.size();
    slices_.push_back(std::move(slice));
}

void
TimelineTracer::opEnd(Cycles now, const std::string &fu,
                      bool preempted)
{
    auto it = open_.find(fu);
    if (it == open_.end())
        panic("TimelineTracer: opEnd without opBegin on ", fu);
    Slice &slice = slices_[it->second];
    slice.end = now;
    slice.preempted = preempted;
    open_.erase(it);
}

void
TimelineTracer::finish(Cycles now)
{
    for (const auto &[fu, idx] : open_) {
        slices_[idx].end = now;
        slices_[idx].preempted = true;
    }
    open_.clear();
}

std::vector<std::string>
TimelineTracer::sliceLabels() const
{
    std::vector<std::string> out;
    out.reserve(slices_.size());
    for (const auto &s : slices_)
        out.push_back(s.fu + ":" + s.tenant + ":" + s.op + "@" +
                      std::to_string(s.start) +
                      (s.preempted ? "!" : ""));
    return out;
}

std::size_t
TimelineTracer::preemptionCount() const
{
    std::size_t n = 0;
    for (const auto &slice : slices_)
        n += slice.preempted;
    return n;
}

void
TimelineTracer::writeChromeTrace(std::ostream &os) const
{
    os << "[\n";
    bool first = true;
    for (const auto &slice : slices_) {
        if (slice.end < slice.start)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        const double ts =
            static_cast<double>(slice.start) / cycles_per_us_;
        const double dur =
            static_cast<double>(slice.end - slice.start) /
            cycles_per_us_;
        os << "  {\"name\": \"" << slice.op << "\", \"cat\": \""
           << slice.tenant << "\", \"ph\": \"X\", \"ts\": " << ts
           << ", \"dur\": " << dur
           << ", \"pid\": 0, \"tid\": \"" << slice.fu
           << "\", \"args\": {\"tenant\": \"" << slice.tenant
           << "\", \"ctx_penalty_cycles\": " << slice.penalty
           << ", \"preempted\": "
           << (slice.preempted ? "true" : "false") << "}}";
    }
    bool haveEvents = !first;
    if (sampler_)
        haveEvents |=
            sampler_->writeCounterEvents(os, cycles_per_us_, haveEvents);
    if (spans_)
        spans_->writeAsyncSpanEvents(os, cycles_per_us_, haveEvents);
    os << "\n]\n";
}

void
TimelineTracer::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("TimelineTracer: cannot open ", path);
    writeChromeTrace(os);
}

} // namespace v10
