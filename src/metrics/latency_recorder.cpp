#include "metrics/latency_recorder.h"

#include "common/log.h"

namespace v10 {

LatencyRecorder::LatencyRecorder(std::uint32_t tenants)
    : per_tenant_(tenants)
{
}

void
LatencyRecorder::record(WorkloadId tenant, Cycles latency)
{
    if (tenant >= per_tenant_.size())
        panic("LatencyRecorder: tenant ", tenant, " out of range");
    per_tenant_[tenant].add(static_cast<double>(latency));
}

void
LatencyRecorder::reset()
{
    for (auto &set : per_tenant_)
        set.reset();
}

const SampleSet &
LatencyRecorder::samples(WorkloadId tenant) const
{
    if (tenant >= per_tenant_.size())
        panic("LatencyRecorder: tenant ", tenant, " out of range");
    return per_tenant_[tenant];
}

std::size_t
LatencyRecorder::requests(WorkloadId tenant) const
{
    return samples(tenant).count();
}

double
LatencyRecorder::meanCycles(WorkloadId tenant) const
{
    return samples(tenant).mean();
}

double
LatencyRecorder::p95Cycles(WorkloadId tenant) const
{
    return samples(tenant).p95();
}

} // namespace v10
