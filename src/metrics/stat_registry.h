/**
 * @file
 * Hierarchical statistics registry, in the spirit of gem5's stats
 * framework: components register named counters, gauges, derived
 * formulas, and distributions under dotted paths
 * ("core.sa0.busy_cycles", "sched.preemptions", ...), and the
 * registry renders the whole tree as a gem5-style text report or a
 * nested JSON document.
 *
 * Lifecycle: one registry per simulated run. Components register at
 * run start; formulas read live component state (by capturing
 * pointers), so before the components die the owning engine calls
 * freeze(), which evaluates every formula once and stores the final
 * value. A frozen registry is a plain snapshot that can safely
 * outlive the simulation it observed.
 */

#ifndef V10_METRICS_STAT_REGISTRY_H
#define V10_METRICS_STAT_REGISTRY_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"

namespace v10 {

class JsonWriter;

/**
 * The registry. Not thread-safe: each run is single-threaded and
 * owns its own registry (parallel sweeps use one per cell).
 */
class V10_DOMAIN_LOCAL StatRegistry
{
  public:
    /** Monotonic integer statistic (event counts, cycle sums). */
    class Counter
    {
      public:
        void add(std::uint64_t delta) { value_ += delta; }
        Counter &operator+=(std::uint64_t d) { add(d); return *this; }
        Counter &operator++() { ++value_; return *this; }
        void set(std::uint64_t v) { value_ = v; }
        std::uint64_t value() const { return value_; }

      private:
        std::uint64_t value_ = 0;
    };

    /** Last-write-wins floating-point statistic. */
    class Gauge
    {
      public:
        void set(double v) { value_ = v; }
        double value() const { return value_; }

      private:
        double value_ = 0.0;
    };

    /** Streaming sample distribution (count/sum/min/max/mean). */
    class Distribution
    {
      public:
        void record(double sample);
        std::uint64_t count() const { return count_; }
        double sum() const { return sum_; }
        double min() const { return count_ ? min_ : 0.0; }
        double max() const { return count_ ? max_ : 0.0; }
        double mean() const;

      private:
        std::uint64_t count_ = 0;
        double sum_ = 0.0;
        double min_ = 0.0;
        double max_ = 0.0;
    };

    /** Deferred read of live component state. */
    using Formula = std::function<double()>;

    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /**
     * Register a statistic under @p path (dotted, [A-Za-z0-9_.]).
     * Duplicate or tree-conflicting paths (one path extending
     * another at a dot boundary) panic. Returned references stay
     * valid for the registry's lifetime.
     */
    Counter &addCounter(const std::string &path,
                        std::string description = "");
    Gauge &addGauge(const std::string &path,
                    std::string description = "");
    Distribution &addDistribution(const std::string &path,
                                  std::string description = "");
    void addFormula(const std::string &path, Formula formula,
                    std::string description = "");

    /** True when @p path names a registered statistic. */
    bool has(const std::string &path) const;

    /**
     * Current scalar value of @p path; formulas evaluate live (or
     * return the frozen value), distributions return their mean.
     * Panics on unknown paths.
     */
    double value(const std::string &path) const;

    /** Description attached at registration ("" if none). */
    const std::string &description(const std::string &path) const;

    /** All registered paths in sorted order. */
    std::vector<std::string> paths() const;

    /** Number of registered statistics. */
    std::size_t size() const { return stats_.size(); }

    /**
     * Evaluate every formula once and replace it with its value.
     * Must be called before the components the formulas read are
     * destroyed. Idempotent.
     */
    void freeze();

    /** True after freeze(). */
    bool frozen() const { return frozen_; }

    /**
     * Flat sorted snapshot of every statistic as (path, value)
     * pairs. Distributions expand to path.count / path.sum /
     * path.min / path.max / path.mean entries.
     */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /** gem5-style "name value" lines, sorted by path. */
    std::string textReport() const;

    /**
     * Emit the registry as one nested JSON object: dotted paths
     * become nested objects ("core.sa0.busy_cycles" ->
     * {"core":{"sa0":{"busy_cycles": ...}}}).
     */
    void writeJson(JsonWriter &writer) const;

  private:
    enum class Kind { Counter, Gauge, Distribution, Formula };

    struct Stat
    {
        Kind kind = Kind::Counter;
        std::string description;
        Counter counter;
        Gauge gauge;
        Distribution dist;
        Formula formula;       ///< cleared by freeze()
        double frozen = 0.0;   ///< formula value after freeze()
    };

    /** Validate the path and claim it in the tree (panics on
     * conflicts); returns the created slot. */
    Stat &insert(const std::string &path, Kind kind,
                 std::string description);

    double scalarOf(const Stat &stat) const;

    // std::map keeps paths sorted, and node addresses stable so
    // components can hold Counter/Distribution references.
    std::map<std::string, Stat> stats_;
    bool frozen_ = false;
};

} // namespace v10

#endif // V10_METRICS_STAT_REGISTRY_H
