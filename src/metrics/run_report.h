/**
 * @file
 * Structured JSON run report: one self-describing document per run
 * combining (a) a manifest of how the run was configured, (b) the
 * whole-run and per-tenant RunStats, (c) the full StatRegistry dump,
 * and (d) the interval-sampler time-series when sampling was on.
 * Written by `v10sim run/report/advise --stats-json` and the bench
 * drivers; consumed by scripts and the CI schema check.
 */

#ifndef V10_METRICS_RUN_REPORT_H
#define V10_METRICS_RUN_REPORT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace v10 {

class IntervalSampler;
class JsonWriter;
class StatRegistry;
struct RunStats;

/**
 * What produced the numbers: enough to rerun the experiment.
 */
struct RunManifest
{
    std::string tool;          ///< "v10sim run", "bench_fig18", ...
    std::string scheduler;     ///< "v10-full", "pmt", ...
    std::string configSummary; ///< one-line NpuConfig description
    std::vector<std::string> workloads; ///< tenant labels
    std::uint64_t requests = 0;   ///< requested per-tenant requests
    std::uint64_t seed = 0;
    Cycles simulatedCycles = 0;
    double wallSeconds = 0.0;     ///< host wall-clock for the run
    Cycles sampleInterval = 0;    ///< 0 = sampling off
};

/**
 * Emit one RunStats as a JSON object (whole-run metrics plus a
 * "tenants" array) onto an open writer — the building block shared
 * by the run report and the report-grid JSON.
 */
void writeRunStatsJson(JsonWriter &w, const RunStats &stats);

/**
 * Write the full report as one JSON object with top-level keys
 * "manifest", "run", "registry", and "samples" (null when
 * @p sampler is null or empty).
 */
void writeRunReportJson(std::ostream &os, const RunManifest &manifest,
                        const RunStats &stats,
                        const StatRegistry *registry,
                        const IntervalSampler *sampler);

/** writeRunReportJson() to a path; fatal() if unwritable. */
void writeRunReportJsonFile(const std::string &path,
                            const RunManifest &manifest,
                            const RunStats &stats,
                            const StatRegistry *registry,
                            const IntervalSampler *sampler);

} // namespace v10

#endif // V10_METRICS_RUN_REPORT_H
