/**
 * @file
 * Per-tenant request latency recording (Figs. 19/20: average and
 * 95th-percentile latency of inference requests).
 */

#ifndef V10_METRICS_LATENCY_RECORDER_H
#define V10_METRICS_LATENCY_RECORDER_H

#include <vector>

#include "common/annotations.h"
#include "common/stats.h"
#include "common/types.h"

namespace v10 {

/**
 * Records per-request latencies for a fixed set of tenants.
 */
class V10_DOMAIN_LOCAL LatencyRecorder
{
  public:
    /** @param tenants number of collocated workloads */
    explicit LatencyRecorder(std::uint32_t tenants);

    /** Record one completed request of @p tenant. */
    void record(WorkloadId tenant, Cycles latency);

    /** All samples of one tenant. */
    const SampleSet &samples(WorkloadId tenant) const;

    /** Completed requests of one tenant. */
    std::size_t requests(WorkloadId tenant) const;

    /** Mean latency in cycles. */
    double meanCycles(WorkloadId tenant) const;

    /** 95th-percentile latency in cycles. */
    double p95Cycles(WorkloadId tenant) const;

    /** Drop all samples (start of the measured window). */
    void reset();

    /** Number of tenants. */
    std::uint32_t tenants() const
    {
        return static_cast<std::uint32_t>(per_tenant_.size());
    }

  private:
    std::vector<SampleSet> per_tenant_;
};

} // namespace v10

#endif // V10_METRICS_LATENCY_RECORDER_H
