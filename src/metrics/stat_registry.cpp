#include "metrics/stat_registry.h"

#include <algorithm>
#include <sstream>

#include "common/json.h"
#include "common/log.h"

namespace v10 {

namespace {

bool
validPathChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '.';
}

void
validatePath(const std::string &path)
{
    if (path.empty())
        V10_PANIC("StatRegistry: empty stat path");
    if (path.front() == '.' || path.back() == '.')
        V10_PANIC("StatRegistry: path '", path,
                  "' starts or ends with '.'");
    char prev = '\0';
    for (const char c : path) {
        if (!validPathChar(c))
            V10_PANIC("StatRegistry: path '", path,
                      "' contains invalid character '", c, "'");
        if (c == '.' && prev == '.')
            V10_PANIC("StatRegistry: path '", path,
                      "' contains an empty component");
        prev = c;
    }
}

/** True when @p shorter is a dot-boundary prefix of @p longer. */
bool
dotPrefix(const std::string &shorter, const std::string &longer)
{
    return longer.size() > shorter.size() &&
           longer.compare(0, shorter.size(), shorter) == 0 &&
           longer[shorter.size()] == '.';
}

} // namespace

void
StatRegistry::Distribution::record(double sample)
{
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    sum_ += sample;
}

double
StatRegistry::Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

StatRegistry::Stat &
StatRegistry::insert(const std::string &path, Kind kind,
                     std::string description)
{
    if (frozen_)
        V10_PANIC("StatRegistry: registering '", path,
                  "' on a frozen registry");
    validatePath(path);
    if (stats_.count(path))
        V10_PANIC("StatRegistry: duplicate stat path '", path, "'");
    // A leaf and a subtree cannot share a name: "a.b" conflicts with
    // "a.b.c" because the JSON rendering needs "a.b" to be either a
    // value or an object, not both. std::map ordering puts any
    // conflicting neighbours adjacent to the insertion point.
    const auto next = stats_.lower_bound(path);
    if (next != stats_.end() && dotPrefix(path, next->first))
        V10_PANIC("StatRegistry: path '", path,
                  "' conflicts with existing subtree '", next->first,
                  "'");
    if (next != stats_.begin()) {
        const auto &prevPath = std::prev(next)->first;
        if (dotPrefix(prevPath, path))
            V10_PANIC("StatRegistry: path '", path,
                      "' extends existing leaf '", prevPath, "'");
    }
    Stat &stat = stats_[path];
    stat.kind = kind;
    stat.description = std::move(description);
    return stat;
}

StatRegistry::Counter &
StatRegistry::addCounter(const std::string &path,
                         std::string description)
{
    return insert(path, Kind::Counter, std::move(description)).counter;
}

StatRegistry::Gauge &
StatRegistry::addGauge(const std::string &path, std::string description)
{
    return insert(path, Kind::Gauge, std::move(description)).gauge;
}

StatRegistry::Distribution &
StatRegistry::addDistribution(const std::string &path,
                              std::string description)
{
    return insert(path, Kind::Distribution, std::move(description))
        .dist;
}

void
StatRegistry::addFormula(const std::string &path, Formula formula,
                         std::string description)
{
    if (!formula)
        V10_PANIC("StatRegistry: null formula for '", path, "'");
    insert(path, Kind::Formula, std::move(description)).formula =
        std::move(formula);
}

bool
StatRegistry::has(const std::string &path) const
{
    return stats_.count(path) != 0;
}

double
StatRegistry::scalarOf(const Stat &stat) const
{
    switch (stat.kind) {
    case Kind::Counter:
        return static_cast<double>(stat.counter.value());
    case Kind::Gauge:
        return stat.gauge.value();
    case Kind::Distribution:
        return stat.dist.mean();
    case Kind::Formula:
        return stat.formula ? stat.formula() : stat.frozen;
    }
    return 0.0;
}

double
StatRegistry::value(const std::string &path) const
{
    const auto it = stats_.find(path);
    if (it == stats_.end())
        V10_PANIC("StatRegistry: unknown stat path '", path, "'");
    return scalarOf(it->second);
}

const std::string &
StatRegistry::description(const std::string &path) const
{
    const auto it = stats_.find(path);
    if (it == stats_.end())
        V10_PANIC("StatRegistry: unknown stat path '", path, "'");
    return it->second.description;
}

std::vector<std::string>
StatRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(stats_.size());
    for (const auto &[path, stat] : stats_)
        out.push_back(path);
    return out;
}

void
StatRegistry::freeze()
{
    if (frozen_)
        return;
    for (auto &[path, stat] : stats_) {
        if (stat.kind == Kind::Formula && stat.formula) {
            stat.frozen = stat.formula();
            stat.formula = nullptr;
        }
    }
    frozen_ = true;
}

std::vector<std::pair<std::string, double>>
StatRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(stats_.size());
    for (const auto &[path, stat] : stats_) {
        if (stat.kind == Kind::Distribution) {
            out.emplace_back(path + ".count",
                             static_cast<double>(stat.dist.count()));
            out.emplace_back(path + ".sum", stat.dist.sum());
            out.emplace_back(path + ".min", stat.dist.min());
            out.emplace_back(path + ".max", stat.dist.max());
            out.emplace_back(path + ".mean", stat.dist.mean());
        } else {
            out.emplace_back(path, scalarOf(stat));
        }
    }
    return out;
}

std::string
StatRegistry::textReport() const
{
    std::ostringstream os;
    std::size_t width = 0;
    const auto snap = snapshot();
    for (const auto &[path, value] : snap)
        width = std::max(width, path.size());
    for (const auto &[path, value] : snap) {
        os << path;
        for (std::size_t i = path.size(); i < width + 2; ++i)
            os << ' ';
        os << jsonNumber(value) << '\n';
    }
    return os.str();
}

void
StatRegistry::writeJson(JsonWriter &writer) const
{
    // Emit the sorted flat snapshot as a nested object: because the
    // snapshot is path-sorted and prefix conflicts are rejected at
    // registration, the tree can be written with a running
    // open-scope stack (close to the common ancestor, then open the
    // remaining components).
    std::vector<std::string> open;
    writer.beginObject();
    for (const auto &[path, value] : snapshot()) {
        std::vector<std::string> parts;
        std::size_t start = 0;
        while (true) {
            const std::size_t dot = path.find('.', start);
            if (dot == std::string::npos) {
                parts.push_back(path.substr(start));
                break;
            }
            parts.push_back(path.substr(start, dot - start));
            start = dot + 1;
        }
        const std::string leaf = parts.back();
        parts.pop_back();
        std::size_t common = 0;
        while (common < open.size() && common < parts.size() &&
               open[common] == parts[common])
            ++common;
        while (open.size() > common) {
            writer.endObject();
            open.pop_back();
        }
        for (std::size_t i = common; i < parts.size(); ++i) {
            writer.key(parts[i]);
            writer.beginObject();
            open.push_back(parts[i]);
        }
        writer.kv(leaf, value);
    }
    while (!open.empty()) {
        writer.endObject();
        open.pop_back();
    }
    writer.endObject();
}

} // namespace v10
