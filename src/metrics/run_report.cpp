#include "metrics/run_report.h"

#include <fstream>
#include <ostream>

#include "common/json.h"
#include "common/log.h"
#include "metrics/interval_sampler.h"
#include "metrics/run_stats.h"
#include "metrics/stat_registry.h"

namespace v10 {

namespace {

void
writeManifest(JsonWriter &w, const RunManifest &m)
{
    w.beginObject();
    w.kv("tool", m.tool);
    w.kv("scheduler", m.scheduler);
    w.kv("config", m.configSummary);
    w.key("workloads");
    w.beginArray();
    for (const auto &label : m.workloads)
        w.value(label);
    w.endArray();
    w.kv("requests", m.requests);
    w.kv("seed", m.seed);
    w.kv("simulated_cycles", m.simulatedCycles);
    w.kv("wall_seconds", m.wallSeconds);
    w.kv("sample_interval", m.sampleInterval);
    w.endObject();
}

void
writeWorkload(JsonWriter &w, const WorkloadRunStats &t)
{
    w.beginObject();
    w.kv("label", t.label);
    w.kv("requests", t.requests);
    w.kv("latency_avg_us", t.avgLatencyUs);
    w.kv("latency_p95_us", t.p95LatencyUs);
    w.kv("requests_per_sec", t.requestsPerSec);
    w.kv("sa_compute_cycles", t.saComputeCycles);
    w.kv("vu_compute_cycles", t.vuComputeCycles);
    w.kv("overhead_cycles", t.overheadCycles);
    w.kv("preemptions", t.preemptions);
    w.kv("sa_util", t.saUtil);
    w.kv("vu_util", t.vuUtil);
    w.kv("normalized_progress", t.normalizedProgress);
    w.kv("ctx_overhead_frac", t.ctxOverheadFrac);
    w.kv("preempts_per_request", t.preemptsPerRequest());
    w.kv("quarantined", t.quarantined);
    w.kv("fault_strikes",
         static_cast<std::uint64_t>(t.faultStrikes));
    w.endObject();
}

} // namespace

void
writeRunStatsJson(JsonWriter &w, const RunStats &s)
{
    w.beginObject();
    w.kv("window_cycles", s.windowCycles);
    w.kv("window_seconds", s.windowSeconds);
    w.kv("sa_util", s.saUtil);
    w.kv("vu_util", s.vuUtil);
    w.kv("combined_util", s.combinedUtil);
    w.kv("hbm_util", s.hbmUtil);
    w.kv("flops_util", s.flopsUtil);
    w.kv("overlap_both_frac", s.overlapBothFrac);
    w.kv("sa_only_frac", s.saOnlyFrac);
    w.kv("vu_only_frac", s.vuOnlyFrac);
    w.kv("idle_frac", s.idleFrac);
    w.kv("stp", s.stp());
    w.kv("antt", s.antt());
    w.kv("fairness", s.fairness());
    w.kv("worst_progress", s.worstProgress());
    w.kv("aborted", s.aborted);
    w.kv("abort_reason", s.abortReason);
    w.kv("faults_injected", s.faultsInjected);
    w.kv("dma_retries", s.dmaRetries);
    w.kv("sa_replays", s.saReplays);
    w.kv("quarantined_tenants",
         static_cast<std::uint64_t>(s.quarantinedTenants));
    w.key("tenants");
    w.beginArray();
    for (const auto &t : s.workloads)
        writeWorkload(w, t);
    w.endArray();
    w.endObject();
}

namespace {

void
writeSamples(JsonWriter &w, const IntervalSampler *sampler)
{
    if (!sampler || sampler->rowCount() == 0) {
        w.valueNull();
        return;
    }
    w.beginObject();
    w.kv("interval_cycles", sampler->interval());
    w.key("probes");
    w.beginArray();
    for (const auto &name : sampler->probeNames())
        w.value(name);
    w.endArray();
    w.key("rows");
    w.beginArray();
    for (std::size_t row = 0; row < sampler->rowCount(); ++row) {
        w.beginArray();
        w.value(sampler->rowCycles()[row]);
        for (std::size_t p = 0; p < sampler->probeCount(); ++p)
            w.value(sampler->sample(row, p));
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

} // namespace

void
writeRunReportJson(std::ostream &os, const RunManifest &manifest,
                   const RunStats &stats, const StatRegistry *registry,
                   const IntervalSampler *sampler)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("manifest");
    writeManifest(w, manifest);
    w.key("run");
    writeRunStatsJson(w, stats);
    w.key("registry");
    if (registry)
        registry->writeJson(w);
    else
        w.valueNull();
    w.key("samples");
    writeSamples(w, sampler);
    w.endObject();
    os << '\n';
}

void
writeRunReportJsonFile(const std::string &path,
                       const RunManifest &manifest,
                       const RunStats &stats,
                       const StatRegistry *registry,
                       const IntervalSampler *sampler)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open stats JSON path '", path, "'");
    writeRunReportJson(os, manifest, stats, registry, sampler);
}

} // namespace v10
