/**
 * @file
 * SA/VU overlap accounting for the Fig. 17 breakdown: how much of the
 * measurement window had both unit kinds busy ("SA Op & VU Op"),
 * only the systolic arrays busy, only the vector units busy, or
 * everything idle.
 */

#ifndef V10_METRICS_OVERLAP_TRACKER_H
#define V10_METRICS_OVERLAP_TRACKER_H

#include "common/annotations.h"
#include "npu/functional_unit.h"
#include "sim/simulator.h"

namespace v10 {

/**
 * Observes busy/idle transitions on every functional unit and
 * accumulates window time into four mutually exclusive buckets.
 */
class V10_DOMAIN_LOCAL OverlapTracker : public FuObserver
{
  public:
    /** Time-bucket classification of an instant. */
    enum class Bucket { Idle = 0, SaOnly, VuOnly, Both };

    explicit OverlapTracker(Simulator &sim);

    /** FuObserver hook. */
    void fuBusyChanged(const FunctionalUnit &fu, bool busy) override;

    /** Begin the measurement window at the current cycle. */
    void startWindow();

    /** Close the window (accumulate the final segment) at now. */
    void finish();

    /** Accumulated cycles in a bucket. */
    Cycles bucketCycles(Bucket bucket) const;

    /** Window length in cycles (valid after finish()). */
    Cycles windowCycles() const { return window_; }

    /** Fraction of the window spent in @p bucket. */
    double bucketFrac(Bucket bucket) const;

    /** Fraction of the window where both SA and VU were busy. */
    double bothFrac() const { return bucketFrac(Bucket::Both); }

  private:
    /** Accumulate the time since the last transition. */
    void accumulate();

    /** Current bucket from the busy counters. */
    Bucket currentBucket() const;

    Simulator &sim_;
    int sa_busy_ = 0;
    int vu_busy_ = 0;
    Cycles last_change_ = 0;
    Cycles window_start_ = 0;
    Cycles window_ = 0;
    Cycles buckets_[4] = {0, 0, 0, 0};
    bool finished_ = false;
};

} // namespace v10

#endif // V10_METRICS_OVERLAP_TRACKER_H
