#include "metrics/overlap_tracker.h"

#include "common/log.h"

namespace v10 {

OverlapTracker::OverlapTracker(Simulator &sim) : sim_(sim)
{
}

OverlapTracker::Bucket
OverlapTracker::currentBucket() const
{
    if (sa_busy_ > 0 && vu_busy_ > 0)
        return Bucket::Both;
    if (sa_busy_ > 0)
        return Bucket::SaOnly;
    if (vu_busy_ > 0)
        return Bucket::VuOnly;
    return Bucket::Idle;
}

void
OverlapTracker::accumulate()
{
    const Cycles now = sim_.now();
    if (now > last_change_) {
        buckets_[static_cast<int>(currentBucket())] +=
            now - last_change_;
        last_change_ = now;
    }
}

void
OverlapTracker::fuBusyChanged(const FunctionalUnit &fu, bool busy)
{
    accumulate();
    int &counter =
        fu.kind() == FunctionalUnit::Kind::SA ? sa_busy_ : vu_busy_;
    counter += busy ? 1 : -1;
    if (counter < 0)
        panic("OverlapTracker: busy counter underflow on ",
              fu.name());
}

void
OverlapTracker::startWindow()
{
    window_start_ = sim_.now();
    last_change_ = window_start_;
    for (auto &b : buckets_)
        b = 0;
    finished_ = false;
}

void
OverlapTracker::finish()
{
    accumulate();
    window_ = sim_.now() - window_start_;
    finished_ = true;
}

Cycles
OverlapTracker::bucketCycles(Bucket bucket) const
{
    return buckets_[static_cast<int>(bucket)];
}

double
OverlapTracker::bucketFrac(Bucket bucket) const
{
    if (window_ == 0)
        return 0.0;
    return static_cast<double>(bucketCycles(bucket)) /
           static_cast<double>(window_);
}

} // namespace v10
