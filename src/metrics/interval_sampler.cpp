#include "metrics/interval_sampler.h"

#include <fstream>
#include <ostream>

#include "common/json.h"
#include "common/log.h"
#include "sim/simulator.h"

namespace v10 {

IntervalSampler::IntervalSampler(Cycles interval)
    : interval_(interval)
{
    if (interval_ == 0)
        fatal("sample interval must be > 0 cycles");
}

void
IntervalSampler::addProbe(std::string name, Mode mode, Probe probe)
{
    if (sim_)
        V10_PANIC("IntervalSampler: addProbe('", name,
                  "') after start()");
    if (!probe)
        V10_PANIC("IntervalSampler: null probe '", name, "'");
    probes_.push_back(
        ProbeEntry{std::move(name), mode, std::move(probe), 0.0});
}

void
IntervalSampler::addManualColumn(std::string name)
{
    if (sim_)
        V10_PANIC("IntervalSampler: addManualColumn('", name,
                  "') after start()");
    probes_.push_back(
        ProbeEntry{std::move(name), Mode::Level, Probe(), 0.0});
}

void
IntervalSampler::appendRow(Cycles cycle,
                           const std::vector<double> &values)
{
    if (sim_)
        V10_PANIC("IntervalSampler: appendRow() on a started sampler");
    if (values.size() != probes_.size())
        V10_PANIC("IntervalSampler: appendRow() with ", values.size(),
                  " values for ", probes_.size(), " columns");
    cycles_.push_back(cycle);
    values_.insert(values_.end(), values.begin(), values.end());
}

void
IntervalSampler::start(Simulator &sim)
{
    if (sim_)
        V10_PANIC("IntervalSampler: start() called twice");
    for (const auto &entry : probes_)
        if (!entry.probe)
            V10_PANIC("IntervalSampler: start() with manual column '",
                      entry.name, "'");
    sim_ = &sim;
    stopped_ = false;
    for (auto &entry : probes_)
        entry.prev = entry.probe();
    // The kernel re-arms the tick; no per-tick rescheduling here.
    tick_ = sim_->every(interval_, [this] { tick(); });
}

void
IntervalSampler::tick()
{
    if (stopped_)
        return;
    record(sim_->now());
}

void
IntervalSampler::stop()
{
    if (!sim_ || stopped_)
        return;
    stopped_ = true;
    sim_->cancelEvery(tick_);
    tick_ = kNoPeriodic;
    // Final partial-interval sample, unless a tick already recorded
    // this cycle.
    if (cycles_.empty() || cycles_.back() != sim_->now())
        record(sim_->now());
}

void
IntervalSampler::record(Cycles now)
{
    const Cycles prevCycle = cycles_.empty() ? 0 : cycles_.back();
    const double span =
        now > prevCycle ? static_cast<double>(now - prevCycle)
                        : static_cast<double>(interval_);
    cycles_.push_back(now);
    for (auto &entry : probes_) {
        const double cur = entry.probe();
        double sample = cur;
        switch (entry.mode) {
        case Mode::Level:
            break;
        case Mode::Rate:
            sample = (cur - entry.prev) / span;
            break;
        case Mode::Delta:
            sample = cur - entry.prev;
            break;
        }
        entry.prev = cur;
        values_.push_back(sample);
    }
}

std::vector<std::string>
IntervalSampler::probeNames() const
{
    std::vector<std::string> out;
    out.reserve(probes_.size());
    for (const auto &entry : probes_)
        out.push_back(entry.name);
    return out;
}

double
IntervalSampler::sample(std::size_t rowIdx, std::size_t probeIdx) const
{
    if (rowIdx >= rowCount() || probeIdx >= probes_.size())
        V10_PANIC("IntervalSampler: sample(", rowIdx, ", ", probeIdx,
                  ") out of range");
    return values_[rowIdx * probes_.size() + probeIdx];
}

void
IntervalSampler::writeCsv(std::ostream &os) const
{
    os << "cycle";
    for (const auto &entry : probes_)
        os << ',' << entry.name;
    os << '\n';
    for (std::size_t row = 0; row < rowCount(); ++row) {
        os << cycles_[row];
        for (std::size_t p = 0; p < probes_.size(); ++p)
            os << ',' << jsonNumber(sample(row, p));
        os << '\n';
    }
}

void
IntervalSampler::writeCsvFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open samples CSV path '", path, "'");
    writeCsv(os);
}

bool
IntervalSampler::writeCounterEvents(std::ostream &os,
                                    double cyclesPerUs,
                                    bool needComma) const
{
    bool wrote = false;
    for (std::size_t row = 0; row < rowCount(); ++row) {
        const double ts =
            static_cast<double>(cycles_[row]) / cyclesPerUs;
        for (std::size_t p = 0; p < probes_.size(); ++p) {
            if (needComma || wrote)
                os << ",\n";
            os << " {\"name\": \"" << jsonEscape(probes_[p].name)
               << "\", \"ph\": \"C\", \"ts\": " << jsonNumber(ts)
               << ", \"pid\": 0, \"args\": {\"value\": "
               << jsonNumber(sample(row, p)) << "}}";
            wrote = true;
        }
    }
    return wrote;
}

} // namespace v10
