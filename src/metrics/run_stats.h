/**
 * @file
 * The result record of one simulated run: everything the paper's
 * evaluation figures read off a run — per-unit utilization, SA/VU
 * overlap breakdown, HBM bandwidth utilization, per-tenant latency
 * and progress, preemption statistics.
 */

#ifndef V10_METRICS_RUN_STATS_H
#define V10_METRICS_RUN_STATS_H

#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace v10 {

/**
 * Per-tenant outcomes of a run.
 */
struct WorkloadRunStats
{
    std::string label;            ///< "BERT@32"
    std::uint64_t requests = 0;   ///< completed inference requests
    double avgLatencyUs = 0.0;    ///< mean request latency
    double p95LatencyUs = 0.0;    ///< tail request latency
    double requestsPerSec = 0.0;  ///< completion rate in the window

    Cycles saComputeCycles = 0;   ///< SA busy cycles attributed here
    Cycles vuComputeCycles = 0;   ///< VU busy cycles attributed here
    Cycles overheadCycles = 0;    ///< context-switch cycles paid
    std::uint64_t preemptions = 0; ///< operator/task preemptions

    /** Per-tenant SA utilization over the window. */
    double saUtil = 0.0;
    /** Per-tenant VU utilization over the window. */
    double vuUtil = 0.0;

    /**
     * Normalized progress vs dedicated-core execution (Eyerman &
     * Eeckhout's per-program speedup; filled by the experiment
     * layer, which knows the single-tenant rate).
     */
    double normalizedProgress = 0.0;

    /** Context-switch overhead as a fraction of single-tenant
     * request time (Fig. 21 left axis). */
    double ctxOverheadFrac = 0.0;

    /** Tenant was quarantined by the degradation policy. */
    bool quarantined = false;

    /** Tenant-attributable faults recorded against this tenant. */
    std::uint32_t faultStrikes = 0;

    /** Preemptions per completed request (Fig. 21 right axis). */
    double preemptsPerRequest() const;
};

/**
 * Whole-run outcomes.
 */
struct RunStats
{
    Cycles windowCycles = 0;      ///< measurement window length
    double windowSeconds = 0.0;

    double saUtil = 0.0;          ///< aggregate SA compute utilization
    double vuUtil = 0.0;          ///< aggregate VU compute utilization
    double combinedUtil = 0.0;    ///< (SA+VU busy) / (2 * window)
    double hbmUtil = 0.0;         ///< bandwidth utilization
    double flopsUtil = 0.0;       ///< achieved FLOPs / peak FLOPs

    /** Fig. 17 buckets (fractions of the window). */
    double overlapBothFrac = 0.0;
    double saOnlyFrac = 0.0;
    double vuOnlyFrac = 0.0;
    double idleFrac = 0.0;

    /** Robustness outcome (docs/ROBUSTNESS.md). aborted means the
     * *run* ended early — watchdog, cycle budget, or every tenant
     * quarantined — never that the process died. */
    bool aborted = false;
    std::string abortReason;
    std::uint64_t faultsInjected = 0;   ///< fault-plan injections
    std::uint64_t dmaRetries = 0;       ///< timed-out DMA reissues
    std::uint64_t saReplays = 0;        ///< corrupt-context replays
    std::uint32_t quarantinedTenants = 0;

    std::vector<WorkloadRunStats> workloads;

    /**
     * Flat (path, value) dump of the run's StatRegistry, taken after
     * freeze(); appended to detailedReport() and exported by the
     * JSON run report. Empty when no registry was attached.
     */
    std::vector<std::pair<std::string, double>> registrySnapshot;

    /** System throughput: sum of normalized progress (STP). */
    double stp() const;

    /** Minimum normalized progress across tenants (fairness). */
    double worstProgress() const;

    /**
     * Average normalized turnaround time (Eyerman & Eeckhout): the
     * mean per-tenant slowdown, 1 / normalizedProgress averaged
     * over tenants. Lower is better; 1.0 = dedicated-core latency.
     */
    double antt() const;

    /**
     * Fairness index (Eyerman & Eeckhout): min over max normalized
     * progress across tenants, in [0, 1]; 1.0 = perfectly equal
     * relative progress.
     */
    double fairness() const;

    /** One-line run summary for logs. */
    std::string summary() const;

    /**
     * Multi-line gem5-style statistics dump: every whole-run and
     * per-tenant quantity as `name value` lines, suitable for
     * diffing runs or feeding scripts.
     */
    std::string detailedReport() const;
};

} // namespace v10

#endif // V10_METRICS_RUN_STATS_H
