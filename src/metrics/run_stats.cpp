#include "metrics/run_stats.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace v10 {

double
WorkloadRunStats::preemptsPerRequest() const
{
    if (requests == 0)
        return 0.0;
    return static_cast<double>(preemptions) /
           static_cast<double>(requests);
}

double
RunStats::stp() const
{
    double sum = 0.0;
    for (const auto &w : workloads)
        sum += w.normalizedProgress;
    return sum;
}

double
RunStats::worstProgress() const
{
    double worst = workloads.empty() ? 0.0 : workloads[0].normalizedProgress;
    for (const auto &w : workloads)
        worst = std::min(worst, w.normalizedProgress);
    return worst;
}

double
RunStats::antt() const
{
    if (workloads.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &w : workloads) {
        if (w.normalizedProgress <= 0.0)
            return 0.0; // undefined without progress data
        sum += 1.0 / w.normalizedProgress;
    }
    return sum / static_cast<double>(workloads.size());
}

double
RunStats::fairness() const
{
    if (workloads.empty())
        return 0.0;
    double lo = workloads[0].normalizedProgress;
    double hi = workloads[0].normalizedProgress;
    for (const auto &w : workloads) {
        lo = std::min(lo, w.normalizedProgress);
        hi = std::max(hi, w.normalizedProgress);
    }
    return hi > 0.0 ? lo / hi : 0.0;
}

std::string
RunStats::detailedReport() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(6);
    os << "window.cycles            " << windowCycles << '\n';
    os << "window.seconds           " << windowSeconds << '\n';
    os << "util.sa                  " << saUtil << '\n';
    os << "util.vu                  " << vuUtil << '\n';
    os << "util.combined            " << combinedUtil << '\n';
    os << "util.hbm_bw              " << hbmUtil << '\n';
    os << "util.flops               " << flopsUtil << '\n';
    os << "overlap.both             " << overlapBothFrac << '\n';
    os << "overlap.sa_only          " << saOnlyFrac << '\n';
    os << "overlap.vu_only          " << vuOnlyFrac << '\n';
    os << "overlap.idle             " << idleFrac << '\n';
    os << "system.stp               " << stp() << '\n';
    os << "system.antt              " << antt() << '\n';
    os << "system.fairness          " << fairness() << '\n';
    if (aborted || faultsInjected > 0 || quarantinedTenants > 0) {
        os << "robust.aborted           " << aborted << '\n';
        if (!abortReason.empty())
            os << "robust.abort_reason      " << abortReason << '\n';
        os << "robust.faults_injected   " << faultsInjected << '\n';
        os << "robust.dma_retries       " << dmaRetries << '\n';
        os << "robust.sa_replays        " << saReplays << '\n';
        os << "robust.quarantined       " << quarantinedTenants
           << '\n';
    }
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const auto &w = workloads[i];
        const std::string p =
            "tenant." + std::to_string(i) + ".";
        os << p << "label            " << w.label << '\n';
        os << p << "requests         " << w.requests << '\n';
        os << p << "latency_avg_us   " << w.avgLatencyUs << '\n';
        os << p << "latency_p95_us   " << w.p95LatencyUs << '\n';
        os << p << "requests_per_s   " << w.requestsPerSec << '\n';
        os << p << "progress         " << w.normalizedProgress
           << '\n';
        os << p << "sa_util          " << w.saUtil << '\n';
        os << p << "vu_util          " << w.vuUtil << '\n';
        os << p << "preemptions      " << w.preemptions << '\n';
        os << p << "ctx_overhead     " << w.ctxOverheadFrac << '\n';
        if (w.quarantined || w.faultStrikes > 0) {
            os << p << "quarantined      " << w.quarantined << '\n';
            os << p << "fault_strikes    " << w.faultStrikes << '\n';
        }
    }
    for (const auto &[path, value] : registrySnapshot)
        os << "registry." << path << "  " << value << '\n';
    return os.str();
}

std::string
RunStats::summary() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(3);
    os << "window=" << windowCycles << "cyc sa=" << saUtil
       << " vu=" << vuUtil << " hbm=" << hbmUtil
       << " both=" << overlapBothFrac << " stp=" << stp();
    if (aborted)
        os << " ABORTED(" << abortReason << ")";
    if (faultsInjected > 0)
        os << " faults=" << faultsInjected;
    for (const auto &w : workloads) {
        os << " [" << w.label << " req=" << w.requests
           << " lat=" << w.avgLatencyUs << "us np="
           << w.normalizedProgress << "]";
    }
    return os.str();
}

} // namespace v10
