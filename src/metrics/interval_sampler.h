/**
 * @file
 * Periodic time-series sampling of simulator state: every N cycles a
 * Simulator::every() periodic event reads a set of registered probes
 * and appends one row to an in-memory table. Rows export as CSV or as
 * Chrome trace-event counter tracks ("ph":"C") that render above the
 * operator slices in Perfetto.
 *
 * Probes are read-only by contract: a tick must not mutate component
 * state, so enabling sampling leaves scheduling decisions
 * bit-identical to a run without it (the event queue fires same-cycle
 * events in insertion order, and sampler ticks only ever append).
 */

#ifndef V10_METRICS_INTERVAL_SAMPLER_H
#define V10_METRICS_INTERVAL_SAMPLER_H

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"

namespace v10 {

class Simulator;

class V10_DOMAIN_LOCAL IntervalSampler
{
  public:
    /**
     * How a probe's raw reading becomes the recorded sample:
     *  - Level: record the reading as-is (queue depths, tenant counts)
     *  - Rate: (reading - previous) / interval (utilizations, when
     *    the reading is an accumulated busy-cycle or byte count)
     *  - Delta: reading - previous (events per interval, e.g.
     *    preemptions)
     */
    enum class Mode { Level, Rate, Delta };

    using Probe = std::function<double()>;

    /** @param interval cycles between samples (must be > 0) */
    explicit IntervalSampler(Cycles interval);

    IntervalSampler(const IntervalSampler &) = delete;
    IntervalSampler &operator=(const IntervalSampler &) = delete;

    /** Register a probe; must precede start(). */
    void addProbe(std::string name, Mode mode, Probe probe);

    /**
     * Register a column whose rows are supplied externally through
     * appendRow() — used by layers (e.g. the serving stack) that
     * sample deterministically inside their own event loop instead of
     * through simulator ticks. A sampler with manual columns cannot
     * be start()ed.
     */
    void addManualColumn(std::string name);

    /**
     * Append one externally-sampled row. Only valid on a sampler
     * that was never start()ed; @p values must cover every column in
     * registration order.
     */
    void appendRow(Cycles cycle, const std::vector<double> &values);

    /**
     * Bind to @p sim and schedule the first tick one interval from
     * now. Also records a baseline reading at the current cycle so
     * Rate/Delta probes have a previous value.
     */
    void start(Simulator &sim);

    /** Take one final sample at the current cycle (end of run). */
    void stop();

    Cycles interval() const { return interval_; }
    std::size_t probeCount() const { return probes_.size(); }
    std::size_t rowCount() const { return cycles_.size(); }

    /** Probe names in registration order (CSV column order). */
    std::vector<std::string> probeNames() const;

    /** Sample cycle of each recorded row. */
    const std::vector<Cycles> &rowCycles() const { return cycles_; }

    /** Recorded value of probe @p probeIdx in row @p rowIdx. */
    double sample(std::size_t rowIdx, std::size_t probeIdx) const;

    /** "cycle,probe1,probe2,..." header plus one line per row. */
    void writeCsv(std::ostream &os) const;

    /** writeCsv() to a path; fatal() if unwritable. */
    void writeCsvFile(const std::string &path) const;

    /**
     * Emit one Chrome trace counter event per (row, probe) onto an
     * open JSON event array.
     * @param cyclesPerUs converts sample cycles to trace timestamps
     * @param needComma true when the array already holds events
     * @return true if any event was written
     */
    bool writeCounterEvents(std::ostream &os, double cyclesPerUs,
                            bool needComma) const;

  private:
    struct ProbeEntry
    {
        std::string name;
        Mode mode;
        Probe probe;
        double prev = 0.0;
    };

    void tick();
    void record(Cycles now);

    Cycles interval_;
    Simulator *sim_ = nullptr;
    PeriodicId tick_ = kNoPeriodic;
    bool stopped_ = false;
    std::vector<ProbeEntry> probes_;
    std::vector<Cycles> cycles_;
    std::vector<double> values_; ///< row-major, rowCount x probeCount
};

} // namespace v10

#endif // V10_METRICS_INTERVAL_SAMPLER_H
