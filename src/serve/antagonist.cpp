#include "serve/antagonist.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/string_util.h"
#include "sim/fault_plan.h"

namespace v10 {

namespace {

bool
kindFromName(const std::string &name, AntagonistKind *out)
{
    if (name == "flood") {
        *out = AntagonistKind::Flood;
        return true;
    }
    if (name == "hbm-hog") {
        *out = AntagonistKind::HbmHog;
        return true;
    }
    if (name == "thrash") {
        *out = AntagonistKind::Thrash;
        return true;
    }
    return false;
}

double
defaultMagnitude(AntagonistKind kind)
{
    switch (kind) {
    case AntagonistKind::Flood:
        return 8.0; // burst arrivals per firing
    case AntagonistKind::HbmHog:
        return 4.0; // service inflation factor
    case AntagonistKind::Thrash:
        return 0.5; // overhead fraction of the victim's mean
    }
    return 0.0;
}

Status
checkProfile(const AntagonistProfile &profile,
             const std::string &source, std::size_t index)
{
    const std::string where =
        std::string(antagonistKindName(profile.kind)) +
        " (profile " + std::to_string(index + 1) + ")";
    if (profile.tenant < 0)
        return parseError("antagonist needs tenant=<index>", source,
                          0, where);
    if (!std::isfinite(profile.rate) || profile.rate < 0.0 ||
        profile.rate > 1.0)
        return parseError("antagonist rate must be in [0, 1]",
                          source, 0, where);
    if (!std::isfinite(profile.magnitude) || profile.magnitude < 0.0)
        return parseError("antagonist magnitude must be >= 0",
                          source, 0, where);
    if (profile.kind == AntagonistKind::HbmHog &&
        profile.magnitude != 0.0 && profile.magnitude < 1.0)
        return parseError("hog inflation must be >= 1 (or 0 for the "
                          "default)",
                          source, 0, where);
    if (!std::isfinite(profile.afterSec) || profile.afterSec < 0.0)
        return parseError("antagonist after must be >= 0", source, 0,
                          where);
    if (!std::isfinite(profile.untilSec) || profile.untilSec < 0.0)
        return parseError("antagonist until must be >= 0", source, 0,
                          where);
    if (profile.untilSec > 0.0 &&
        profile.untilSec <= profile.afterSec)
        return parseError("antagonist until must exceed after",
                          source, 0, where);
    return Status::ok();
}

} // namespace

const char *
antagonistKindName(AntagonistKind kind)
{
    switch (kind) {
      case AntagonistKind::Flood:  return "flood";
      case AntagonistKind::HbmHog: return "hbm-hog";
      case AntagonistKind::Thrash: return "thrash";
    }
    return "unknown";
}

double
AntagonistProfile::effectiveMagnitude() const
{
    return magnitude > 0.0 ? magnitude : defaultMagnitude(kind);
}

bool
AntagonistProfile::activeAt(double timeSec) const
{
    if (timeSec < afterSec)
        return false;
    return untilSec <= 0.0 || timeSec < untilSec;
}

std::string
AntagonistProfile::spec() const
{
    std::ostringstream os;
    os << antagonistKindName(kind) << ":tenant=" << tenant;
    if (kind == AntagonistKind::Flood)
        os << ":rate=" << rate;
    if (magnitude > 0.0)
        os << ":mag=" << magnitude;
    if (afterSec > 0.0)
        os << ":after=" << afterSec;
    if (untilSec > 0.0)
        os << ":until=" << untilSec;
    return os.str();
}

Result<AntagonistPlan>
AntagonistPlan::parse(const std::string &spec,
                      const std::string &source)
{
    auto sites_or = parseSpecSites(spec, source);
    if (!sites_or.ok())
        return sites_or.error();
    const std::vector<SpecSite> sites = sites_or.take();

    AntagonistPlan plan;
    for (std::size_t i = 0; i < sites.size(); ++i) {
        const SpecSite &site = sites[i];
        AntagonistProfile profile;
        if (!kindFromName(site.kind, &profile.kind))
            return parseError("unknown antagonist kind", source, 0,
                              site.kind);
        for (const auto &[key, val] : site.fields) {
            if (key == "tenant") {
                const auto v = parseInt64(val);
                if (!v || *v < 0)
                    return parseError("bad antagonist tenant index",
                                      source, 0, val);
                profile.tenant = static_cast<int>(*v);
            } else if (key == "rate") {
                const auto v = parseDouble(val);
                if (!v)
                    return parseError("bad antagonist rate", source,
                                      0, val);
                profile.rate = *v;
            } else if (key == "mag") {
                const auto v = parseDouble(val);
                if (!v)
                    return parseError("bad antagonist magnitude",
                                      source, 0, val);
                profile.magnitude = *v;
            } else if (key == "after") {
                const auto v = parseDouble(val);
                if (!v)
                    return parseError("bad antagonist after time",
                                      source, 0, val);
                profile.afterSec = *v;
            } else if (key == "until") {
                const auto v = parseDouble(val);
                if (!v)
                    return parseError("bad antagonist until time",
                                      source, 0, val);
                profile.untilSec = *v;
            } else {
                return parseError("unknown antagonist-profile key",
                                  source, 0, key);
            }
        }
        const Status ok = checkProfile(profile, source, i);
        if (!ok)
            return ok.error();
        plan.add(profile);
    }
    return plan;
}

Result<AntagonistPlan>
AntagonistPlan::fromJson(const std::string &text,
                         const std::string &source)
{
    JsonValue doc;
    std::string error;
    if (!JsonValue::parse(text, &doc, &error))
        return parseError("malformed antagonist-plan JSON: " + error,
                          source);
    if (!doc.isObject())
        return parseError("antagonist plan must be a JSON object",
                          source);
    const JsonValue *profiles = doc.find("antagonists");
    if (profiles == nullptr || !profiles->isArray())
        return parseError("missing \"antagonists\" array", source, 0,
                          "antagonists");

    AntagonistPlan plan;
    for (std::size_t i = 0; i < profiles->array.size(); ++i) {
        const JsonValue &entry = profiles->array[i];
        const std::string where =
            "antagonists[" + std::to_string(i) + "]";
        if (!entry.isObject())
            return parseError("antagonist entry must be an object",
                              source, 0, where);
        const JsonValue *kind = entry.find("kind");
        if (kind == nullptr || !kind->isString())
            return parseError("antagonist entry needs a string "
                              "\"kind\"",
                              source, 0, where);
        AntagonistProfile profile;
        if (!kindFromName(kind->str, &profile.kind))
            return parseError("unknown antagonist kind", source, 0,
                              kind->str);
        auto number = [&](const char *key, double fallback,
                          double *out) -> bool {
            const JsonValue *v = entry.find(key);
            if (v == nullptr) {
                *out = fallback;
                return true;
            }
            if (!v->isNumber())
                return false;
            *out = v->number;
            return true;
        };
        double tenant = -1.0;
        if (!number("tenant", -1.0, &tenant) ||
            !number("rate", 1.0, &profile.rate) ||
            !number("mag", 0.0, &profile.magnitude) ||
            !number("after", 0.0, &profile.afterSec) ||
            !number("until", 0.0, &profile.untilSec))
            return parseError("non-numeric antagonist field", source,
                              0, where);
        profile.tenant = static_cast<int>(tenant);
        const Status ok = checkProfile(profile, source, i);
        if (!ok)
            return ok.error();
        plan.add(profile);
    }
    return plan;
}

Result<AntagonistPlan>
AntagonistPlan::fromJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return parseError("cannot open antagonist-plan file", path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return fromJson(ss.str(), path);
}

Status
AntagonistPlan::check(std::size_t tenantCount,
                      double durationSec) const
{
    for (const AntagonistProfile &profile : profiles_) {
        if (profile.tenant < 0 ||
            static_cast<std::size_t>(profile.tenant) >= tenantCount)
            return parseError("antagonist tenant index out of range",
                              "", 0, profile.spec());
        if (profile.afterSec >= durationSec)
            return parseError("antagonist window starts past the "
                              "run horizon",
                              "", 0, profile.spec());
    }
    return Status::ok();
}

std::string
AntagonistPlan::summary() const
{
    std::string out;
    for (const AntagonistProfile &profile : profiles_) {
        if (!out.empty())
            out += ',';
        out += profile.spec();
    }
    return out;
}

Status
DetectorPolicy::check() const
{
    if (!std::isfinite(hiScore) || hiScore <= 0.0)
        return parseError("detector: hi threshold must be positive",
                          "", 0, "hiScore");
    if (!std::isfinite(loScore) || loScore < 0.0 ||
        loScore >= hiScore)
        return parseError("detector: lo threshold must be in "
                          "[0, hi)",
                          "", 0, "loScore");
    return Status::ok();
}

const char *
quarantineStageName(QuarantineStage stage)
{
    switch (stage) {
      case QuarantineStage::Healthy:   return "healthy";
      case QuarantineStage::Throttled: return "throttled";
      case QuarantineStage::Isolated:  return "isolated";
      case QuarantineStage::Evicted:   return "evicted";
    }
    return "unknown";
}

QuarantineController::QuarantineController(std::size_t tenants,
                                           DetectorPolicy policy,
                                           QuarantineLadder ladder)
    : policy_(policy), ladder_(ladder),
      stage_(tenants, QuarantineStage::Healthy),
      strikes_(tenants, 0), clean_(tenants, 0), peak_(tenants, 0.0)
{
}

bool
QuarantineController::observe(std::size_t tenant, double score,
                              Transition *out)
{
    peak_[tenant] = std::max(peak_[tenant], score);
    if (stage_[tenant] == QuarantineStage::Evicted)
        return false; // terminal

    if (score > policy_.hiScore) {
        ++strikes_[tenant];
        clean_[tenant] = 0;
    } else if (score < policy_.loScore) {
        ++clean_[tenant];
    }
    // Hysteresis: scores between lo and hi neither strike nor
    // count as clean — the tenant holds its current rung.

    const QuarantineStage from = stage_[tenant];
    QuarantineStage to = from;
    if (strikes_[tenant] >= ladder_.evictStrikes)
        to = QuarantineStage::Evicted;
    else if (strikes_[tenant] >= ladder_.isolateStrikes)
        to = QuarantineStage::Isolated;
    else if (strikes_[tenant] >= ladder_.throttleStrikes)
        to = QuarantineStage::Throttled;

    if (to <= from && clean_[tenant] >= ladder_.recoveryEpochs) {
        // Sustained clean behaviour: step one rung down and reset
        // the strike count to the new rung's floor so re-escalation
        // requires fresh misbehaviour.
        clean_[tenant] = 0;
        switch (from) {
        case QuarantineStage::Isolated:
            to = QuarantineStage::Throttled;
            strikes_[tenant] = ladder_.throttleStrikes;
            break;
        case QuarantineStage::Throttled:
            to = QuarantineStage::Healthy;
            strikes_[tenant] = 0;
            break;
        default:
            break;
        }
    }

    if (to == from)
        return false;
    stage_[tenant] = to;
    if (out != nullptr) {
        out->tenant = tenant;
        out->from = from;
        out->to = to;
        out->strikes = strikes_[tenant];
        out->score = score;
    }
    return true;
}

} // namespace v10
