/**
 * @file
 * Open-loop arrival processes for fleet-scale traffic serving
 * (ROADMAP "Fleet-scale online serving"): seeded, deterministic
 * per-tenant request streams merged into one event-ordered feed.
 *
 * Three generator families cover the canonical serving shapes:
 *  - Poisson: memoryless constant-rate arrivals (the M/M/1 anchor
 *    the analytic validation tests check against);
 *  - Diurnal: a sinusoid-modulated rate lambda(t) = r*(1 + a*sin)
 *    sampled exactly by Lewis-Shedler thinning;
 *  - Bursty: a two-state Markov-modulated (on/off) Poisson process
 *    whose index of dispersion exceeds 1.
 *
 * Determinism contract: a stream is a pure function of (spec, seed).
 * Per-tenant seeds are derived with Rng::deriveStream so tenant
 * streams are disjoint and independent of pool ordering, and the
 * merged feed breaks time ties by (tenant, seq) so it is identical
 * across platforms and jobs counts.
 */

#ifndef V10_SERVE_ARRIVAL_H
#define V10_SERVE_ARRIVAL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace v10 {

/** Arrival process families. */
enum class ArrivalKind {
    Poisson,
    Diurnal,
    Bursty,
};

/** Printable name of an arrival kind. */
const char *arrivalKindName(ArrivalKind kind);

/** Parse "poisson" / "diurnal" / "bursty" (case-sensitive). */
std::optional<ArrivalKind>
tryArrivalKindFromName(const std::string &name);

/**
 * One tenant's offered-load specification. Only the fields of the
 * selected kind are read; rps is always the *mean* offered rate, so
 * swapping kinds at a fixed rps keeps total offered load constant.
 */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;
    double rps = 0.0; ///< mean offered rate (requests/second)

    /** Diurnal: relative amplitude in [0, 1) and period of the
     * sinusoid; lambda(t) = rps * (1 + amplitude * sin(2*pi*t/T)). */
    double amplitude = 0.5;
    double periodSec = 60.0;

    /** Bursty (MMPP on/off): mean exponential dwell in the burst
     * (on) and idle (off) states. The on-state rate is scaled to
     * rps / duty so the long-run mean stays rps. */
    double meanOnSec = 0.5;
    double meanOffSec = 1.0;

    /** Structured validation (finite fields, rate >= 0, amplitude in
     * [0, 1), positive period/dwells). @p what labels diagnostics. */
    Status check(const std::string &what = "arrival") const;
};

/**
 * Deterministic generator for one tenant's stream. Construct with
 * the tenant's derived seed, then generate() the full stream for a
 * horizon; repeated construction yields the identical stream.
 */
class ArrivalProcess
{
  public:
    /** @param spec validated arrival spec (check() must pass)
     *  @param seed per-stream seed (Rng::deriveStream of the run
     *         seed and the tenant index) */
    ArrivalProcess(ArrivalSpec spec, std::uint64_t seed);

    /** The spec driving this process. */
    const ArrivalSpec &spec() const { return spec_; }

    /**
     * All arrival times in [0, durationSec), ascending. A fresh
     * ArrivalProcess with the same (spec, seed) returns the same
     * vector for any duration prefix.
     */
    std::vector<double> generate(double durationSec);

  private:
    std::vector<double> generatePoisson(double durationSec);
    std::vector<double> generateDiurnal(double durationSec);
    std::vector<double> generateBursty(double durationSec);

    ArrivalSpec spec_;
    Rng rng_;
};

/** One request in the merged fleet feed. */
struct ArrivalEvent
{
    double timeSec = 0.0;      ///< arrival time
    std::uint32_t tenant = 0;  ///< index into the tenant list
    std::uint64_t seq = 0;     ///< per-tenant request sequence number
};

/**
 * Merge per-tenant streams (streams[i] = tenant i's ascending
 * times) into one feed ordered by (time, tenant, seq). The
 * tie-break makes the merge a pure function of its inputs.
 */
std::vector<ArrivalEvent>
mergeArrivalStreams(const std::vector<std::vector<double>> &streams);

} // namespace v10

#endif // V10_SERVE_ARRIVAL_H
