#include "serve/admission.h"

#include <algorithm>
#include <cmath>

namespace v10 {

Status
AdmissionPolicy::check() const
{
    if (!std::isfinite(headroom) || headroom < 1.0)
        return parseError("admission: headroom must be >= 1", "", 0,
                          "headroom");
    if (!std::isfinite(decrease) || decrease <= 0.0 ||
        decrease >= 1.0)
        return parseError("admission: decrease must be in (0, 1)",
                          "", 0, "decrease");
    if (!std::isfinite(increase) || increase <= 0.0)
        return parseError("admission: increase must be positive", "",
                          0, "increase");
    if (!std::isfinite(minRateFrac) || minRateFrac <= 0.0 ||
        minRateFrac > 1.0)
        return parseError("admission: rate floor must be in (0, 1]",
                          "", 0, "minRateFrac");
    if (!std::isfinite(burstSec) || burstSec <= 0.0)
        return parseError("admission: burst depth must be positive",
                          "", 0, "burstSec");
    return Status::ok();
}

TokenBucket::TokenBucket(double ratePerSec, double burstSec,
                         double nowSec)
    : rate_(ratePerSec), burstSec_(burstSec), lastSec_(nowSec)
{
    capacity_ = std::max(1.0, rate_ * burstSec_);
    tokens_ = capacity_; // start full: no cold-start rejections
}

void
TokenBucket::setRate(double ratePerSec)
{
    rate_ = ratePerSec;
    capacity_ = std::max(1.0, rate_ * burstSec_);
    tokens_ = std::min(tokens_, capacity_);
}

void
TokenBucket::refill(double nowSec)
{
    if (nowSec <= lastSec_)
        return;
    tokens_ = std::min(capacity_,
                       tokens_ + rate_ * (nowSec - lastSec_));
    lastSec_ = nowSec;
}

bool
TokenBucket::tryAdmit(double nowSec)
{
    refill(nowSec);
    if (tokens_ < 1.0)
        return false;
    tokens_ -= 1.0;
    return true;
}

AdmissionGate::AdmissionGate(std::size_t tenants,
                             AdmissionPolicy policy)
    : policy_(policy), buckets_(tenants), base_(tenants, 0.0),
      adaptive_(tenants, 0.0), cap_(tenants, 1.0),
      blocked_(tenants, false), decreases_(tenants, 0),
      increases_(tenants, 0)
{
}

void
AdmissionGate::configure(std::size_t t, double offeredRps)
{
    base_[t] = offeredRps * policy_.headroom;
    adaptive_[t] = base_[t];
    buckets_[t] = TokenBucket(base_[t], policy_.burstSec, 0.0);
}

TokenBucket *
AdmissionGate::bucket(std::size_t t)
{
    // A quarantine cap (or eviction) forces the bucket into the
    // arrival path even when adaptive admission itself is off.
    if (!policy_.enabled && cap_[t] >= 1.0 && !blocked_[t])
        return nullptr;
    return &buckets_[t];
}

double
AdmissionGate::rateRps(std::size_t t) const
{
    if (blocked_[t])
        return 0.0;
    return adaptive_[t] * cap_[t];
}

void
AdmissionGate::push(std::size_t t)
{
    buckets_[t].setRate(rateRps(t));
}

AdmissionGate::Change
AdmissionGate::adapt(std::size_t t, bool alert)
{
    if (blocked_[t] || base_[t] <= 0.0)
        return Change::Held;
    const double floor = base_[t] * policy_.minRateFrac;
    const double before = adaptive_[t];
    if (alert) {
        adaptive_[t] = std::max(floor, before * policy_.decrease);
        if (adaptive_[t] < before) {
            ++decreases_[t];
            push(t);
            return Change::Decreased;
        }
        return Change::Held;
    }
    adaptive_[t] =
        std::min(base_[t], before + base_[t] * policy_.increase);
    if (adaptive_[t] > before) {
        ++increases_[t];
        push(t);
        return Change::Increased;
    }
    return Change::Held;
}

void
AdmissionGate::throttle(std::size_t t, double factor)
{
    cap_[t] = factor;
    push(t);
}

void
AdmissionGate::release(std::size_t t)
{
    cap_[t] = 1.0;
    push(t);
}

void
AdmissionGate::block(std::size_t t)
{
    blocked_[t] = true;
    push(t);
}

} // namespace v10
