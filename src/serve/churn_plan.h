/**
 * @file
 * Deterministic tenant churn for the open-loop serving layer
 * (docs/RESILIENCE.md): join/leave/migrate events parsed from a
 * compact spec string (`--churn`) or a JSON plan file, mirroring the
 * fault-plan surface. Events carry sim-time stamps and are snapped
 * to the serve control-epoch grid by the ClusterManager, so every
 * transition lands on the same deterministic boundary regardless of
 * `--jobs`.
 *
 * Spec grammar:
 *
 *   spec   := event ("," event)*
 *   event  := action ":tenant=" name ":at=" seconds [":core=" index]
 *   action := "join" | "leave" | "migrate"
 *
 * e.g. "join:tenant=BERT#7:at=0.25,migrate:tenant=GPT2#0:at=0.5:core=3"
 *
 * Semantics: a tenant with a join event is dormant until it; leave
 * stops the tenant's arrivals and lets its queue drain gracefully;
 * migrate hands the waiting queue to the destination core (the
 * in-flight request finishes where it started).
 */

#ifndef V10_SERVE_CHURN_PLAN_H
#define V10_SERVE_CHURN_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace v10 {

/** Churn event kinds. */
enum class ChurnAction {
    Join,    ///< tenant starts emitting arrivals
    Leave,   ///< arrivals stop; queue drains gracefully
    Migrate, ///< waiting queue handed to another core
};

/** Spec-grammar name of a churn action ("join", ...). */
const char *churnActionName(ChurnAction action);

/** One scheduled churn event. */
struct ChurnEvent
{
    ChurnAction action = ChurnAction::Join;
    std::string tenant;    ///< serve tenant name ("BERT#17")
    double atSec = 0.0;    ///< sim time (snapped to the epoch grid)
    /** Migrate destination core; -1 = least-loaded at event time. */
    std::int64_t core = -1;

    /** Round-trippable spec fragment. */
    std::string spec() const;
};

/**
 * A parsed, validated churn schedule. Immutable once handed to the
 * ClusterManager; events are kept sorted by (atSec, insertion
 * order) so application order is deterministic.
 */
class ChurnPlan
{
  public:
    /** Parse the CLI spec grammar; errors name the bad token. */
    static Result<ChurnPlan> parse(const std::string &spec,
                                   const std::string &source =
                                       "--churn");

    /**
     * Parse the JSON form: {"churn": [{"action": "join", "tenant":
     * "BERT#7", "at": 0.25, "core": 3}]} ("core" optional).
     */
    static Result<ChurnPlan> fromJson(const std::string &text,
                                      const std::string &source);

    /** fromJson() over a file's contents. */
    static Result<ChurnPlan> fromJsonFile(const std::string &path);

    /** Append an event (programmatic construction in tests). */
    void add(ChurnEvent event);

    bool empty() const { return events_.empty(); }
    const std::vector<ChurnEvent> &events() const { return events_; }

    /** Events must land inside (0, durationSec). */
    Status check(double durationSec) const;

    /** Round-trippable spec string of the whole plan. */
    std::string summary() const;

  private:
    std::vector<ChurnEvent> events_;
};

} // namespace v10

#endif // V10_SERVE_CHURN_PLAN_H
