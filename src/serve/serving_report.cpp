#include "serve/serving_report.h"

#include <sstream>

#include "common/json.h"
#include "common/string_util.h"
#include "metrics/stat_registry.h"
#include "trace/attribution.h"

namespace v10 {

double
TenantServingStats::sloAttainment() const
{
    if (completed == 0 || sloTargetUs <= 0.0)
        return 1.0;
    return static_cast<double>(completed - sloViolations) /
           static_cast<double>(completed);
}

std::string
ServingReport::summary() const
{
    std::ostringstream os;
    os << policy << ": " << offered << " offered, " << completed
       << " completed, " << shed << " shed, ";
    if (rejected > 0)
        os << rejected << " rejected, ";
    os << sloViolations << " late over "
       << formatDouble(durationSec, 2) << "s on " << coresUsed << "/"
       << cores << " cores; goodput " << formatDouble(goodputRps, 1)
       << " req/s, mean core util " << formatPct(meanCoreUtil);
    return os.str();
}

Status
ServingReport::checkConservation() const
{
    for (const TenantServingStats &t : tenants) {
        if (!t.conserved())
            return parseError(
                "serving conservation violated: offered " +
                    std::to_string(t.offered) + " != completed " +
                    std::to_string(t.completed) + " + shed " +
                    std::to_string(t.shed) + " + rejected " +
                    std::to_string(t.rejected) + " + in-flight " +
                    std::to_string(t.inFlightAtEnd),
                "", 0, t.name);
    }
    if (offered != completed + shed + rejected + inFlightAtEnd)
        return parseError("serving conservation violated at the "
                          "fleet level",
                          "", 0, "fleet");
    return Status::ok();
}

void
writeServingReportJson(JsonWriter &w, const ServingReport &report)
{
    w.beginObject();
    w.kv("policy", report.policy);
    w.kv("duration_sec", report.durationSec);
    w.kv("cores", static_cast<std::uint64_t>(report.cores));
    w.kv("cores_used",
         static_cast<std::uint64_t>(report.coresUsed));
    w.kv("offered", report.offered);
    w.kv("completed", report.completed);
    w.kv("shed", report.shed);
    w.kv("rejected", report.rejected);
    w.kv("in_flight_at_end", report.inFlightAtEnd);
    w.kv("slo_violations", report.sloViolations);
    w.kv("goodput_rps", report.goodputRps);
    w.kv("mean_core_util", report.meanCoreUtil);
    w.kv("slo_alerts", report.sloAlerts);
    w.kv("control_epochs",
         static_cast<std::uint64_t>(report.controlEpochs));

    w.key("tenants");
    w.beginArray();
    for (const TenantServingStats &t : report.tenants) {
        w.beginObject();
        w.kv("name", t.name);
        w.kv("model", t.model);
        w.kv("core", static_cast<std::uint64_t>(t.core));
        w.kv("offered", t.offered);
        w.kv("completed", t.completed);
        w.kv("shed", t.shed);
        w.kv("rejected", t.rejected);
        w.kv("in_flight_at_end", t.inFlightAtEnd);
        w.kv("slo_violations", t.sloViolations);
        w.kv("offered_rps", t.offeredRps);
        w.kv("goodput_rps", t.goodputRps);
        w.kv("mean_us", t.meanUs);
        w.kv("p50_us", t.p50Us);
        w.kv("p99_us", t.p99Us);
        w.kv("p999_us", t.p999Us);
        w.kv("max_us", t.maxUs);
        w.kv("slo_target_us", t.sloTargetUs);
        w.kv("weight", t.weight);
        w.kv("slo_attainment", t.sloAttainment());
        w.key("attrib");
        w.beginObject();
        w.kv("queue_us", t.attribQueueUs);
        w.kv("service_us", t.attribServiceUs);
        w.kv("solo_us", t.attribSoloUs);
        w.kv("inflation_us", t.attribInflationUs);
        w.kv("sojourn_us", t.attribSojournUs);
        w.endObject();
        w.kv("burn_short", t.burnShort);
        w.kv("burn_long", t.burnLong);
        w.kv("slo_alert", t.sloAlert);
        w.key("admission");
        w.beginObject();
        w.kv("base_rps", t.admitRpsBase);
        w.kv("final_rps", t.admitRpsFinal);
        w.kv("decreases", t.admitDecreases);
        w.kv("increases", t.admitIncreases);
        w.endObject();
        w.key("quarantine");
        w.beginObject();
        w.kv("stage", t.quarantineStage);
        w.kv("strikes", static_cast<std::uint64_t>(t.strikes));
        w.kv("peak_score", t.peakAntagonistScore);
        w.endObject();
        w.key("churn");
        w.beginObject();
        w.kv("join_sec", t.joinSec);
        w.kv("leave_sec", t.leaveSec);
        w.kv("migrations", t.migrations);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("admission");
    w.beginObject();
    w.kv("enabled", report.admissionEnabled);
    w.key("events");
    w.beginArray();
    for (const AdmissionRecord &r : report.admissionEvents) {
        w.beginObject();
        w.kv("time_sec", r.timeSec);
        w.kv("epoch", static_cast<std::uint64_t>(r.epoch));
        w.kv("tenant", r.tenant);
        w.kv("action", r.action);
        w.kv("rate_rps", r.rateRps);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("quarantine");
    w.beginObject();
    w.key("events");
    w.beginArray();
    for (const QuarantineRecord &r : report.quarantineEvents) {
        w.beginObject();
        w.kv("time_sec", r.timeSec);
        w.kv("epoch", static_cast<std::uint64_t>(r.epoch));
        w.kv("tenant", r.tenant);
        w.kv("from", r.from);
        w.kv("to", r.to);
        w.kv("strikes", static_cast<std::uint64_t>(r.strikes));
        w.kv("score", r.score);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("churn");
    w.beginObject();
    w.key("events");
    w.beginArray();
    for (const ChurnRecord &r : report.churnEvents) {
        w.beginObject();
        w.kv("time_sec", r.timeSec);
        w.kv("action", r.action);
        w.kv("tenant", r.tenant);
        w.kv("from_core", static_cast<std::uint64_t>(r.fromCore));
        w.kv("to_core", static_cast<std::uint64_t>(r.toCore));
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("cores_detail");
    w.beginArray();
    for (const CoreServingStats &c : report.coreStats) {
        w.beginObject();
        w.kv("index", static_cast<std::uint64_t>(c.index));
        w.key("tenants");
        w.beginArray();
        for (const std::string &name : c.tenants)
            w.value(name);
        w.endArray();
        w.kv("served", c.served);
        w.kv("busy_sec", c.busySec);
        w.kv("util", c.util);
        w.kv("speed_factor", c.speedFactor);
        w.kv("queue_depth_mean", c.queueDepthMean);
        w.kv("queue_depth_peak", c.queueDepthPeak);
        w.kv("in_flight_mean", c.inFlightMean);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeServingDocumentJson(std::ostream &os,
                         const ServeManifest &manifest,
                         const ServingReport &report,
                         const StatRegistry *registry)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("manifest");
    w.beginObject();
    w.kv("tool", manifest.tool);
    w.kv("policy", manifest.policy);
    w.kv("arrivals", manifest.arrivals);
    w.kv("cores", static_cast<std::uint64_t>(manifest.cores));
    w.kv("tenants", static_cast<std::uint64_t>(manifest.tenants));
    w.kv("duration_sec", manifest.durationSec);
    w.kv("seed", manifest.seed);
    w.endObject();
    w.key("serving");
    writeServingReportJson(w, report);
    w.key("registry");
    if (registry != nullptr && registry->size() > 0)
        registry->writeJson(w);
    else
        w.valueNull();
    w.endObject();
    os << '\n';
}

void
registerServingStats(StatRegistry &registry,
                     const ServingReport &report)
{
    registry.addCounter("serve.offered", "generated arrivals")
        .set(report.offered);
    registry.addCounter("serve.completed", "served requests")
        .set(report.completed);
    registry.addCounter("serve.shed", "queue-full drops")
        .set(report.shed);
    registry
        .addCounter("serve.rejected", "admission-gate refusals")
        .set(report.rejected);
    registry
        .addCounter("serve.in_flight_at_end",
                    "requests still queued after the drain")
        .set(report.inFlightAtEnd);
    registry
        .addCounter("serve.quarantine_events",
                    "quarantine-ladder transitions")
        .set(report.quarantineEvents.size());
    registry
        .addCounter("serve.churn_events", "applied churn transitions")
        .set(report.churnEvents.size());
    registry
        .addCounter("serve.slo_violations",
                    "completed past the latency target")
        .set(report.sloViolations);
    registry.addGauge("serve.goodput_rps", "SLO-met throughput")
        .set(report.goodputRps);
    registry
        .addGauge("serve.mean_core_util",
                  "mean utilization over used cores")
        .set(report.meanCoreUtil);
    registry
        .addGauge("serve.cores_used", "cores with >= 1 tenant")
        .set(static_cast<double>(report.coresUsed));
    registry
        .addCounter("serve.slo_alerts",
                    "tenants whose burn rate tripped the alert")
        .set(report.sloAlerts);
    for (const CoreServingStats &c : report.coreStats) {
        const std::string prefix =
            "serve.core" + std::to_string(c.index);
        registry.addGauge(prefix + ".util", "server busy fraction")
            .set(c.util);
        registry.addCounter(prefix + ".served", "completions")
            .set(c.served);
        registry
            .addGauge(prefix + ".tenants", "resident tenants")
            .set(static_cast<double>(c.tenants.size()));
        registry
            .addGauge(prefix + ".queue_depth_mean",
                      "time-weighted mean waiting requests")
            .set(c.queueDepthMean);
        registry
            .addGauge(prefix + ".queue_depth_peak",
                      "peak waiting requests")
            .set(c.queueDepthPeak);
        registry
            .addGauge(prefix + ".in_flight_mean",
                      "time-weighted mean in-service occupancy")
            .set(c.inFlightMean);
    }
    // De-duplicate sanitized tenant slugs by index: names are unique
    // but sanitization can merge them, and the registry panics on
    // path collisions.
    std::vector<std::string> slugs(report.tenants.size());
    for (std::size_t i = 0; i < report.tenants.size(); ++i) {
        std::string slug =
            sanitizeStatSegment(report.tenants[i].name);
        for (std::size_t j = 0; j < i; ++j) {
            if (slugs[j] == slug) {
                slug += "_" + std::to_string(i);
                break;
            }
        }
        slugs[i] = std::move(slug);
    }
    for (std::size_t i = 0; i < report.tenants.size(); ++i) {
        const TenantServingStats &t = report.tenants[i];
        const std::string base = "serve.tenant." + slugs[i];
        registry
            .addGauge(base + ".attrib.queue_us",
                      "total queueing delay")
            .set(t.attribQueueUs);
        registry
            .addGauge(base + ".attrib.service_us",
                      "total actual service time")
            .set(t.attribServiceUs);
        registry
            .addGauge(base + ".attrib.solo_us",
                      "total solo-equivalent service time")
            .set(t.attribSoloUs);
        registry
            .addGauge(base + ".attrib.inflation_us",
                      "service inflation vs solo calibration")
            .set(t.attribInflationUs);
        registry
            .addGauge(base + ".attrib.sojourn_us",
                      "total sojourn (queue + service)")
            .set(t.attribSojournUs);
        registry
            .addGauge(base + ".burn_short",
                      "short-window SLO burn rate")
            .set(t.burnShort);
        registry
            .addGauge(base + ".burn_long",
                      "long-window SLO burn rate")
            .set(t.burnLong);
    }
}

} // namespace v10
