#include "serve/serving_report.h"

#include <sstream>

#include "common/json.h"
#include "common/string_util.h"
#include "metrics/stat_registry.h"
#include "trace/attribution.h"

namespace v10 {

double
TenantServingStats::sloAttainment() const
{
    if (completed == 0 || sloTargetUs <= 0.0)
        return 1.0;
    return static_cast<double>(completed - sloViolations) /
           static_cast<double>(completed);
}

std::string
ServingReport::summary() const
{
    std::ostringstream os;
    os << policy << ": " << offered << " offered, " << completed
       << " completed, " << shed << " shed, " << sloViolations
       << " late over " << formatDouble(durationSec, 2) << "s on "
       << coresUsed << "/" << cores << " cores; goodput "
       << formatDouble(goodputRps, 1) << " req/s, mean core util "
       << formatPct(meanCoreUtil);
    return os.str();
}

void
writeServingReportJson(JsonWriter &w, const ServingReport &report)
{
    w.beginObject();
    w.kv("policy", report.policy);
    w.kv("duration_sec", report.durationSec);
    w.kv("cores", static_cast<std::uint64_t>(report.cores));
    w.kv("cores_used",
         static_cast<std::uint64_t>(report.coresUsed));
    w.kv("offered", report.offered);
    w.kv("completed", report.completed);
    w.kv("shed", report.shed);
    w.kv("slo_violations", report.sloViolations);
    w.kv("goodput_rps", report.goodputRps);
    w.kv("mean_core_util", report.meanCoreUtil);
    w.kv("slo_alerts", report.sloAlerts);

    w.key("tenants");
    w.beginArray();
    for (const TenantServingStats &t : report.tenants) {
        w.beginObject();
        w.kv("name", t.name);
        w.kv("model", t.model);
        w.kv("core", static_cast<std::uint64_t>(t.core));
        w.kv("offered", t.offered);
        w.kv("completed", t.completed);
        w.kv("shed", t.shed);
        w.kv("slo_violations", t.sloViolations);
        w.kv("offered_rps", t.offeredRps);
        w.kv("goodput_rps", t.goodputRps);
        w.kv("mean_us", t.meanUs);
        w.kv("p50_us", t.p50Us);
        w.kv("p99_us", t.p99Us);
        w.kv("p999_us", t.p999Us);
        w.kv("max_us", t.maxUs);
        w.kv("slo_target_us", t.sloTargetUs);
        w.kv("weight", t.weight);
        w.kv("slo_attainment", t.sloAttainment());
        w.key("attrib");
        w.beginObject();
        w.kv("queue_us", t.attribQueueUs);
        w.kv("service_us", t.attribServiceUs);
        w.kv("solo_us", t.attribSoloUs);
        w.kv("inflation_us", t.attribInflationUs);
        w.kv("sojourn_us", t.attribSojournUs);
        w.endObject();
        w.kv("burn_short", t.burnShort);
        w.kv("burn_long", t.burnLong);
        w.kv("slo_alert", t.sloAlert);
        w.endObject();
    }
    w.endArray();

    w.key("cores_detail");
    w.beginArray();
    for (const CoreServingStats &c : report.coreStats) {
        w.beginObject();
        w.kv("index", static_cast<std::uint64_t>(c.index));
        w.key("tenants");
        w.beginArray();
        for (const std::string &name : c.tenants)
            w.value(name);
        w.endArray();
        w.kv("served", c.served);
        w.kv("busy_sec", c.busySec);
        w.kv("util", c.util);
        w.kv("speed_factor", c.speedFactor);
        w.kv("queue_depth_mean", c.queueDepthMean);
        w.kv("queue_depth_peak", c.queueDepthPeak);
        w.kv("in_flight_mean", c.inFlightMean);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeServingDocumentJson(std::ostream &os,
                         const ServeManifest &manifest,
                         const ServingReport &report,
                         const StatRegistry *registry)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("manifest");
    w.beginObject();
    w.kv("tool", manifest.tool);
    w.kv("policy", manifest.policy);
    w.kv("arrivals", manifest.arrivals);
    w.kv("cores", static_cast<std::uint64_t>(manifest.cores));
    w.kv("tenants", static_cast<std::uint64_t>(manifest.tenants));
    w.kv("duration_sec", manifest.durationSec);
    w.kv("seed", manifest.seed);
    w.endObject();
    w.key("serving");
    writeServingReportJson(w, report);
    w.key("registry");
    if (registry != nullptr && registry->size() > 0)
        registry->writeJson(w);
    else
        w.valueNull();
    w.endObject();
    os << '\n';
}

void
registerServingStats(StatRegistry &registry,
                     const ServingReport &report)
{
    registry.addCounter("serve.offered", "generated arrivals")
        .set(report.offered);
    registry.addCounter("serve.completed", "served requests")
        .set(report.completed);
    registry.addCounter("serve.shed", "admission drops")
        .set(report.shed);
    registry
        .addCounter("serve.slo_violations",
                    "completed past the latency target")
        .set(report.sloViolations);
    registry.addGauge("serve.goodput_rps", "SLO-met throughput")
        .set(report.goodputRps);
    registry
        .addGauge("serve.mean_core_util",
                  "mean utilization over used cores")
        .set(report.meanCoreUtil);
    registry
        .addGauge("serve.cores_used", "cores with >= 1 tenant")
        .set(static_cast<double>(report.coresUsed));
    registry
        .addCounter("serve.slo_alerts",
                    "tenants whose burn rate tripped the alert")
        .set(report.sloAlerts);
    for (const CoreServingStats &c : report.coreStats) {
        const std::string prefix =
            "serve.core" + std::to_string(c.index);
        registry.addGauge(prefix + ".util", "server busy fraction")
            .set(c.util);
        registry.addCounter(prefix + ".served", "completions")
            .set(c.served);
        registry
            .addGauge(prefix + ".tenants", "resident tenants")
            .set(static_cast<double>(c.tenants.size()));
        registry
            .addGauge(prefix + ".queue_depth_mean",
                      "time-weighted mean waiting requests")
            .set(c.queueDepthMean);
        registry
            .addGauge(prefix + ".queue_depth_peak",
                      "peak waiting requests")
            .set(c.queueDepthPeak);
        registry
            .addGauge(prefix + ".in_flight_mean",
                      "time-weighted mean in-service occupancy")
            .set(c.inFlightMean);
    }
    // De-duplicate sanitized tenant slugs by index: names are unique
    // but sanitization can merge them, and the registry panics on
    // path collisions.
    std::vector<std::string> slugs(report.tenants.size());
    for (std::size_t i = 0; i < report.tenants.size(); ++i) {
        std::string slug =
            sanitizeStatSegment(report.tenants[i].name);
        for (std::size_t j = 0; j < i; ++j) {
            if (slugs[j] == slug) {
                slug += "_" + std::to_string(i);
                break;
            }
        }
        slugs[i] = std::move(slug);
    }
    for (std::size_t i = 0; i < report.tenants.size(); ++i) {
        const TenantServingStats &t = report.tenants[i];
        const std::string base = "serve.tenant." + slugs[i];
        registry
            .addGauge(base + ".attrib.queue_us",
                      "total queueing delay")
            .set(t.attribQueueUs);
        registry
            .addGauge(base + ".attrib.service_us",
                      "total actual service time")
            .set(t.attribServiceUs);
        registry
            .addGauge(base + ".attrib.solo_us",
                      "total solo-equivalent service time")
            .set(t.attribSoloUs);
        registry
            .addGauge(base + ".attrib.inflation_us",
                      "service inflation vs solo calibration")
            .set(t.attribInflationUs);
        registry
            .addGauge(base + ".attrib.sojourn_us",
                      "total sojourn (queue + service)")
            .set(t.attribSojournUs);
        registry
            .addGauge(base + ".burn_short",
                      "short-window SLO burn rate")
            .set(t.burnShort);
        registry
            .addGauge(base + ".burn_long",
                      "long-window SLO burn rate")
            .set(t.burnLong);
    }
}

} // namespace v10
