/**
 * @file
 * Serve-layer antagonist modeling, detection, and quarantine
 * (docs/RESILIENCE.md). An AntagonistPlan injects tenant misbehavior
 * into the request-level serving simulation — arrival floods
 * (bursts appended to the seeded arrival stream), HBM-hog service
 * inflation (drawn service times multiplied while active), and
 * preemption thrashing (per-service-start overhead inflicted on
 * co-runners with the thrasher queued) — mirroring the PR 3 fault
 * kinds at request granularity.
 *
 * Detection reads the AttributionCollector's victim-major queue-wait
 * matrix: a tenant's per-epoch perpetrator score is the queue-wait
 * it inflicted on co-runners normalized by the epoch length (i.e.
 * mean co-runner requests stalled behind it). A hysteresis pair of
 * thresholds turns scores into strikes (above hi) and clean epochs
 * (below lo), and the shared QuarantineLadder escalates strikes
 * through throttle -> isolate -> evict, stepping back down after
 * sustained clean behaviour.
 *
 * Spec grammar:
 *
 *   spec := profile ("," profile)*
 *   profile := kind ":tenant=" index [":rate=" p] [":mag=" m]
 *              [":after=" sec] [":until=" sec]
 *   kind := "flood" | "hbm-hog" | "thrash"
 */

#ifndef V10_SERVE_ANTAGONIST_H
#define V10_SERVE_ANTAGONIST_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sched/engine.h"

namespace v10 {

/** Antagonist behaviour kinds. */
enum class AntagonistKind {
    Flood,  ///< bursts of extra arrivals on the seeded stream
    HbmHog, ///< drawn service times inflated by `mag`
    Thrash, ///< overhead inflicted on co-runners' service starts
};

/** Spec-grammar name of an antagonist kind ("flood", ...). */
const char *antagonistKindName(AntagonistKind kind);

/** One antagonist behaviour profile. */
struct AntagonistProfile
{
    AntagonistKind kind = AntagonistKind::Flood;

    /** Misbehaving tenant index (required, >= 0). */
    int tenant = -1;

    /** Flood: burst probability per base arrival; unused otherwise. */
    double rate = 1.0;

    /** Kind-specific magnitude; 0 selects the kind's default
     * (flood burst size, hog inflation factor, thrash overhead as a
     * fraction of the victim's mean service time). */
    double magnitude = 0.0;

    /** Behaviour is dormant before this sim time. */
    double afterSec = 0.0;

    /** Behaviour stops at this sim time; 0 = never (drift is
     * modeled by a finite window: the tenant's observed behaviour
     * returns to its envelope after `until`). */
    double untilSec = 0.0;

    /** Magnitude with the kind default applied. */
    double effectiveMagnitude() const;

    /** True when the behaviour is live at @p timeSec. */
    bool activeAt(double timeSec) const;

    /** Round-trippable spec fragment. */
    std::string spec() const;
};

/** A parsed, validated set of antagonist profiles. */
class AntagonistPlan
{
  public:
    /** Parse the CLI spec grammar; errors name the bad token. */
    static Result<AntagonistPlan> parse(const std::string &spec,
                                        const std::string &source =
                                            "--antagonist");

    /**
     * Parse the JSON form: {"antagonists": [{"kind": "flood",
     * "tenant": 3, "rate": 0.2, "mag": 8, "after": 0.25,
     * "until": 0.75}]}.
     */
    static Result<AntagonistPlan>
    fromJson(const std::string &text, const std::string &source);

    /** fromJson() over a file's contents. */
    static Result<AntagonistPlan>
    fromJsonFile(const std::string &path);

    /** Append a profile (programmatic construction in tests). */
    void add(AntagonistProfile profile)
    {
        profiles_.push_back(profile);
    }

    bool empty() const { return profiles_.empty(); }
    const std::vector<AntagonistProfile> &profiles() const
    {
        return profiles_;
    }

    /** Tenant indices must exist; windows must be ordered. */
    Status check(std::size_t tenantCount, double durationSec) const;

    /** Round-trippable spec string of the whole plan. */
    std::string summary() const;

  private:
    std::vector<AntagonistProfile> profiles_;
};

/** Hysteresis thresholds for the per-epoch perpetrator score. */
struct DetectorPolicy
{
    /** Score above this is a strike (mean co-runner requests
     * stalled behind the tenant during the epoch). */
    double hiScore = 0.75;

    /** Score below this is a clean epoch; between the two the
     * tenant holds (hysteresis keeps borderline drift from
     * flapping). */
    double loScore = 0.25;

    Status check() const;
};

/** Quarantine escalation stages, in ladder order. */
enum class QuarantineStage {
    Healthy,
    Throttled, ///< admission rate capped by the ladder factor
    Isolated,  ///< migrated to a dedicated core (still throttled)
    Evicted,   ///< admits nothing; queue dropped (terminal)
};

/** Printable stage name ("healthy", ...). */
const char *quarantineStageName(QuarantineStage stage);

/**
 * The per-tenant strike/recovery state machine: hysteresis scoring
 * feeds strikes, the shared QuarantineLadder maps strike counts to
 * stages, and sustained clean epochs step one rung back down
 * (eviction is terminal). Purely deterministic — the ClusterManager
 * applies the returned transitions (throttle/migrate/evict/re-pair)
 * in its serial control step.
 */
class QuarantineController
{
  public:
    QuarantineController(std::size_t tenants, DetectorPolicy policy,
                         QuarantineLadder ladder);

    /** One stage change decided at an epoch boundary. */
    struct Transition
    {
        std::size_t tenant = 0;
        QuarantineStage from = QuarantineStage::Healthy;
        QuarantineStage to = QuarantineStage::Healthy;
        std::uint32_t strikes = 0;
        double score = 0.0; ///< the epoch score that decided it
    };

    /**
     * Feed one tenant's epoch score (inflicted queue-wait us /
     * epoch us). Returns true and fills @p out when the stage
     * changed.
     */
    bool observe(std::size_t tenant, double score, Transition *out);

    QuarantineStage stage(std::size_t tenant) const
    {
        return stage_[tenant];
    }
    std::uint32_t strikes(std::size_t tenant) const
    {
        return strikes_[tenant];
    }
    double peakScore(std::size_t tenant) const
    {
        return peak_[tenant];
    }

    const QuarantineLadder &ladder() const { return ladder_; }

  private:
    DetectorPolicy policy_;
    QuarantineLadder ladder_;
    std::vector<QuarantineStage> stage_;
    std::vector<std::uint32_t> strikes_;
    std::vector<std::uint32_t> clean_;
    std::vector<double> peak_;
};

} // namespace v10

#endif // V10_SERVE_ANTAGONIST_H
