#include "serve/arrival.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace v10 {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

Status
requireFinitePositive(double v, const char *field,
                      const std::string &what)
{
    if (!std::isfinite(v) || v <= 0.0)
        return parseError(what + ": " + field + " must be positive",
                          "", 0, field);
    return Status::ok();
}

} // namespace

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Diurnal: return "diurnal";
      case ArrivalKind::Bursty:  return "bursty";
    }
    panic("arrivalKindName: bad kind");
}

std::optional<ArrivalKind>
tryArrivalKindFromName(const std::string &name)
{
    if (name == "poisson")
        return ArrivalKind::Poisson;
    if (name == "diurnal")
        return ArrivalKind::Diurnal;
    if (name == "bursty")
        return ArrivalKind::Bursty;
    return std::nullopt;
}

Status
ArrivalSpec::check(const std::string &what) const
{
    if (!std::isfinite(rps) || rps < 0.0)
        return parseError(what +
                              ": mean rate must be finite and "
                              "non-negative",
                          "", 0, "rps");
    switch (kind) {
      case ArrivalKind::Poisson:
        break;
      case ArrivalKind::Diurnal:
        if (!std::isfinite(amplitude) || amplitude < 0.0 ||
            amplitude >= 1.0)
            return parseError(what +
                                  ": diurnal amplitude must lie in "
                                  "[0, 1)",
                              "", 0, "amplitude");
        if (Status s = requireFinitePositive(periodSec, "periodSec",
                                             what);
            !s)
            return s;
        break;
      case ArrivalKind::Bursty:
        if (Status s = requireFinitePositive(meanOnSec, "meanOnSec",
                                             what);
            !s)
            return s;
        if (Status s = requireFinitePositive(meanOffSec,
                                             "meanOffSec", what);
            !s)
            return s;
        break;
    }
    return Status::ok();
}

ArrivalProcess::ArrivalProcess(ArrivalSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed)
{
    spec_.check().orDie();
}

std::vector<double>
ArrivalProcess::generate(double durationSec)
{
    if (!std::isfinite(durationSec) || durationSec < 0.0)
        panic("ArrivalProcess::generate: bad duration ",
              durationSec);
    if (durationSec == 0.0 || spec_.rps == 0.0)
        return {};
    switch (spec_.kind) {
      case ArrivalKind::Poisson: return generatePoisson(durationSec);
      case ArrivalKind::Diurnal: return generateDiurnal(durationSec);
      case ArrivalKind::Bursty:  return generateBursty(durationSec);
    }
    panic("ArrivalProcess::generate: bad kind");
}

std::vector<double>
ArrivalProcess::generatePoisson(double durationSec)
{
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(
        spec_.rps * durationSec * 1.1 + 16.0));
    const double mean_gap = 1.0 / spec_.rps;
    double t = rng_.exponential(mean_gap);
    while (t < durationSec) {
        times.push_back(t);
        t += rng_.exponential(mean_gap);
    }
    return times;
}

std::vector<double>
ArrivalProcess::generateDiurnal(double durationSec)
{
    // Lewis-Shedler thinning against the envelope rate
    // lambda_max = rps * (1 + amplitude): candidate arrivals come
    // from a homogeneous Poisson process at lambda_max and survive
    // with probability lambda(t) / lambda_max.
    std::vector<double> times;
    const double lambda_max = spec_.rps * (1.0 + spec_.amplitude);
    times.reserve(static_cast<std::size_t>(
        spec_.rps * durationSec * 1.1 + 16.0));
    const double mean_gap = 1.0 / lambda_max;
    double t = rng_.exponential(mean_gap);
    while (t < durationSec) {
        const double lambda_t =
            spec_.rps *
            (1.0 + spec_.amplitude *
                       std::sin(kTwoPi * t / spec_.periodSec));
        if (rng_.bernoulli(lambda_t / lambda_max))
            times.push_back(t);
        t += rng_.exponential(mean_gap);
    }
    return times;
}

std::vector<double>
ArrivalProcess::generateBursty(double durationSec)
{
    // Two-state MMPP: exponential dwells in on/off states; the
    // on-state rate is rps / duty so the long-run mean stays rps.
    const double duty =
        spec_.meanOnSec / (spec_.meanOnSec + spec_.meanOffSec);
    const double on_rate = spec_.rps / duty;
    const double on_gap = 1.0 / on_rate;

    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(
        spec_.rps * durationSec * 1.1 + 16.0));
    // Start in the stationary state distribution so the stream has
    // no startup transient.
    bool on = rng_.bernoulli(duty);
    double t = 0.0;
    double state_end =
        rng_.exponential(on ? spec_.meanOnSec : spec_.meanOffSec);
    while (t < durationSec) {
        if (!on) {
            // Idle: jump to the end of the off dwell.
            t = state_end;
            on = true;
            state_end = t + rng_.exponential(spec_.meanOnSec);
            continue;
        }
        const double next = t + rng_.exponential(on_gap);
        if (next >= state_end) {
            // The burst ended before the next arrival fired.
            t = state_end;
            on = false;
            state_end = t + rng_.exponential(spec_.meanOffSec);
            continue;
        }
        t = next;
        if (t < durationSec)
            times.push_back(t);
    }
    return times;
}

std::vector<ArrivalEvent>
mergeArrivalStreams(const std::vector<std::vector<double>> &streams)
{
    std::size_t total = 0;
    for (const auto &stream : streams)
        total += stream.size();
    std::vector<ArrivalEvent> feed;
    feed.reserve(total);
    for (std::size_t tenant = 0; tenant < streams.size(); ++tenant) {
        const auto &stream = streams[tenant];
        for (std::size_t seq = 0; seq < stream.size(); ++seq)
            feed.push_back(ArrivalEvent{
                stream[seq], static_cast<std::uint32_t>(tenant),
                static_cast<std::uint64_t>(seq)});
    }
    std::sort(feed.begin(), feed.end(),
              [](const ArrivalEvent &a, const ArrivalEvent &b) {
                  if (a.timeSec != b.timeSec)
                      return a.timeSec < b.timeSec;
                  if (a.tenant != b.tenant)
                      return a.tenant < b.tenant;
                  return a.seq < b.seq;
              });
    return feed;
}

} // namespace v10
