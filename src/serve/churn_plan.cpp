#include "serve/churn_plan.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/string_util.h"
#include "sim/fault_plan.h"

namespace v10 {

namespace {

bool
actionFromName(const std::string &name, ChurnAction *out)
{
    if (name == "join") {
        *out = ChurnAction::Join;
        return true;
    }
    if (name == "leave") {
        *out = ChurnAction::Leave;
        return true;
    }
    if (name == "migrate") {
        *out = ChurnAction::Migrate;
        return true;
    }
    return false;
}

Status
checkEvent(const ChurnEvent &event, const std::string &source,
           std::size_t index)
{
    const std::string where =
        std::string(churnActionName(event.action)) + " (event " +
        std::to_string(index + 1) + ")";
    if (event.tenant.empty())
        return parseError("churn event needs a tenant name", source,
                          0, where);
    if (!std::isfinite(event.atSec) || event.atSec < 0.0)
        return parseError("churn time must be finite and >= 0",
                          source, 0, where);
    if (event.core < -1)
        return parseError("churn core must be >= 0 (or -1 = pick)",
                          source, 0, where);
    if (event.core >= 0 && event.action != ChurnAction::Migrate)
        return parseError("churn core= only applies to migrate",
                          source, 0, where);
    return Status::ok();
}

} // namespace

const char *
churnActionName(ChurnAction action)
{
    switch (action) {
      case ChurnAction::Join:    return "join";
      case ChurnAction::Leave:   return "leave";
      case ChurnAction::Migrate: return "migrate";
    }
    return "unknown";
}

std::string
ChurnEvent::spec() const
{
    std::ostringstream os;
    os << churnActionName(action) << ":tenant=" << tenant
       << ":at=" << atSec;
    if (core >= 0)
        os << ":core=" << core;
    return os.str();
}

Result<ChurnPlan>
ChurnPlan::parse(const std::string &spec, const std::string &source)
{
    auto sites_or = parseSpecSites(spec, source);
    if (!sites_or.ok())
        return sites_or.error();
    const std::vector<SpecSite> sites = sites_or.take();

    ChurnPlan plan;
    for (std::size_t i = 0; i < sites.size(); ++i) {
        const SpecSite &site = sites[i];
        ChurnEvent event;
        if (!actionFromName(site.kind, &event.action))
            return parseError("unknown churn action", source, 0,
                              site.kind);
        bool haveAt = false;
        for (const auto &[key, val] : site.fields) {
            if (key == "tenant") {
                event.tenant = val;
            } else if (key == "at") {
                const auto v = parseDouble(val);
                if (!v || !std::isfinite(*v) || *v < 0.0)
                    return parseError("bad churn time", source, 0,
                                      val);
                event.atSec = *v;
                haveAt = true;
            } else if (key == "core") {
                const auto v = parseInt64(val);
                if (!v || *v < 0)
                    return parseError("bad churn core index", source,
                                      0, val);
                event.core = *v;
            } else {
                return parseError("unknown churn-event key", source,
                                  0, key);
            }
        }
        if (!haveAt)
            return parseError("churn event needs at=<seconds>",
                              source, 0, site.kind);
        const Status ok = checkEvent(event, source, i);
        if (!ok)
            return ok.error();
        plan.add(std::move(event));
    }
    return plan;
}

Result<ChurnPlan>
ChurnPlan::fromJson(const std::string &text, const std::string &source)
{
    JsonValue doc;
    std::string error;
    if (!JsonValue::parse(text, &doc, &error))
        return parseError("malformed churn-plan JSON: " + error,
                          source);
    if (!doc.isObject())
        return parseError("churn plan must be a JSON object", source);
    const JsonValue *events = doc.find("churn");
    if (events == nullptr || !events->isArray())
        return parseError("missing \"churn\" array", source, 0,
                          "churn");

    ChurnPlan plan;
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &entry = events->array[i];
        const std::string where = "churn[" + std::to_string(i) + "]";
        if (!entry.isObject())
            return parseError("churn entry must be an object",
                              source, 0, where);
        const JsonValue *action = entry.find("action");
        if (action == nullptr || !action->isString())
            return parseError("churn entry needs a string \"action\"",
                              source, 0, where);
        ChurnEvent event;
        if (!actionFromName(action->str, &event.action))
            return parseError("unknown churn action", source, 0,
                              action->str);
        const JsonValue *tenant = entry.find("tenant");
        if (tenant == nullptr || !tenant->isString())
            return parseError("churn entry needs a string \"tenant\"",
                              source, 0, where);
        event.tenant = tenant->str;
        const JsonValue *at = entry.find("at");
        if (at == nullptr || !at->isNumber())
            return parseError("churn entry needs a numeric \"at\"",
                              source, 0, where);
        event.atSec = at->number;
        if (const JsonValue *core = entry.find("core")) {
            if (!core->isNumber() || core->number < 0)
                return parseError("\"core\" must be a non-negative "
                                  "number",
                                  source, 0, where);
            event.core = static_cast<std::int64_t>(core->number);
        }
        const Status ok = checkEvent(event, source, i);
        if (!ok)
            return ok.error();
        plan.add(std::move(event));
    }
    return plan;
}

Result<ChurnPlan>
ChurnPlan::fromJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return parseError("cannot open churn-plan file", path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return fromJson(ss.str(), path);
}

void
ChurnPlan::add(ChurnEvent event)
{
    // Keep (atSec, insertion) order: later inserts at the same time
    // land after earlier ones.
    auto it = std::upper_bound(
        events_.begin(), events_.end(), event,
        [](const ChurnEvent &a, const ChurnEvent &b) {
            return a.atSec < b.atSec;
        });
    events_.insert(it, std::move(event));
}

Status
ChurnPlan::check(double durationSec) const
{
    for (const ChurnEvent &event : events_) {
        if (event.atSec <= 0.0 || event.atSec >= durationSec)
            return parseError("churn time must lie strictly inside "
                              "the run (0, duration)",
                              "", 0, event.spec());
    }
    return Status::ok();
}

std::string
ChurnPlan::summary() const
{
    std::string out;
    for (const ChurnEvent &event : events_) {
        if (!out.empty())
            out += ',';
        out += event.spec();
    }
    return out;
}

} // namespace v10
