/**
 * @file
 * Online admission control for the serving layer
 * (docs/RESILIENCE.md): a per-tenant token bucket sits in front of
 * the SCFQ queues and rejects arrivals that exceed the tenant's
 * current admitted rate, so overload sheds at admission instead of
 * inflating co-runners. The rate adapts once per SLO-monitor bucket
 * (the serve control epoch) from the multi-window burn-rate signal:
 * multiplicative decrease while the dual-window alert fires,
 * additive recovery toward the base rate when the burn clears —
 * AIMD, so a misbehaving tenant backs off fast and recovers slowly.
 *
 * Determinism: buckets refill from sim time only (no RNG draws),
 * each tenant lives on exactly one core per epoch so the owning core
 * simulation is the only writer, and all rate adaptations happen in
 * the serial control step at epoch boundaries.
 */

#ifndef V10_SERVE_ADMISSION_H
#define V10_SERVE_ADMISSION_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace v10 {

/** Admission-gate knobs; disabled by default. */
struct AdmissionPolicy
{
    /** Master switch; false keeps the serve path byte-identical to
     * a gate-less run. */
    bool enabled = false;

    /** Initial admitted rate as a multiple of the tenant's offered
     * rate (> 1 leaves burst headroom above the mean). */
    double headroom = 1.25;

    /** Multiplicative rate cut applied while the burn alert fires. */
    double decrease = 0.5;

    /** Additive recovery per clean epoch, as a fraction of the
     * tenant's base admitted rate. */
    double increase = 0.1;

    /** Rate floor as a fraction of the base admitted rate (keeps a
     * throttled tenant probing instead of starving forever). */
    double minRateFrac = 0.05;

    /** Token-bucket depth in seconds of the current rate. */
    double burstSec = 0.25;

    Status check() const;
};

/**
 * Deterministic token bucket: refills continuously from sim time at
 * the current rate, capped at the burst capacity.
 */
class TokenBucket
{
  public:
    TokenBucket() = default;
    TokenBucket(double ratePerSec, double burstSec, double nowSec);

    /** Change the refill rate; capacity follows, tokens clamp. */
    void setRate(double ratePerSec);

    /** Refill to @p nowSec, then admit iff a whole token remains. */
    bool tryAdmit(double nowSec);

    double rate() const { return rate_; }
    double tokens() const { return tokens_; }

  private:
    void refill(double nowSec);

    double rate_ = 0.0;
    double burstSec_ = 0.25;
    double capacity_ = 1.0;
    double tokens_ = 1.0;
    double lastSec_ = 0.0;
};

/**
 * The per-tenant admission gate: owns every tenant's bucket and the
 * AIMD adaptation state. The ClusterManager adapts rates in the
 * serial control step; core simulations only call tryAdmit() on
 * their residents' buckets.
 */
class AdmissionGate
{
  public:
    AdmissionGate(std::size_t tenants, AdmissionPolicy policy);

    bool enabled() const { return policy_.enabled; }

    /** Set tenant @p t's base admitted rate from its offered rate
     * (call once before the run; applies the headroom factor). */
    void configure(std::size_t t, double offeredRps);

    /** The tenant's bucket; nullptr when the gate is disabled and
     * no quarantine cap or eviction applies to the tenant. */
    TokenBucket *bucket(std::size_t t);

    /** Outcome of one epoch-boundary adaptation. */
    enum class Change { Held, Decreased, Increased };

    /** AIMD step from the burn-rate alert at an epoch boundary. */
    Change adapt(std::size_t t, bool alert);

    /** Cap the tenant's effective rate (quarantine throttle). */
    void throttle(std::size_t t, double factor);

    /** Remove the quarantine cap. */
    void release(std::size_t t);

    /** Evict: the tenant admits nothing from now on. */
    void block(std::size_t t);

    double baseRps(std::size_t t) const { return base_[t]; }

    /** Current effective admitted rate (after any quarantine cap). */
    double rateRps(std::size_t t) const;

    std::uint64_t decreases(std::size_t t) const
    {
        return decreases_[t];
    }
    std::uint64_t increases(std::size_t t) const
    {
        return increases_[t];
    }

  private:
    void push(std::size_t t); ///< propagate rate into the bucket

    AdmissionPolicy policy_;
    std::vector<TokenBucket> buckets_;
    std::vector<double> base_;     ///< base admitted rate (rps)
    std::vector<double> adaptive_; ///< AIMD value in [floor, base]
    std::vector<double> cap_;      ///< quarantine factor (1 = none)
    std::vector<bool> blocked_;
    std::vector<std::uint64_t> decreases_;
    std::vector<std::uint64_t> increases_;
};

} // namespace v10

#endif // V10_SERVE_ADMISSION_H
