/**
 * @file
 * The result record of one open-loop serving run: per-tenant tail
 * latency (p50/p99/p999), goodput (SLO-met throughput), shed and
 * violation counts, and per-core occupancy/utilization — the
 * fleet-scale analogue of RunStats. Rendered as a text summary and
 * as the `v10sim serve --stats-json` JSON document; every number is
 * a pure function of (scenario, seed), so the JSON is byte-identical
 * across repeated runs and across --jobs counts (wall-clock never
 * enters the document).
 */

#ifndef V10_SERVE_SERVING_REPORT_H
#define V10_SERVE_SERVING_REPORT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"

namespace v10 {

class JsonWriter;
class StatRegistry;

/** Per-tenant serving outcomes. */
struct TenantServingStats
{
    std::string name;         ///< tenant id ("BERT#17")
    std::string model;        ///< workload model abbrev
    std::size_t core = 0;     ///< core the tenant was placed on

    std::uint64_t offered = 0;    ///< arrivals while active
    std::uint64_t completed = 0;  ///< served to completion
    std::uint64_t shed = 0;       ///< dropped at a full queue
    std::uint64_t rejected = 0;   ///< refused by the admission gate
    std::uint64_t inFlightAtEnd = 0; ///< still queued after drain
    std::uint64_t sloViolations = 0; ///< completed but late

    double offeredRps = 0.0;  ///< offered / duration
    double goodputRps = 0.0;  ///< SLO-met completions / duration

    double meanUs = 0.0;   ///< mean sojourn (queue + service)
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double maxUs = 0.0;

    double sloTargetUs = 0.0; ///< 0 = no latency target
    double weight = 1.0;      ///< fair-share weight

    /** Interference attribution: the tenant's total sojourn time
     * decomposed into queueing delay, solo-equivalent service, and
     * service inflation vs the solo-run calibration (negative =
     * collocation speedup). queue + solo + inflation == sojourn. */
    double attribQueueUs = 0.0;     ///< sum of queueing delays
    double attribServiceUs = 0.0;   ///< sum of actual service times
    double attribSoloUs = 0.0;      ///< sum of solo-equivalents
    double attribInflationUs = 0.0; ///< service - solo
    double attribSojournUs = 0.0;   ///< queue + service

    /** Online SLO monitoring: multi-window burn rates (windowed
     * violation rate / error budget) and the alert decision. */
    double burnShort = 0.0;
    double burnLong = 0.0;
    bool sloAlert = false;

    /** Admission-gate state at end of run (zeros when disabled). */
    double admitRpsBase = 0.0;  ///< initial admitted rate
    double admitRpsFinal = 0.0; ///< adapted rate at end of run
    std::uint64_t admitDecreases = 0; ///< AIMD rate cuts
    std::uint64_t admitIncreases = 0; ///< AIMD recoveries

    /** Quarantine state at end of run. */
    std::string quarantineStage = "healthy";
    std::uint32_t strikes = 0;
    double peakAntagonistScore = 0.0;

    /** Churn outcome: activity window and migration count.
     * leaveSec == 0 means the tenant stayed until the end. */
    double joinSec = 0.0;
    double leaveSec = 0.0;
    std::uint64_t migrations = 0;

    /** Fraction of completed requests inside the SLO (1 if none
     * completed or no target). */
    double sloAttainment() const;

    /** Per-tenant conservation: offered == completed + shed +
     * rejected + in-flight-at-end. */
    bool conserved() const
    {
        return offered ==
               completed + shed + rejected + inFlightAtEnd;
    }
};

/** One applied churn transition (report log). */
struct ChurnRecord
{
    double timeSec = 0.0; ///< epoch boundary the event snapped to
    std::string action;   ///< churnActionName()
    std::string tenant;
    std::size_t fromCore = 0;
    std::size_t toCore = 0; ///< == fromCore except for migrate
};

/** One quarantine-ladder transition (report log). */
struct QuarantineRecord
{
    double timeSec = 0.0;
    std::size_t epoch = 0;
    std::string tenant;
    std::string from; ///< quarantineStageName()
    std::string to;
    std::uint32_t strikes = 0;
    double score = 0.0; ///< perpetrator score that decided it
};

/** One admission-gate rate change (report log). */
struct AdmissionRecord
{
    double timeSec = 0.0;
    std::size_t epoch = 0;
    std::string tenant;
    std::string action; ///< "decrease" | "recover"
    double rateRps = 0.0;
};

/** Per-core serving outcomes. */
struct CoreServingStats
{
    std::size_t index = 0;
    std::vector<std::string> tenants; ///< resident tenant names
    std::uint64_t served = 0;         ///< completions on this core
    double busySec = 0.0;             ///< server busy time
    double util = 0.0;                ///< busy / max(duration, drain)
    double speedFactor = 1.0;         ///< collocation service speedup

    /** Live-occupancy gauges (time-weighted over the run). */
    double queueDepthMean = 0.0; ///< mean waiting requests
    double queueDepthPeak = 0.0; ///< peak waiting requests
    double inFlightMean = 0.0;   ///< mean in-service occupancy
};

/** Whole-run serving outcomes. */
struct ServingReport
{
    std::string policy;       ///< placement policy name
    double durationSec = 0.0; ///< arrival horizon
    std::size_t cores = 0;    ///< fleet size
    std::size_t coresUsed = 0; ///< cores with >= 1 tenant

    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;      ///< admission-gate refusals
    std::uint64_t inFlightAtEnd = 0; ///< queued after the drain
    std::uint64_t sloViolations = 0;

    double goodputRps = 0.0;     ///< fleet SLO-met throughput
    double meanCoreUtil = 0.0;   ///< mean util over used cores
    std::uint64_t sloAlerts = 0; ///< tenants with a burn-rate alert

    /** Resilience-loop context: 1 control epoch when every feature
     * is off (the classic single-pass core simulation). */
    std::size_t controlEpochs = 1;
    bool admissionEnabled = false;

    std::vector<TenantServingStats> tenants;
    std::vector<CoreServingStats> coreStats;

    /** Applied resilience events, in deterministic sim-time order. */
    std::vector<ChurnRecord> churnEvents;
    std::vector<QuarantineRecord> quarantineEvents;
    std::vector<AdmissionRecord> admissionEvents;

    /** One-line fleet summary for logs. */
    std::string summary() const;

    /** Offered requests that were admitted past the gate and the
     * queue bound (offered - rejected - shed). */
    std::uint64_t admitted() const
    {
        return offered - shed - rejected;
    }

    /**
     * Conservation self-check: every tenant (and the fleet sums)
     * must satisfy offered == completed + shed + rejected +
     * in_flight_at_end, so new shed/reject paths cannot silently
     * leak requests. Returns the first offending tenant.
     */
    Status checkConservation() const;
};

/** Context of the run for the JSON manifest. */
struct ServeManifest
{
    std::string tool = "v10sim serve";
    std::string policy;
    std::string arrivals;      ///< arrival mix label
    std::size_t cores = 0;
    std::size_t tenants = 0;
    double durationSec = 0.0;
    std::uint64_t seed = 0;
};

/**
 * Emit the report body as one JSON object (fleet aggregates plus
 * "tenants" and "cores" arrays) onto an open writer.
 */
void writeServingReportJson(JsonWriter &w,
                            const ServingReport &report);

/**
 * Write the full serving document: top-level keys "manifest",
 * "serving", and "registry" (null when @p registry is null).
 * Deliberately excludes wall-clock so the document is byte-stable.
 */
void writeServingDocumentJson(std::ostream &os,
                              const ServeManifest &manifest,
                              const ServingReport &report,
                              const StatRegistry *registry);

/**
 * Register the report's fleet aggregates and per-core gauges under
 * "serve.*" in @p registry (idempotent per fresh registry; panics
 * on path collisions like all StatRegistry misuse).
 */
void registerServingStats(StatRegistry &registry,
                          const ServingReport &report);

} // namespace v10

#endif // V10_SERVE_SERVING_REPORT_H
