/**
 * @file
 * The result record of one open-loop serving run: per-tenant tail
 * latency (p50/p99/p999), goodput (SLO-met throughput), shed and
 * violation counts, and per-core occupancy/utilization — the
 * fleet-scale analogue of RunStats. Rendered as a text summary and
 * as the `v10sim serve --stats-json` JSON document; every number is
 * a pure function of (scenario, seed), so the JSON is byte-identical
 * across repeated runs and across --jobs counts (wall-clock never
 * enters the document).
 */

#ifndef V10_SERVE_SERVING_REPORT_H
#define V10_SERVE_SERVING_REPORT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace v10 {

class JsonWriter;
class StatRegistry;

/** Per-tenant serving outcomes. */
struct TenantServingStats
{
    std::string name;         ///< tenant id ("BERT#17")
    std::string model;        ///< workload model abbrev
    std::size_t core = 0;     ///< core the tenant was placed on

    std::uint64_t offered = 0;    ///< generated arrivals
    std::uint64_t completed = 0;  ///< served to completion
    std::uint64_t shed = 0;       ///< dropped at admission
    std::uint64_t sloViolations = 0; ///< completed but late

    double offeredRps = 0.0;  ///< offered / duration
    double goodputRps = 0.0;  ///< SLO-met completions / duration

    double meanUs = 0.0;   ///< mean sojourn (queue + service)
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double maxUs = 0.0;

    double sloTargetUs = 0.0; ///< 0 = no latency target
    double weight = 1.0;      ///< fair-share weight

    /** Interference attribution: the tenant's total sojourn time
     * decomposed into queueing delay, solo-equivalent service, and
     * service inflation vs the solo-run calibration (negative =
     * collocation speedup). queue + solo + inflation == sojourn. */
    double attribQueueUs = 0.0;     ///< sum of queueing delays
    double attribServiceUs = 0.0;   ///< sum of actual service times
    double attribSoloUs = 0.0;      ///< sum of solo-equivalents
    double attribInflationUs = 0.0; ///< service - solo
    double attribSojournUs = 0.0;   ///< queue + service

    /** Online SLO monitoring: multi-window burn rates (windowed
     * violation rate / error budget) and the alert decision. */
    double burnShort = 0.0;
    double burnLong = 0.0;
    bool sloAlert = false;

    /** Fraction of completed requests inside the SLO (1 if none
     * completed or no target). */
    double sloAttainment() const;
};

/** Per-core serving outcomes. */
struct CoreServingStats
{
    std::size_t index = 0;
    std::vector<std::string> tenants; ///< resident tenant names
    std::uint64_t served = 0;         ///< completions on this core
    double busySec = 0.0;             ///< server busy time
    double util = 0.0;                ///< busy / max(duration, drain)
    double speedFactor = 1.0;         ///< collocation service speedup

    /** Live-occupancy gauges (time-weighted over the run). */
    double queueDepthMean = 0.0; ///< mean waiting requests
    double queueDepthPeak = 0.0; ///< peak waiting requests
    double inFlightMean = 0.0;   ///< mean in-service occupancy
};

/** Whole-run serving outcomes. */
struct ServingReport
{
    std::string policy;       ///< placement policy name
    double durationSec = 0.0; ///< arrival horizon
    std::size_t cores = 0;    ///< fleet size
    std::size_t coresUsed = 0; ///< cores with >= 1 tenant

    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t sloViolations = 0;

    double goodputRps = 0.0;     ///< fleet SLO-met throughput
    double meanCoreUtil = 0.0;   ///< mean util over used cores
    std::uint64_t sloAlerts = 0; ///< tenants with a burn-rate alert

    std::vector<TenantServingStats> tenants;
    std::vector<CoreServingStats> coreStats;

    /** One-line fleet summary for logs. */
    std::string summary() const;

    /** Offered requests that were admitted (offered - shed). */
    std::uint64_t admitted() const { return offered - shed; }
};

/** Context of the run for the JSON manifest. */
struct ServeManifest
{
    std::string tool = "v10sim serve";
    std::string policy;
    std::string arrivals;      ///< arrival mix label
    std::size_t cores = 0;
    std::size_t tenants = 0;
    double durationSec = 0.0;
    std::uint64_t seed = 0;
};

/**
 * Emit the report body as one JSON object (fleet aggregates plus
 * "tenants" and "cores" arrays) onto an open writer.
 */
void writeServingReportJson(JsonWriter &w,
                            const ServingReport &report);

/**
 * Write the full serving document: top-level keys "manifest",
 * "serving", and "registry" (null when @p registry is null).
 * Deliberately excludes wall-clock so the document is byte-stable.
 */
void writeServingDocumentJson(std::ostream &os,
                              const ServeManifest &manifest,
                              const ServingReport &report,
                              const StatRegistry *registry);

/**
 * Register the report's fleet aggregates and per-core gauges under
 * "serve.*" in @p registry (idempotent per fresh registry; panics
 * on path collisions like all StatRegistry misuse).
 */
void registerServingStats(StatRegistry &registry,
                          const ServingReport &report);

} // namespace v10

#endif // V10_SERVE_SERVING_REPORT_H
