/**
 * @file
 * Fleet-scale open-loop serving on top of the V10 collocation
 * pipeline (ROADMAP "Fleet-scale online serving"; the Vitis-AI
 * "Butler" multi-user resource manager is the architectural
 * exemplar): hundreds of tenants emit seeded arrival streams, a
 * cluster manager admits/queues/places their requests onto many
 * simulated NPU cores, and a ServingReport captures per-tenant tail
 * latency, goodput, and shedding.
 *
 * Model granularity: serving is simulated at *request* level, not
 * cycle level. Each core is a single server with a weighted-fair
 * queue; a tenant's mean service time is calibrated once from the
 * cycle-accurate model (ExperimentRunner::singleTenantRps) or set
 * explicitly, and collocation is captured as a per-tenant service
 * speed factor taken from the trained CollocationAdvisor (a core
 * pairing with predicted gain g serves its residents' requests g
 * times faster, i.e. the §3.4 STP gain applied to capacity). That
 * keeps a 100-tenant / 100k-request scenario tractable while the
 * queueing statistics stay analytically checkable (M/M/1 at one
 * tenant per core with exponential service).
 *
 * Determinism: placement runs before any simulation and per-core
 * simulations are independent (tenant arrival streams and per-core
 * service draws use Rng::deriveStream), so fanning cores across
 * ParallelExecutor workers is bit-identical to the serial loop.
 */

#ifndef V10_SERVE_CLUSTER_MANAGER_H
#define V10_SERVE_CLUSTER_MANAGER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "npu/npu_config.h"
#include "serve/admission.h"
#include "serve/antagonist.h"
#include "serve/arrival.h"
#include "serve/churn_plan.h"
#include "serve/serving_report.h"
#include "sim/fault_plan.h"
#include "trace/slo_monitor.h"
#include "v10/experiment.h"
#include "v10/npu_cluster.h"

namespace v10 {

class StatRegistry;
class RequestTracer;
class IntervalSampler;
class AttributionCollector;

/** Per-tenant service-level objective. */
struct SloSpec
{
    /** Latency target in microseconds for the full sojourn (queue +
     * service); 0 disables the target (every completion counts as
     * goodput). */
    double latencyTargetUs = 0.0;
    /** Fair-share weight of the tenant on its core (> 0). */
    double weight = 1.0;
};

/**
 * One element of an SLO tier list ("25x:2" = target 25x the
 * tenant's dedicated service time at weight 2; "5000:1" = absolute
 * 5000 us at weight 1). Tiers are assigned round-robin when a
 * scenario generates many tenants.
 */
struct SloTier
{
    bool relative = true;  ///< target is a multiple of service time
    double value = 25.0;   ///< multiple (relative) or us (absolute)
    double weight = 1.0;
};

/**
 * Parse the SLO spec grammar (docs/SERVING.md): a comma-separated
 * list of `target[:weight]`, target = `<number>x` (relative) or
 * `<number>` (absolute us).
 */
Result<std::vector<SloTier>> parseSloSpec(const std::string &spec);

/** One serving tenant. */
struct ServeTenant
{
    std::string name;   ///< unique id ("BERT#17")
    std::string model;  ///< model zoo name or abbreviation
    int batch = 0;      ///< 0 = the model's reference batch
    ArrivalSpec arrival;
    SloSpec slo;
    /** Mean service time in us; 0 = calibrate from the
     * cycle-accurate single-tenant run of the model. Explicit
     * values make pure queueing studies (and the analytic tests)
     * independent of the NPU model. */
    double serviceUsOverride = 0.0;
};

/** Tenant-to-core placement policies. */
enum class PlacementPolicy {
    /** Cores in rotation, ignoring load. */
    RoundRobin,
    /** Greedy least-accumulated-offered-load (erlangs). */
    LeastLoaded,
    /** Pair tenants by the trained CollocationAdvisor's predicted
     * gain (above the threshold), then spill pairs and singles to
     * the least-loaded core; paired tenants serve faster by the
     * predicted gain. */
    Advisor,
};

/** Printable name of a placement policy. */
const char *placementPolicyName(PlacementPolicy policy);

/** Parse "round-robin" / "least-loaded" / "advisor". */
std::optional<PlacementPolicy>
tryPlacementPolicyFromName(const std::string &name);

/** Per-request service-time distribution around the tenant mean. */
enum class ServiceDist {
    Deterministic, ///< exactly the mean (M/D/1 behaviour)
    Exponential,   ///< memoryless (the M/M/1 anchor)
    Lognormal,     ///< mean-preserving with configurable cv
};

/** Printable name of a service distribution. */
const char *serviceDistName(ServiceDist dist);

/** Parse "det" / "exp" / "lognormal". */
std::optional<ServiceDist>
tryServiceDistFromName(const std::string &name);

/** Serving-fleet configuration. */
struct ServeConfig
{
    NpuConfig core{};          ///< per-core hardware (calibration)
    std::size_t numCores = 8;
    double durationSec = 1.0;  ///< arrival horizon
    std::uint64_t seed = 1;
    /** Bound on each tenant's waiting queue; arrivals beyond it are
     * shed (load-shedding under overload). */
    std::size_t queueCapacity = 64;
    PlacementPolicy policy = PlacementPolicy::LeastLoaded;
    ServiceDist serviceDist = ServiceDist::Exponential;
    double serviceCv = 1.0;    ///< Lognormal coefficient of variation
    double collocationThreshold = 1.3; ///< Advisor pairing cutoff
    std::uint64_t advisorProfileRequests = 4;
    /** Threads for the per-core serving fan-out (and advisor
     * training); results are bit-identical for any value. */
    std::size_t jobs = 1;
    /** Per-core queue-depth / in-flight samples taken at fixed
     * sim-time ticks inside the core simulation (0 = off). The
     * series feed an attached IntervalSampler's columns and the
     * Chrome-trace counter tracks. */
    std::size_t queueSampleTicks = 0;
    /** Burn-rate policy for the online SLO monitor. */
    SloPolicy sloPolicy{};

    /**
     * Serve-layer resilience loop (docs/RESILIENCE.md). With every
     * feature at its default the run is the classic single-pass
     * simulation, byte-identical to earlier releases; enabling any
     * of them splits the run into SloMonitor::kBuckets control
     * epochs with a deterministic serial control step per boundary.
     */
    AdmissionPolicy admission{};   ///< token-bucket gate + AIMD
    ChurnPlan churn{};             ///< join/leave/migrate schedule
    AntagonistPlan antagonists{};  ///< injected misbehaviour
    DetectorPolicy detector{};     ///< hysteresis score thresholds
    QuarantineLadder ladder{};     ///< strike escalation ladder
    /** Serve-granularity fault injection: `flood` sites become
     * arrival bursts (cycle fields converted to sim seconds via the
     * core clock); cycle-level kinds have no serve-layer analogue
     * and are ignored. Not owned; nullptr = none. */
    const FaultPlan *faults = nullptr;

    /** True when any resilience feature needs the epoch loop. */
    bool
    resilienceActive() const
    {
        return admission.enabled || !churn.empty() ||
               !antagonists.empty() ||
               (faults != nullptr && !faults->empty());
    }
};

/** Placement decision (exposed for tests). */
struct ServePlacement
{
    /** coreTenants[c] = tenant indices resident on core c. */
    std::vector<std::vector<std::size_t>> coreTenants;
    /** Per-tenant service speed factor (>= 1; advisor pair gain). */
    std::vector<double> tenantSpeed;
    /** Per-tenant core index. */
    std::vector<std::size_t> tenantCore;
};

/**
 * The open-loop serving fleet manager.
 */
class ClusterManager
{
  public:
    explicit ClusterManager(ServeConfig config = ServeConfig{});

    /** Validate and admit a tenant into the serving pool. */
    Status addTenant(ServeTenant tenant);

    /** Number of admitted tenants. */
    std::size_t tenantCount() const { return tenants_.size(); }

    /** The admitted tenants, in admission order. */
    const std::vector<ServeTenant> &tenants() const
    {
        return tenants_;
    }

    /** The configuration. */
    const ServeConfig &config() const { return config_; }

    /**
     * Calibrated mean service time (us) of tenant @p index on a
     * dedicated core: the override when set, else the
     * cycle-accurate single-tenant rate.
     */
    double serviceUs(std::size_t index);

    /**
     * Deterministic tenant-to-core placement under the configured
     * policy. Structured errors: empty pool, zero cores/duration,
     * advisor training failures.
     */
    Result<ServePlacement> place();

    /**
     * Place, simulate every core (fanning across
     * ParallelExecutor when config.jobs > 1), and aggregate the
     * fleet report. Bit-identical for any jobs value.
     */
    Result<ServingReport> run();

    /** Optional registry: run() registers "serve.*" aggregates. */
    void setStats(StatRegistry *stats) { stats_ = stats; }

    /**
     * Optional request tracer: run() records head-sampled request
     * spans (merged across cores in a deterministic total order).
     * Recording is passive — scheduling stays bit-identical with a
     * tracer attached.
     */
    void setRequestTracer(RequestTracer *tracer) { tracer_ = tracer; }

    /**
     * Optional sampler: run() installs per-core `queue_depth` /
     * `in_flight` manual columns and appends one row per sample
     * tick (requires config.queueSampleTicks > 0 and a sampler that
     * was never start()ed).
     */
    void setSampler(IntervalSampler *sampler) { sampler_ = sampler; }

    /**
     * Optional external attribution collector: run() registers
     * every tenant and fills the queue-wait matrix the antagonist
     * detector reads (an internal collector is used when unset).
     * Must outlive any registry the caller registers it with.
     */
    void setAttribution(AttributionCollector *collector)
    {
        attribution_ = collector;
    }

  private:
    Status checkConfig() const;
    Result<ServePlacement> placeAdvisor();

    /** Re-pair target core for a recovering tenant (advisor gain
     * when trained, else fewest residents); @p residents lists the
     * current tenants per core. */
    std::size_t
    repairCore(std::size_t tenant, std::size_t current,
               const std::vector<std::vector<std::size_t>> &residents);

    ServeConfig config_;
    ExperimentRunner runner_;
    std::vector<ServeTenant> tenants_;
    std::vector<double> service_us_cache_; ///< 0 = not yet resolved
    /** Advisor fleet (lazy; Advisor policy only). */
    std::unique_ptr<NpuCluster> advisor_fleet_;
    StatRegistry *stats_ = nullptr;
    RequestTracer *tracer_ = nullptr;
    IntervalSampler *sampler_ = nullptr;
    AttributionCollector *attribution_ = nullptr;
};

} // namespace v10

#endif // V10_SERVE_CLUSTER_MANAGER_H
