#include "serve/cluster_manager.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "common/annotations.h"
#include "common/log.h"
#include "common/parallel_executor.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "metrics/interval_sampler.h"
#include "metrics/stat_registry.h"
#include "trace/attribution.h"
#include "trace/request_tracer.h"
#include "workload/model_zoo.h"

namespace v10 {

namespace {

/** Stream-id space separation: tenants draw arrival streams below
 * the core salt, cores draw service streams above it, and the
 * flood-burst thinning draws live above both. */
constexpr std::uint64_t kCoreStreamSalt = 1ull << 32;
constexpr std::uint64_t kFloodStreamSalt = 1ull << 33;

/** One completion, buffered per control epoch inside the owning
 * core and folded into the per-tenant accumulators serially (in
 * core-index order) by the manager — so a tenant served by two
 * cores in one epoch (migration) still folds in one deterministic
 * floating-point order for any --jobs value. */
struct CompletionRec
{
    std::uint32_t tenant = 0; ///< global tenant index
    bool violated = false;
    double latencyUs = 0.0;
    double queueUs = 0.0;
    double serviceUs = 0.0;
    double soloUs = 0.0;
    double endSec = 0.0; ///< completion time (SLO bucket key)
};

/** One queue-wait / thrash-overhead attribution charge. */
struct WaitCharge
{
    std::uint32_t victim = 0;
    std::uint32_t perp = 0;
    double us = 0.0;
};

/** Static per-tenant antagonist context, shared by every core. */
struct TenantStatic
{
    std::vector<AntagonistProfile> hogs;   ///< HbmHog windows
    std::vector<AntagonistProfile> thrash; ///< Thrash windows
};

/** One waiting request: (arrival time, seq) FIFO entry. */
struct Waiting
{
    double timeSec = 0.0;
    std::uint64_t seq = 0;
};

/**
 * One tenant's live state on its current host core. The flow moves
 * wholesale between cores on migrate/isolate (queue handed over,
 * SCFQ virtual time reset); the in-flight request, if any, finishes
 * on the old core from captured parameters.
 */
struct V10_DOMAIN_LOCAL TenantFlow
{
    std::uint32_t tenant = 0; ///< global index (trace IDs)
    const std::vector<double> *arrivals = nullptr;
    std::size_t cursor = 0; ///< next un-consumed arrival
    bool active = true;     ///< consuming arrivals (churn/evict)
    double serviceMeanSec = 0.0; ///< after the collocation speedup
    double soloMeanSec = 0.0;    ///< solo-run calibration
    double weight = 1.0;
    double sloTargetUs = 0.0;
    /** Admission gate bucket; nullptr = admit everything. */
    TokenBucket *bucket = nullptr;
    const TenantStatic *stat = nullptr;
    std::vector<Waiting> queue;
    std::size_t head = 0;
    double vtime = 0.0; ///< SCFQ virtual finish time

    std::size_t queued() const { return queue.size() - head; }
};

/**
 * One core's persistent serving state: a single server draining
 * bounded per-tenant FIFO queues under self-clocked weighted fair
 * queueing, advanced one control epoch at a time. With a single
 * epoch (no resilience feature active) runEpoch() performs exactly
 * the classic single-pass simulation — same event order, same RNG
 * draw sites, same floating-point accumulation — so legacy runs
 * stay byte-identical. Trace/observability inputs only *record*;
 * service draws and scheduling never depend on them.
 */
class V10_DOMAIN_LOCAL CoreSim
{
  public:
    // --- immutable run context -------------------------------------
    std::size_t index = 0;
    Rng rng{0};
    std::uint64_t traceSeed = 0;
    std::uint64_t spanSampleN = 0;
    TraceSampler spanSampler{1};
    ServiceDist dist = ServiceDist::Exponential;
    double cv = 1.0;
    std::size_t queueCapacity = 64;
    double durationSec = 1.0;
    std::size_t sampleTicks = 0;
    double tickSec = 0.0;
    bool needCharges = false;

    /** Resident flows, keyed by global tenant index; ascending map
     * order is the deterministic tie-break everywhere. */
    std::map<std::size_t, TenantFlow> flows;

    // --- server state ---------------------------------------------
    double vclock = 0.0;
    bool busy = false;
    double busyUntil = 0.0;
    double servedStart = 0.0;
    double servedArrival = 0.0;
    std::uint64_t servedSeq = 0;
    std::uint32_t servedTenant = 0;
    /** Captured at service start so finish() never dereferences a
     * flow that migrated away mid-service. */
    double servedSloTargetUs = 0.0;
    double servedSpeed = 1.0;
    std::size_t waiting = 0; ///< total queued across tenants

    // --- whole-run accounting -------------------------------------
    double lastT = 0.0;
    std::size_t nextTick = 1;
    double depthArea = 0.0;
    double busyArea = 0.0;
    double depthPeak = 0.0;
    double busySec = 0.0;
    double endSec = 0.0; ///< last completion (>= duration horizon)
    std::uint64_t served = 0;
    std::vector<double> depthSamples;
    std::vector<double> inflightSamples;
    std::vector<RequestSpan> spans;

    // --- per-epoch buffers (folded serially by the manager) -------
    std::vector<CompletionRec> completions;
    std::vector<WaitCharge> charges;
    std::map<std::size_t, std::uint64_t> offered;
    std::map<std::size_t, std::uint64_t> shed;
    std::map<std::size_t, std::uint64_t> rejected;

    void
    beginEpoch()
    {
        completions.clear();
        charges.clear();
        offered.clear();
        shed.clear();
        rejected.clear();
    }

    /** Time-weighted occupancy accounting plus the optional fixed
     * sim-time tick series; called with the state still describing
     * (lastT, now]. */
    void
    advanceTime(double now)
    {
        if (now < lastT)
            return;
        while (sampleTicks > 0 && nextTick <= sampleTicks &&
               static_cast<double>(nextTick) * tickSec <= now) {
            depthSamples.push_back(static_cast<double>(waiting));
            inflightSamples.push_back(busy ? 1.0 : 0.0);
            ++nextTick;
        }
        depthArea += static_cast<double>(waiting) * (now - lastT);
        busyArea += (busy ? 1.0 : 0.0) * (now - lastT);
        lastT = now;
    }

    /** One service draw at the tenant's mean, inflated by any live
     * HBM-hog windows. Exactly one RNG draw regardless of the
     * inflation factor, so draw sequences stay aligned. */
    double
    drawService(const TenantFlow &f, double now)
    {
        double mean = f.serviceMeanSec;
        if (f.stat != nullptr) {
            for (const AntagonistProfile &p : f.stat->hogs) {
                if (p.activeAt(now))
                    mean *= p.effectiveMagnitude();
            }
        }
        switch (dist) {
          case ServiceDist::Deterministic: return mean;
          case ServiceDist::Exponential:
            return rng.exponential(mean);
          case ServiceDist::Lognormal:
            return rng.lognormal(mean, cv);
        }
        panic("CoreSim: bad service distribution");
    }

    /** Pick the nonempty queue with the least virtual time (ties to
     * the lowest tenant index) and put it in service. */
    void
    startNext(double now)
    {
        auto pick = flows.end();
        for (auto it = flows.begin(); it != flows.end(); ++it) {
            if (it->second.queued() == 0)
                continue;
            if (pick == flows.end() ||
                it->second.vtime < pick->second.vtime)
                pick = it;
        }
        if (pick == flows.end())
            return;
        TenantFlow &f = pick->second;
        servedTenant = f.tenant;
        const Waiting &w = f.queue[f.head++];
        servedArrival = w.timeSec;
        servedSeq = w.seq;
        --waiting;
        double service = drawService(f, now);
        // Preemption thrashing: a queued co-resident with a live
        // thrash window inflicts per-start overhead, charged to the
        // thrasher in the attribution matrix.
        for (auto &[ti, g] : flows) {
            if (ti == pick->first || g.stat == nullptr ||
                g.stat->thrash.empty() || g.queued() == 0)
                continue;
            double frac = 0.0;
            for (const AntagonistProfile &p : g.stat->thrash) {
                if (p.activeAt(now))
                    frac += p.effectiveMagnitude();
            }
            if (frac <= 0.0)
                continue;
            const double overhead = frac * f.serviceMeanSec;
            service += overhead;
            if (needCharges)
                charges.push_back(
                    WaitCharge{f.tenant, g.tenant, overhead * 1e6});
        }
        vclock = std::max(vclock, f.vtime);
        f.vtime = vclock + service / f.weight;
        busy = true;
        servedStart = now;
        busyUntil = now + service;
        busySec += service;
        servedSloTargetUs = f.sloTargetUs;
        servedSpeed = f.serviceMeanSec > 0.0
                          ? f.soloMeanSec / f.serviceMeanSec
                          : 1.0;
    }

    /** Restart an idle server after a queue handoff (migration). */
    void
    kickIdle(double now)
    {
        if (!busy)
            startNext(now);
    }

    void
    finish()
    {
        const double latencyUs = (busyUntil - servedArrival) * 1e6;
        const double queueUs = (servedStart - servedArrival) * 1e6;
        const double serviceUs = (busyUntil - servedStart) * 1e6;
        // Solo-equivalent of this draw: the same work at the
        // tenant's calibrated solo rate.
        const double soloUs = serviceUs * servedSpeed;
        ++served;
        const double target = servedSloTargetUs;
        const bool violated = target > 0.0 && latencyUs > target;
        completions.push_back(CompletionRec{
            servedTenant, violated, latencyUs, queueUs, serviceUs,
            soloUs, busyUntil});
        if (needCharges) {
            // Head-of-line blocking: each co-resident flow whose
            // head request waited out this service accrues the
            // service time, charged to the tenant that held the
            // server. Charging per flow (not per queued request)
            // keeps the perpetrator score proportional to the
            // blocker's server occupancy — a flooder's deep
            // self-inflicted queue must not inflate its victims'
            // columns.
            for (auto &[ti, g] : flows) {
                if (g.tenant == servedTenant || g.queued() == 0)
                    continue;
                charges.push_back(
                    WaitCharge{g.tenant, servedTenant, serviceUs});
            }
        }
        if (spanSampleN > 0) {
            const TraceContext ctx = TraceContext::make(
                traceSeed, servedTenant, servedSeq);
            if (spanSampler.sampled(ctx.traceId)) {
                RequestSpan span;
                span.ctx = ctx;
                span.core = index;
                span.arrivalUs = servedArrival * 1e6;
                span.startUs = servedStart * 1e6;
                span.endUs = busyUntil * 1e6;
                span.soloUs = soloUs;
                span.sloTargetUs = target;
                span.violated = violated;
                spans.push_back(std::move(span));
            }
        }
        endSec = std::max(endSec, busyUntil);
        busy = false;
    }

    /** Record a span for an arrival that never entered the queue
     * (admission rejection or queue-full shed). */
    void
    dropSpan(const TenantFlow &f, double atSec, std::uint64_t seq,
             bool wasRejected)
    {
        if (spanSampleN == 0)
            return;
        const TraceContext ctx =
            TraceContext::make(traceSeed, f.tenant, seq);
        if (!spanSampler.sampled(ctx.traceId))
            return;
        RequestSpan span;
        span.ctx = ctx;
        span.core = index;
        span.arrivalUs = atSec * 1e6;
        span.startUs = span.arrivalUs;
        span.endUs = span.arrivalUs;
        span.sloTargetUs = f.sloTargetUs;
        span.shed = !wasRejected;
        span.rejected = wasRejected;
        spans.push_back(std::move(span));
    }

    /**
     * Advance to @p epochEnd. Non-final epochs process arrivals
     * strictly before the boundary and defer completions landing on
     * or past it; the final epoch consumes every remaining arrival
     * and drains all queues (completions past the horizon allowed).
     */
    void
    runEpoch(double epochEnd, bool isFinal)
    {
        const double bound =
            isFinal ? std::numeric_limits<double>::infinity()
                    : epochEnd;
        while (true) {
            // Next arrival among active flows (ascending map order
            // breaks exact-time ties toward the lowest index).
            auto at = flows.end();
            double atTime = 0.0;
            for (auto it = flows.begin(); it != flows.end(); ++it) {
                TenantFlow &f = it->second;
                if (!f.active || f.cursor >= f.arrivals->size())
                    continue;
                const double tm = (*f.arrivals)[f.cursor];
                if (tm >= bound)
                    continue;
                if (at == flows.end() || tm < atTime) {
                    at = it;
                    atTime = tm;
                }
            }
            const bool haveArrival = at != flows.end();
            // Completions fire before arrivals carrying the same
            // timestamp: the server frees the slot first.
            if (busy && (!haveArrival || busyUntil <= atTime)) {
                if (!isFinal && busyUntil >= epochEnd)
                    break; // lands on/after the boundary: defer
                const double now = busyUntil;
                advanceTime(now);
                finish();
                startNext(now);
                continue;
            }
            if (!haveArrival)
                break;
            TenantFlow &f = at->second;
            const auto seq = static_cast<std::uint64_t>(f.cursor);
            ++f.cursor;
            ++offered[at->first];
            advanceTime(atTime);
            if (f.bucket != nullptr && !f.bucket->tryAdmit(atTime)) {
                ++rejected[at->first];
                dropSpan(f, atTime, seq, /*wasRejected=*/true);
            } else if (f.queued() >= queueCapacity) {
                ++shed[at->first]; // bounded queue: load-shed
                dropSpan(f, atTime, seq, /*wasRejected=*/false);
            } else {
                f.queue.push_back(Waiting{atTime, seq});
                ++waiting;
                depthPeak = std::max(depthPeak,
                                     static_cast<double>(waiting));
                if (!busy)
                    startNext(atTime);
            }
        }
        if (!isFinal) {
            // Close the occupancy integrals at the boundary: the
            // control step may hand queues between cores.
            advanceTime(epochEnd);
            return;
        }
        // Close the integrals at the drain point and emit any
        // remaining (idle) ticks.
        advanceTime(std::max(endSec, durationSec));
        while (sampleTicks > 0 && nextTick <= sampleTicks) {
            depthSamples.push_back(0.0);
            inflightSamples.push_back(0.0);
            ++nextTick;
        }
    }
};

} // namespace

Result<std::vector<SloTier>>
parseSloSpec(const std::string &spec)
{
    std::vector<SloTier> tiers;
    for (const std::string &part : split(spec, ',')) {
        if (part.empty())
            return parseError("slo: empty tier", "", 0, spec);
        const auto colon = part.find(':');
        std::string target = part.substr(0, colon);
        SloTier tier;
        if (colon != std::string::npos) {
            const std::string weight = part.substr(colon + 1);
            const auto w = parseDouble(weight);
            if (!w || !std::isfinite(*w) || *w <= 0.0)
                return parseError("slo: weight must be a positive "
                                  "number",
                                  "", 0, weight);
            tier.weight = *w;
        }
        if (!target.empty() && target.back() == 'x') {
            tier.relative = true;
            target.pop_back();
        } else {
            tier.relative = false;
        }
        const auto v = parseDouble(target);
        if (!v || !std::isfinite(*v) || *v <= 0.0)
            return parseError("slo: target must be a positive "
                              "number or <mult>x",
                              "", 0, part);
        tier.value = *v;
        tiers.push_back(tier);
    }
    if (tiers.empty())
        return parseError("slo: expected target[:weight][,...]", "",
                          0, spec);
    return tiers;
}

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::RoundRobin:  return "round-robin";
      case PlacementPolicy::LeastLoaded: return "least-loaded";
      case PlacementPolicy::Advisor:     return "advisor";
    }
    panic("placementPolicyName: bad policy");
}

std::optional<PlacementPolicy>
tryPlacementPolicyFromName(const std::string &name)
{
    if (name == "round-robin")
        return PlacementPolicy::RoundRobin;
    if (name == "least-loaded")
        return PlacementPolicy::LeastLoaded;
    if (name == "advisor")
        return PlacementPolicy::Advisor;
    return std::nullopt;
}

const char *
serviceDistName(ServiceDist dist)
{
    switch (dist) {
      case ServiceDist::Deterministic: return "det";
      case ServiceDist::Exponential:   return "exp";
      case ServiceDist::Lognormal:     return "lognormal";
    }
    panic("serviceDistName: bad dist");
}

std::optional<ServiceDist>
tryServiceDistFromName(const std::string &name)
{
    if (name == "det")
        return ServiceDist::Deterministic;
    if (name == "exp")
        return ServiceDist::Exponential;
    if (name == "lognormal")
        return ServiceDist::Lognormal;
    return std::nullopt;
}

ClusterManager::ClusterManager(ServeConfig config)
    : config_(config), runner_(config.core)
{
}

Status
ClusterManager::checkConfig() const
{
    if (config_.numCores == 0)
        return parseError("serve: fleet needs at least one core",
                          "", 0, "numCores");
    if (!std::isfinite(config_.durationSec) ||
        config_.durationSec <= 0.0)
        return parseError("serve: duration must be positive", "", 0,
                          "durationSec");
    if (config_.queueCapacity == 0)
        return parseError("serve: per-tenant queue capacity must "
                          "be >= 1",
                          "", 0, "queueCapacity");
    if (config_.serviceDist == ServiceDist::Lognormal &&
        (!std::isfinite(config_.serviceCv) ||
         config_.serviceCv <= 0.0))
        return parseError("serve: lognormal service cv must be "
                          "positive",
                          "", 0, "serviceCv");
    return Status::ok();
}

Status
ClusterManager::addTenant(ServeTenant tenant)
{
    if (tenant.name.empty())
        return parseError("serve: tenant name must be non-empty",
                          "", 0, "name");
    for (const ServeTenant &existing : tenants_) {
        if (existing.name == tenant.name)
            return parseError("serve: duplicate tenant name", "", 0,
                              tenant.name);
    }
    if (tryFindModel(tenant.model) == nullptr)
        return parseError("serve: unknown model", "", 0,
                          tenant.model);
    if (Status s = tenant.arrival.check("serve: tenant '" +
                                        tenant.name + "' arrival");
        !s)
        return s;
    if (!std::isfinite(tenant.slo.latencyTargetUs) ||
        tenant.slo.latencyTargetUs < 0.0)
        return parseError("serve: SLO latency target must be "
                          "finite and non-negative",
                          "", 0, tenant.name);
    if (!std::isfinite(tenant.slo.weight) ||
        tenant.slo.weight <= 0.0)
        return parseError("serve: SLO weight must be positive", "",
                          0, tenant.name);
    if (!std::isfinite(tenant.serviceUsOverride) ||
        tenant.serviceUsOverride < 0.0)
        return parseError("serve: service override must be finite "
                          "and non-negative",
                          "", 0, tenant.name);
    tenants_.push_back(std::move(tenant));
    service_us_cache_.push_back(0.0);
    return Status::ok();
}

double
ClusterManager::serviceUs(std::size_t index)
{
    if (index >= tenants_.size())
        panic("ClusterManager::serviceUs: bad tenant index ", index);
    if (service_us_cache_[index] > 0.0)
        return service_us_cache_[index];
    const ServeTenant &t = tenants_[index];
    double us = t.serviceUsOverride;
    if (us <= 0.0) {
        const double rate =
            runner_.singleTenantRps(t.model, t.batch);
        if (rate <= 0.0)
            panic("ClusterManager::serviceUs: non-positive "
                  "calibrated rate for ",
                  t.model);
        us = 1e6 / rate;
    }
    service_us_cache_[index] = us;
    return us;
}

Result<ServePlacement>
ClusterManager::placeAdvisor()
{
    // Train the §3.4 advisor on the distinct pooled models, then
    // greedily pair tenants whose models clear the predicted-gain
    // threshold; pairs serve faster by the predicted gain.
    if (advisor_fleet_ == nullptr) {
        ClusterConfig fleet;
        fleet.core = config_.core;
        fleet.numCores = config_.numCores;
        fleet.collocationThreshold = config_.collocationThreshold;
        fleet.jobs = config_.jobs;
        auto cluster = std::make_unique<NpuCluster>(fleet);
        std::vector<std::string> distinct;
        for (const ServeTenant &t : tenants_) {
            if (std::find(distinct.begin(), distinct.end(),
                          t.model) == distinct.end())
                distinct.push_back(t.model);
        }
        for (const std::string &model : distinct) {
            if (Status s = cluster->tryAddWorkload(model); !s)
                return s.error();
        }
        if (Status s = cluster->tryTrainAdvisor(
                config_.advisorProfileRequests);
            !s)
            return s.error();
        advisor_fleet_ = std::move(cluster);
    }

    // Pairwise predicted gain, cached per model pair.
    std::map<std::pair<std::string, std::string>, double> gains;
    auto gain_of = [&](const std::string &a, const std::string &b) {
        auto key = a <= b ? std::make_pair(a, b)
                          : std::make_pair(b, a);
        auto it = gains.find(key);
        if (it == gains.end())
            it = gains
                     .emplace(key, advisor_fleet_->predictedGain(
                                       key.first, key.second))
                     .first;
        return it->second;
    };

    struct Candidate
    {
        std::size_t a, b;
        double gain;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        for (std::size_t j = i + 1; j < tenants_.size(); ++j) {
            const double g =
                gain_of(tenants_[i].model, tenants_[j].model);
            if (g >= config_.collocationThreshold)
                candidates.push_back(Candidate{i, j, g});
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &x, const Candidate &y) {
                  if (x.gain != y.gain)
                      return x.gain > y.gain;
                  if (x.a != y.a)
                      return x.a < y.a;
                  return x.b < y.b;
              });

    ServePlacement placement;
    placement.tenantSpeed.assign(tenants_.size(), 1.0);
    std::vector<bool> paired(tenants_.size(), false);
    std::vector<std::vector<std::size_t>> groups;
    for (const Candidate &c : candidates) {
        if (paired[c.a] || paired[c.b])
            continue;
        paired[c.a] = paired[c.b] = true;
        groups.push_back({c.a, c.b});
        // The predicted STP gain becomes the pair's service speed
        // factor (capped at the two-tenant concurrency limit).
        const double speed = std::min(std::max(c.gain, 1.0), 2.0);
        placement.tenantSpeed[c.a] = speed;
        placement.tenantSpeed[c.b] = speed;
    }
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if (!paired[i])
            groups.push_back({i});
    }

    // Spill groups to the least-loaded core (offered erlangs,
    // adjusted for the pair speedup).
    placement.coreTenants.assign(config_.numCores, {});
    placement.tenantCore.assign(tenants_.size(), 0);
    std::vector<double> load(config_.numCores, 0.0);
    for (const auto &group : groups) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < config_.numCores; ++c) {
            if (load[c] < load[best])
                best = c;
        }
        for (std::size_t idx : group) {
            placement.coreTenants[best].push_back(idx);
            placement.tenantCore[idx] = best;
            load[best] += tenants_[idx].arrival.rps *
                          (serviceUs(idx) * 1e-6) /
                          placement.tenantSpeed[idx];
        }
    }
    return placement;
}

Result<ServePlacement>
ClusterManager::place()
{
    if (Status s = checkConfig(); !s)
        return s.error();
    if (tenants_.empty())
        return parseError("serve: no tenants admitted", "", 0,
                          "tenants");

    if (config_.policy == PlacementPolicy::Advisor)
        return placeAdvisor();

    ServePlacement placement;
    placement.coreTenants.assign(config_.numCores, {});
    placement.tenantSpeed.assign(tenants_.size(), 1.0);
    placement.tenantCore.assign(tenants_.size(), 0);

    if (config_.policy == PlacementPolicy::RoundRobin) {
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            const std::size_t core = i % config_.numCores;
            placement.coreTenants[core].push_back(i);
            placement.tenantCore[i] = core;
        }
        return placement;
    }

    // LeastLoaded: heaviest tenants first onto the emptiest core.
    std::vector<std::size_t> order(tenants_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::vector<double> erlangs(tenants_.size());
    for (std::size_t i = 0; i < tenants_.size(); ++i)
        erlangs[i] =
            tenants_[i].arrival.rps * (serviceUs(i) * 1e-6);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (erlangs[a] != erlangs[b])
                      return erlangs[a] > erlangs[b];
                  return a < b;
              });
    std::vector<double> load(config_.numCores, 0.0);
    for (std::size_t idx : order) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < config_.numCores; ++c) {
            if (load[c] < load[best])
                best = c;
        }
        placement.coreTenants[best].push_back(idx);
        placement.tenantCore[idx] = best;
        load[best] += erlangs[idx];
    }
    // Keep each core's resident list in tenant order so the core
    // simulation is independent of the placement visit order.
    for (auto &residents : placement.coreTenants)
        std::sort(residents.begin(), residents.end());
    return placement;
}

std::size_t
ClusterManager::repairCore(
    std::size_t tenant, std::size_t current,
    const std::vector<std::vector<std::size_t>> &residents)
{
    // Re-pair a recovering tenant: prefer the advisor's best
    // predicted gain against a candidate core's residents (when the
    // advisor was trained), break ties toward the emptiest core,
    // then the lowest index. Never the isolation core it leaves.
    std::size_t best = current;
    double bestGain = -1.0;
    std::size_t bestCount = 0;
    for (std::size_t c = 0; c < residents.size(); ++c) {
        if (c == current)
            continue;
        double gain = 0.0;
        if (advisor_fleet_ != nullptr) {
            for (std::size_t other : residents[c]) {
                if (other == tenant)
                    continue;
                gain = std::max(
                    gain, advisor_fleet_->predictedGain(
                              tenants_[tenant].model,
                              tenants_[other].model));
            }
        }
        const std::size_t count = residents[c].size();
        if (best == current || gain > bestGain ||
            (gain == bestGain && count < bestCount)) {
            best = c;
            bestGain = gain;
            bestCount = count;
        }
    }
    return best;
}

Result<ServingReport>
ClusterManager::run()
{
    auto placement_or = place();
    if (!placement_or.ok())
        return placement_or.error();
    const ServePlacement placement = placement_or.take();
    const std::size_t n = tenants_.size();

    // Validate the resilience surface up front (defaults all pass).
    if (Status s = config_.admission.check(); !s)
        return s.error();
    if (Status s = config_.detector.check(); !s)
        return s.error();
    if (Status s = config_.ladder.check(); !s)
        return s.error();
    if (Status s = config_.churn.check(config_.durationSec); !s)
        return s.error();
    if (Status s = config_.antagonists.check(n,
                                             config_.durationSec);
        !s)
        return s.error();

    // Resolve churn tenant names and walk the plan's state machine:
    // a tenant whose first event is a join starts dormant; joins
    // require a dormant tenant, leaves/migrates an active one.
    struct PlannedChurn
    {
        ChurnEvent event;
        std::size_t tenant = 0;
        std::size_t epoch = 0; ///< boundary index on the epoch grid
    };
    std::vector<PlannedChurn> churn;
    std::vector<bool> startsInactive(n, false);
    {
        std::vector<bool> active(n, true);
        std::vector<bool> seen(n, false);
        for (const ChurnEvent &ev : config_.churn.events()) {
            std::size_t idx = n;
            for (std::size_t i = 0; i < n; ++i) {
                if (tenants_[i].name == ev.tenant) {
                    idx = i;
                    break;
                }
            }
            if (idx == n)
                return parseError("churn: unknown tenant", "", 0,
                                  ev.tenant);
            if (!seen[idx]) {
                seen[idx] = true;
                if (ev.action == ChurnAction::Join) {
                    startsInactive[idx] = true;
                    active[idx] = false;
                }
            }
            if (ev.action == ChurnAction::Join) {
                if (active[idx])
                    return parseError(
                        "churn: tenant already joined", "", 0,
                        ev.spec());
                active[idx] = true;
            } else {
                if (!active[idx])
                    return parseError(
                        "churn: tenant is not active", "", 0,
                        ev.spec());
                if (ev.action == ChurnAction::Leave)
                    active[idx] = false;
                if (ev.action == ChurnAction::Migrate &&
                    ev.core >= 0 &&
                    static_cast<std::size_t>(ev.core) >=
                        config_.numCores)
                    return parseError(
                        "churn: migrate core out of range", "", 0,
                        ev.spec());
            }
            churn.push_back(PlannedChurn{ev, idx, 0});
        }
    }

    // Control grid: one epoch per SLO-monitor bucket when any
    // resilience feature is live, else the classic single pass.
    const bool resilience = config_.resilienceActive();
    const std::size_t E = resilience ? SloMonitor::kBuckets : 1;
    const double epochSec =
        config_.durationSec / static_cast<double>(E);
    for (PlannedChurn &pc : churn) {
        const auto snapped = static_cast<std::size_t>(
            std::llround(pc.event.atSec / epochSec));
        pc.epoch = std::min(std::max<std::size_t>(snapped, 1),
                            E > 1 ? E - 1 : 1);
    }

    // Per-tenant arrival streams: derived seeds make every stream a
    // pure function of (run seed, tenant index).
    std::vector<std::vector<double>> streams(n);
    for (std::size_t i = 0; i < n; ++i) {
        ArrivalProcess process(
            tenants_[i].arrival,
            Rng::deriveStream(config_.seed, i));
        streams[i] = process.generate(config_.durationSec);
    }

    // Flood augmentation at stream generation: antagonist flood
    // profiles and serve-granularity fault-plan flood sites thin the
    // base arrivals with a per-tenant derived stream (one draw per
    // live source per base arrival — always-draw, so sequences are
    // stable under rate changes) and append burst copies in place.
    struct FloodSource
    {
        double prob = 0.0;
        std::uint64_t burst = 0;
        double afterSec = 0.0;
        double untilSec = 0.0; ///< 0 = never ends
        std::uint64_t maxCount = 0;
        int tenant = -1; ///< -1 = every tenant
        std::uint64_t fired = 0;
    };
    std::vector<FloodSource> floodSources;
    for (const AntagonistProfile &p :
         config_.antagonists.profiles()) {
        if (p.kind != AntagonistKind::Flood)
            continue;
        FloodSource src;
        src.prob = p.rate;
        src.burst =
            static_cast<std::uint64_t>(p.effectiveMagnitude());
        src.afterSec = p.afterSec;
        src.untilSec = p.untilSec;
        src.tenant = p.tenant;
        floodSources.push_back(src);
    }
    if (config_.faults != nullptr) {
        const double cyclesPerSec = config_.core.freqGHz * 1e9;
        for (const FaultSite &site : config_.faults->sites()) {
            // Cycle-level kinds have no serve-layer analogue.
            if (site.kind != FaultKind::TraceFlood)
                continue;
            FloodSource src;
            src.prob = site.rate;
            src.burst = static_cast<std::uint64_t>(
                site.effectiveMagnitude());
            src.afterSec =
                cyclesPerSec > 0.0
                    ? static_cast<double>(site.after) / cyclesPerSec
                    : 0.0;
            src.maxCount = site.maxCount;
            src.tenant = site.tenant;
            floodSources.push_back(src);
        }
    }
    if (!floodSources.empty()) {
        for (std::size_t i = 0; i < n; ++i) {
            bool applicable = false;
            for (const FloodSource &s : floodSources) {
                if (s.tenant < 0 ||
                    static_cast<std::size_t>(s.tenant) == i) {
                    applicable = true;
                    break;
                }
            }
            if (!applicable)
                continue;
            Rng frng(Rng::deriveStream(config_.seed,
                                       kFloodStreamSalt + i));
            std::vector<double> out;
            out.reserve(streams[i].size());
            for (double t : streams[i]) {
                out.push_back(t);
                for (FloodSource &s : floodSources) {
                    if (s.tenant >= 0 &&
                        static_cast<std::size_t>(s.tenant) != i)
                        continue;
                    if (t < s.afterSec ||
                        (s.untilSec > 0.0 && t >= s.untilSec))
                        continue;
                    const bool hit = frng.uniform() < s.prob;
                    if (!hit)
                        continue;
                    if (s.maxCount > 0 && s.fired >= s.maxCount)
                        continue;
                    ++s.fired;
                    for (std::uint64_t k = 0; k < s.burst; ++k)
                        out.push_back(t);
                }
            }
            streams[i] = std::move(out);
        }
    }

    // Resolve service means up front (cache fills are not
    // thread-safe, and the fan-out workers read them).
    for (std::size_t i = 0; i < n; ++i)
        (void)serviceUs(i);

    // Static antagonist context, admission gate, attribution
    // collector (external when attached), quarantine controller.
    std::vector<TenantStatic> statics(n);
    for (const AntagonistProfile &p :
         config_.antagonists.profiles()) {
        if (p.kind == AntagonistKind::HbmHog)
            statics[static_cast<std::size_t>(p.tenant)]
                .hogs.push_back(p);
        else if (p.kind == AntagonistKind::Thrash)
            statics[static_cast<std::size_t>(p.tenant)]
                .thrash.push_back(p);
    }

    AdmissionGate gate(n, config_.admission);
    for (std::size_t i = 0; i < n; ++i)
        gate.configure(i, tenants_[i].arrival.rps);

    AttributionCollector internalAttrib;
    AttributionCollector *attrib =
        attribution_ != nullptr ? attribution_ : &internalAttrib;
    const bool needCharges = resilience || attribution_ != nullptr;
    if (needCharges) {
        for (std::size_t i = 0; i < n; ++i) {
            // The detector reads chargedUs() by dense index, so the
            // collector must be fresh (dense index == serve index).
            const std::size_t dense = attrib->addTenant(
                static_cast<WorkloadId>(i), tenants_[i].name);
            if (dense != i)
                return parseError(
                    "serve: attribution collector already holds "
                    "tenants; attach a fresh one",
                    "", 0, tenants_[i].name);
        }
    }

    QuarantineController controller(n, config_.detector,
                                    config_.ladder);

    // Persistent per-core simulations seeded from the placement.
    const std::uint64_t spanSampleN =
        tracer_ != nullptr ? tracer_->sampler().n : 0;
    std::vector<CoreSim> sims(config_.numCores);
    std::vector<std::size_t> tenantCore = placement.tenantCore;
    for (std::size_t c = 0; c < config_.numCores; ++c) {
        CoreSim &sim = sims[c];
        sim.index = c;
        sim.rng = Rng(
            Rng::deriveStream(config_.seed, kCoreStreamSalt + c));
        sim.traceSeed = config_.seed;
        sim.spanSampleN = spanSampleN;
        sim.spanSampler = TraceSampler{spanSampleN};
        sim.dist = config_.serviceDist;
        sim.cv = config_.serviceCv;
        sim.queueCapacity = config_.queueCapacity;
        sim.durationSec = config_.durationSec;
        sim.sampleTicks = config_.queueSampleTicks;
        sim.tickSec =
            config_.queueSampleTicks > 0
                ? config_.durationSec /
                      static_cast<double>(config_.queueSampleTicks)
                : 0.0;
        sim.needCharges = needCharges;
        sim.endSec = config_.durationSec;
        for (std::size_t idx : placement.coreTenants[c]) {
            TenantFlow f;
            f.tenant = static_cast<std::uint32_t>(idx);
            f.arrivals = &streams[idx];
            f.soloMeanSec = serviceUs(idx) * 1e-6;
            f.serviceMeanSec =
                f.soloMeanSec / placement.tenantSpeed[idx];
            f.weight = tenants_[idx].slo.weight;
            f.sloTargetUs = tenants_[idx].slo.latencyTargetUs;
            f.bucket = gate.bucket(idx);
            f.stat = &statics[idx];
            f.active = !startsInactive[idx];
            sim.flows.emplace(idx, std::move(f));
        }
    }

    // Churn/quarantine bookkeeping surfaced in the report.
    std::vector<char> activeNow(n, 1);
    for (std::size_t i = 0; i < n; ++i)
        activeNow[i] = startsInactive[i] ? 0 : 1;
    std::vector<double> joinSecV(n, 0.0);
    std::vector<double> leaveSecV(n, 0.0);
    std::vector<std::uint64_t> migrationsV(n, 0);

    // Hand one tenant's flow (waiting queue included) to another
    // core at an epoch boundary; the in-flight request, if any,
    // finishes on the source core from captured parameters.
    auto migrateFlow = [&](std::size_t t, std::size_t dest,
                           double now) {
        const std::size_t src = tenantCore[t];
        if (dest == src)
            return;
        CoreSim &s = sims[src];
        CoreSim &d = sims[dest];
        auto it = s.flows.find(t);
        if (it == s.flows.end())
            panic("serve: migrating tenant ", t,
                  " not resident on core ", src);
        TenantFlow f = std::move(it->second);
        s.flows.erase(it);
        s.waiting -= f.queued();
        d.waiting += f.queued();
        d.depthPeak = std::max(d.depthPeak,
                               static_cast<double>(d.waiting));
        f.vtime = 0.0; // SCFQ state is per-core: rejoin at vclock
        const bool hasWork = f.queued() > 0;
        d.flows.emplace(t, std::move(f));
        tenantCore[t] = dest;
        if (hasWork)
            d.kickIdle(now); // idle server must notice the handoff
    };

    // Dedicated core for an isolated antagonist: the emptiest other
    // core (ties to the lowest index); stay if already alone.
    auto isolationCore = [&](std::size_t t) {
        const std::size_t cur = tenantCore[t];
        if (sims[cur].flows.size() <= 1)
            return cur;
        std::size_t best = cur;
        std::size_t bestCount =
            std::numeric_limits<std::size_t>::max();
        for (std::size_t c = 0; c < config_.numCores; ++c) {
            if (c == cur)
                continue;
            if (sims[c].flows.size() < bestCount) {
                best = c;
                bestCount = sims[c].flows.size();
            }
        }
        return best;
    };

    auto residentLists = [&]() {
        std::vector<std::vector<std::size_t>> lists(
            config_.numCores);
        for (std::size_t c = 0; c < config_.numCores; ++c) {
            for (const auto &entry : sims[c].flows)
                lists[c].push_back(entry.first);
        }
        return lists;
    };

    // Per-tenant accumulators owned by the manager and filled by
    // the serial per-epoch fold (deterministic FP order).
    struct TenantAccum
    {
        LogHistogram latencyUs;
        std::uint64_t offered = 0;
        std::uint64_t completed = 0;
        std::uint64_t shed = 0;
        std::uint64_t rejected = 0;
        std::uint64_t violations = 0;
        double queueUs = 0.0;
        double serviceUs = 0.0;
        double soloUs = 0.0;
    };
    std::vector<TenantAccum> accum(n);
    SloMonitor monitor(n, config_.durationSec, config_.sloPolicy);
    std::vector<double> prevCharged(n, 0.0);

    ServingReport report;
    std::size_t churnCursor = 0;
    ParallelExecutor exec(config_.jobs);

    for (std::size_t e = 0; e < E; ++e) {
        const bool isFinal = e + 1 == E;
        const double epochEnd =
            isFinal ? config_.durationSec
                    : static_cast<double>(e + 1) * epochSec;

        // Independent per-core epoch simulations; each worker only
        // touches its own CoreSim and its residents' token buckets.
        exec.forEach(config_.numCores, [&](std::size_t c) {
            sims[c].beginEpoch();
            sims[c].runEpoch(epochEnd, isFinal);
        });

        // Serial fold in core-index order: identical accumulation
        // order (and FP results) for any --jobs value.
        for (std::size_t c = 0; c < config_.numCores; ++c) {
            CoreSim &sim = sims[c];
            for (const CompletionRec &r : sim.completions) {
                TenantAccum &a = accum[r.tenant];
                a.latencyUs.add(r.latencyUs);
                ++a.completed;
                if (r.violated)
                    ++a.violations;
                a.queueUs += r.queueUs;
                a.serviceUs += r.serviceUs;
                a.soloUs += r.soloUs;
                monitor.addBucket(r.tenant,
                                  monitor.bucketIndex(r.endSec), 1,
                                  r.violated ? 1 : 0);
            }
            for (const auto &[t, cnt] : sim.offered)
                accum[t].offered += cnt;
            for (const auto &[t, cnt] : sim.shed)
                accum[t].shed += cnt;
            for (const auto &[t, cnt] : sim.rejected)
                accum[t].rejected += cnt;
            if (needCharges) {
                for (const WaitCharge &ch : sim.charges)
                    attrib->chargeQueueWait(ch.victim, ch.perp,
                                            ch.us);
            }
        }
        if (isFinal)
            break;

        // --- serial control step at the boundary ------------------
        const double boundary = epochEnd;

        // 1) Churn events snapped to this boundary, in plan order.
        while (churnCursor < churn.size() &&
               churn[churnCursor].epoch == e + 1) {
            const PlannedChurn &pc = churn[churnCursor++];
            const std::size_t t = pc.tenant;
            const std::size_t cur = tenantCore[t];
            ChurnRecord rec;
            rec.timeSec = boundary;
            rec.action = churnActionName(pc.event.action);
            rec.tenant = tenants_[t].name;
            rec.fromCore = cur;
            rec.toCore = cur;
            switch (pc.event.action) {
              case ChurnAction::Join: {
                TenantFlow &f = sims[cur].flows.at(t);
                f.active = true;
                // Arrivals before the join never happened: skip
                // them un-counted.
                while (f.cursor < f.arrivals->size() &&
                       (*f.arrivals)[f.cursor] < boundary)
                    ++f.cursor;
                activeNow[t] = 1;
                joinSecV[t] = boundary;
                leaveSecV[t] = 0.0;
                break;
              }
              case ChurnAction::Leave: {
                TenantFlow &f = sims[cur].flows.at(t);
                f.active = false; // queue drains gracefully
                activeNow[t] = 0;
                leaveSecV[t] = boundary;
                break;
              }
              case ChurnAction::Migrate: {
                std::size_t dest;
                if (pc.event.core >= 0) {
                    dest =
                        static_cast<std::size_t>(pc.event.core);
                } else {
                    // Least-loaded: fewest resident flows, ties to
                    // the lowest index, never the source core.
                    dest = cur;
                    std::size_t bestCount =
                        std::numeric_limits<std::size_t>::max();
                    for (std::size_t c = 0; c < config_.numCores;
                         ++c) {
                        if (c == cur)
                            continue;
                        if (sims[c].flows.size() < bestCount) {
                            dest = c;
                            bestCount = sims[c].flows.size();
                        }
                    }
                }
                rec.toCore = dest;
                ++migrationsV[t];
                migrateFlow(t, dest, boundary);
                break;
              }
            }
            report.churnEvents.push_back(std::move(rec));
        }

        // 2) AIMD admission adaptation from the online burn-rate
        //    signal (SLO monitor data through this epoch).
        if (gate.enabled()) {
            for (std::size_t t = 0; t < n; ++t) {
                if (!activeNow[t] ||
                    controller.stage(t) ==
                        QuarantineStage::Evicted)
                    continue;
                const BurnRateStatus st =
                    monitor.statusAt(t, boundary);
                const AdmissionGate::Change change =
                    gate.adapt(t, st.alert);
                if (change == AdmissionGate::Change::Held)
                    continue;
                AdmissionRecord rec;
                rec.timeSec = boundary;
                rec.epoch = e + 1;
                rec.tenant = tenants_[t].name;
                rec.action =
                    change == AdmissionGate::Change::Decreased
                        ? "decrease"
                        : "recover";
                rec.rateRps = gate.rateRps(t);
                report.admissionEvents.push_back(std::move(rec));
            }
        }

        // 3) Antagonist detection and the quarantine ladder: the
        //    epoch perpetrator score is the queue-wait the tenant
        //    inflicted this epoch per microsecond of epoch (mean
        //    co-runner requests stalled behind it).
        if (needCharges) {
            const double epochUs = epochSec * 1e6;
            for (std::size_t t = 0; t < n; ++t) {
                const double total = attrib->chargedUs(t);
                const double score =
                    (total - prevCharged[t]) / epochUs;
                prevCharged[t] = total;
                QuarantineController::Transition tr;
                if (!controller.observe(t, score, &tr))
                    continue;
                QuarantineRecord rec;
                rec.timeSec = boundary;
                rec.epoch = e + 1;
                rec.tenant = tenants_[t].name;
                rec.from = quarantineStageName(tr.from);
                rec.to = quarantineStageName(tr.to);
                rec.strikes = tr.strikes;
                rec.score = tr.score;
                report.quarantineEvents.push_back(std::move(rec));
                auto refreshBucket = [&] {
                    sims[tenantCore[t]].flows.at(t).bucket =
                        gate.bucket(t);
                };
                switch (tr.to) {
                  case QuarantineStage::Throttled:
                    if (tr.from == QuarantineStage::Isolated) {
                        // De-escalation: keep the throttle, re-pair
                        // with the best-matched survivors.
                        migrateFlow(t,
                                    repairCore(t, tenantCore[t],
                                               residentLists()),
                                    boundary);
                    } else {
                        gate.throttle(
                            t, config_.ladder.throttleFactor);
                        refreshBucket();
                    }
                    break;
                  case QuarantineStage::Isolated:
                    migrateFlow(t, isolationCore(t), boundary);
                    break;
                  case QuarantineStage::Evicted: {
                    gate.block(t);
                    refreshBucket();
                    CoreSim &host = sims[tenantCore[t]];
                    TenantFlow &f = host.flows.at(t);
                    f.active = false;
                    activeNow[t] = 0;
                    const std::size_t dropped = f.queued();
                    accum[t].shed += dropped; // queue dropped
                    host.waiting -= dropped;
                    f.queue.clear();
                    f.head = 0;
                    break;
                  }
                  case QuarantineStage::Healthy:
                    gate.release(t);
                    refreshBucket();
                    break;
                }
            }
        }
    }

    report.policy = placementPolicyName(config_.policy);
    report.durationSec = config_.durationSec;
    report.cores = config_.numCores;
    report.controlEpochs = E;
    report.admissionEnabled = gate.enabled();
    report.tenants.resize(n);

    double util_sum = 0.0;
    for (std::size_t c = 0; c < config_.numCores; ++c) {
        const CoreSim &sim = sims[c];
        CoreServingStats core;
        core.index = c;
        core.served = sim.served;
        core.busySec = sim.busySec;
        core.util =
            sim.endSec > 0.0 ? sim.busySec / sim.endSec : 0.0;
        const double horizon =
            std::max(sim.endSec, config_.durationSec);
        if (horizon > 0.0) {
            core.queueDepthMean = sim.depthArea / horizon;
            core.inFlightMean = sim.busyArea / horizon;
        }
        core.queueDepthPeak = sim.depthPeak;
        for (const auto &[idx, f] : sim.flows) {
            core.tenants.push_back(tenants_[idx].name);
            core.speedFactor = placement.tenantSpeed[idx];
        }
        if (!sim.flows.empty()) {
            ++report.coresUsed;
            util_sum += core.util;
        }
        report.coreStats.push_back(std::move(core));
    }

    for (std::size_t i = 0; i < n; ++i) {
        const ServeTenant &t = tenants_[i];
        const TenantAccum &a = accum[i];
        TenantServingStats &ts = report.tenants[i];
        ts.name = t.name;
        ts.model = t.model;
        ts.core = tenantCore[i];
        ts.offered = a.offered;
        ts.completed = a.completed;
        ts.shed = a.shed;
        ts.rejected = a.rejected;
        ts.inFlightAtEnd =
            sims[tenantCore[i]].flows.at(i).queued();
        ts.sloViolations = a.violations;
        ts.sloTargetUs = t.slo.latencyTargetUs;
        ts.weight = t.slo.weight;
        ts.offeredRps = static_cast<double>(ts.offered) /
                        config_.durationSec;
        ts.goodputRps =
            static_cast<double>(ts.completed - ts.sloViolations) /
            config_.durationSec;
        ts.meanUs = a.latencyUs.mean();
        ts.p50Us = a.latencyUs.percentile(50.0);
        ts.p99Us = a.latencyUs.percentile(99.0);
        ts.p999Us = a.latencyUs.percentile(99.9);
        ts.maxUs = a.latencyUs.max();
        ts.attribQueueUs = a.queueUs;
        ts.attribServiceUs = a.serviceUs;
        ts.attribSoloUs = a.soloUs;
        ts.attribInflationUs = a.serviceUs - a.soloUs;
        ts.attribSojournUs = a.queueUs + a.serviceUs;
        if (gate.enabled() ||
            controller.stage(i) != QuarantineStage::Healthy) {
            ts.admitRpsBase = gate.baseRps(i);
            ts.admitRpsFinal = gate.rateRps(i);
            ts.admitDecreases = gate.decreases(i);
            ts.admitIncreases = gate.increases(i);
        }
        ts.quarantineStage =
            quarantineStageName(controller.stage(i));
        ts.strikes = controller.strikes(i);
        ts.peakAntagonistScore = controller.peakScore(i);
        ts.joinSec = joinSecV[i];
        ts.leaveSec = leaveSecV[i];
        ts.migrations = migrationsV[i];
    }

    for (std::size_t i = 0; i < n; ++i) {
        const BurnRateStatus burn = monitor.status(i);
        report.tenants[i].burnShort = burn.shortBurn;
        report.tenants[i].burnLong = burn.longBurn;
        report.tenants[i].sloAlert = burn.alert;
        if (burn.alert)
            ++report.sloAlerts;
    }
    for (const TenantServingStats &ts : report.tenants) {
        report.offered += ts.offered;
        report.completed += ts.completed;
        report.shed += ts.shed;
        report.rejected += ts.rejected;
        report.inFlightAtEnd += ts.inFlightAtEnd;
        report.sloViolations += ts.sloViolations;
        report.goodputRps += ts.goodputRps;
    }
    report.meanCoreUtil =
        report.coresUsed > 0
            ? util_sum / static_cast<double>(report.coresUsed)
            : 0.0;
    // Conservation self-check: a leaked shed/reject path is a bug,
    // surfaced as a structured error rather than silent drift.
    if (Status s = report.checkConservation(); !s)
        return s.error();

    if (tracer_ != nullptr) {
        // Merge per-core span lists into one deterministic total
        // order: (arrival, tenant, seq) — identical for any jobs
        // value because the per-core lists themselves are.
        std::vector<RequestSpan> merged;
        for (const CoreSim &sim : sims) {
            for (const RequestSpan &s : sim.spans) {
                RequestSpan span = s;
                span.tenant = tenants_[span.ctx.tenant].name;
                merged.push_back(std::move(span));
            }
        }
        std::sort(merged.begin(), merged.end(),
                  [](const RequestSpan &a, const RequestSpan &b) {
                      if (a.arrivalUs != b.arrivalUs)
                          return a.arrivalUs < b.arrivalUs;
                      if (a.ctx.tenant != b.ctx.tenant)
                          return a.ctx.tenant < b.ctx.tenant;
                      return a.ctx.seq < b.ctx.seq;
                  });
        for (RequestSpan &span : merged)
            tracer_->add(std::move(span));
    }

    if (sampler_ != nullptr && config_.queueSampleTicks > 0) {
        // Per-core occupancy series as sampler columns, one row per
        // tick; cycle timestamps come from the core clock so the
        // Chrome counter tracks line up with the rest of the trace.
        for (std::size_t c = 0; c < config_.numCores; ++c) {
            const std::string prefix =
                "core" + std::to_string(c);
            sampler_->addManualColumn(prefix + ".queue_depth");
            sampler_->addManualColumn(prefix + ".in_flight");
        }
        const double cyclesPerSec = config_.core.freqGHz * 1e9;
        const double tickSec =
            config_.durationSec /
            static_cast<double>(config_.queueSampleTicks);
        std::vector<double> row(config_.numCores * 2, 0.0);
        for (std::size_t k = 0; k < config_.queueSampleTicks; ++k) {
            for (std::size_t c = 0; c < config_.numCores; ++c) {
                const CoreSim &sim = sims[c];
                row[c * 2] = k < sim.depthSamples.size()
                                 ? sim.depthSamples[k]
                                 : 0.0;
                row[c * 2 + 1] = k < sim.inflightSamples.size()
                                     ? sim.inflightSamples[k]
                                     : 0.0;
            }
            const auto cycle = static_cast<Cycles>(
                static_cast<double>(k + 1) * tickSec *
                cyclesPerSec);
            sampler_->appendRow(cycle, row);
        }
    }

    if (stats_ != nullptr)
        registerServingStats(*stats_, report);
    return report;
}

} // namespace v10
