#include "serve/cluster_manager.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/log.h"
#include "common/parallel_executor.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "metrics/stat_registry.h"
#include "workload/model_zoo.h"

namespace v10 {

namespace {

/** Stream-id space separation: tenants draw arrival streams below
 * the core salt, cores draw service streams above it. */
constexpr std::uint64_t kCoreStreamSalt = 1ull << 32;

/** Outcome of one core's serving simulation (local tenant order). */
struct CoreOutcome
{
    std::vector<SampleSet> latencyUs;
    std::vector<std::uint64_t> completed;
    std::vector<std::uint64_t> shed;
    std::vector<std::uint64_t> violations;
    double busySec = 0.0;
    double endSec = 0.0; ///< last completion (>= duration horizon)
    std::uint64_t served = 0;
};

/** Immutable description of one resident tenant for the core sim. */
struct ResidentSpec
{
    const std::vector<double> *arrivals = nullptr;
    double serviceMeanSec = 0.0; ///< after the collocation speedup
    double weight = 1.0;
    double sloTargetUs = 0.0;
};

/**
 * Simulate one core: a single server draining bounded per-tenant
 * FIFO queues under self-clocked weighted fair queueing. Pure
 * function of (residents, capacity, dist, cv, seed).
 */
CoreOutcome
simulateCore(const std::vector<ResidentSpec> &residents,
             std::size_t queueCapacity, ServiceDist dist, double cv,
             double durationSec, std::uint64_t seed)
{
    const std::size_t n = residents.size();
    CoreOutcome out;
    out.latencyUs.resize(n);
    out.completed.assign(n, 0);
    out.shed.assign(n, 0);
    out.violations.assign(n, 0);
    out.endSec = durationSec;

    std::vector<std::vector<double>> streams(n);
    for (std::size_t i = 0; i < n; ++i)
        streams[i] = *residents[i].arrivals;
    const std::vector<ArrivalEvent> feed =
        mergeArrivalStreams(streams);

    Rng rng(seed);
    auto draw_service = [&](std::size_t t) {
        const double mean = residents[t].serviceMeanSec;
        switch (dist) {
          case ServiceDist::Deterministic: return mean;
          case ServiceDist::Exponential:
            return rng.exponential(mean);
          case ServiceDist::Lognormal:
            return rng.lognormal(mean, cv);
        }
        panic("simulateCore: bad service distribution");
    };

    // Waiting requests per tenant: (arrival time) FIFO, bounded.
    std::vector<std::vector<double>> queue(n);
    std::vector<std::size_t> head(n, 0);
    std::vector<double> vtime(n, 0.0); ///< SCFQ virtual finish
    double vclock = 0.0;

    bool busy = false;
    double busy_until = 0.0;
    double served_arrival = 0.0;
    std::size_t served_tenant = 0;
    std::size_t next = 0;

    auto queued = [&](std::size_t t) {
        return queue[t].size() - head[t];
    };
    auto start_next = [&](double now) {
        // Pick the nonempty queue with the least virtual time
        // (ties to the lowest tenant index — deterministic).
        std::size_t pick = n;
        for (std::size_t t = 0; t < n; ++t) {
            if (queued(t) == 0)
                continue;
            if (pick == n || vtime[t] < vtime[pick])
                pick = t;
        }
        if (pick == n)
            return;
        served_tenant = pick;
        served_arrival = queue[pick][head[pick]++];
        const double service = draw_service(pick);
        vclock = std::max(vclock, vtime[pick]);
        vtime[pick] = vclock + service / residents[pick].weight;
        busy = true;
        busy_until = now + service;
        out.busySec += service;
    };
    auto finish = [&]() {
        const double latency_us =
            (busy_until - served_arrival) * 1e6;
        out.latencyUs[served_tenant].add(latency_us);
        ++out.completed[served_tenant];
        ++out.served;
        const double target = residents[served_tenant].sloTargetUs;
        if (target > 0.0 && latency_us > target)
            ++out.violations[served_tenant];
        out.endSec = std::max(out.endSec, busy_until);
        busy = false;
    };

    while (next < feed.size() || busy) {
        // Completions fire before arrivals carrying the same
        // timestamp: the server frees the slot first.
        if (busy && (next >= feed.size() ||
                     busy_until <= feed[next].timeSec)) {
            const double now = busy_until;
            finish();
            start_next(now);
            continue;
        }
        const ArrivalEvent &ev = feed[next++];
        const std::size_t t = ev.tenant;
        if (queued(t) >= queueCapacity) {
            ++out.shed[t]; // bounded queue: load-shed the arrival
        } else {
            queue[t].push_back(ev.timeSec);
            if (!busy)
                start_next(ev.timeSec);
        }
    }
    return out;
}

} // namespace

Result<std::vector<SloTier>>
parseSloSpec(const std::string &spec)
{
    std::vector<SloTier> tiers;
    for (const std::string &part : split(spec, ',')) {
        if (part.empty())
            return parseError("slo: empty tier", "", 0, spec);
        const auto colon = part.find(':');
        std::string target = part.substr(0, colon);
        SloTier tier;
        if (colon != std::string::npos) {
            const std::string weight = part.substr(colon + 1);
            const auto w = parseDouble(weight);
            if (!w || !std::isfinite(*w) || *w <= 0.0)
                return parseError("slo: weight must be a positive "
                                  "number",
                                  "", 0, weight);
            tier.weight = *w;
        }
        if (!target.empty() && target.back() == 'x') {
            tier.relative = true;
            target.pop_back();
        } else {
            tier.relative = false;
        }
        const auto v = parseDouble(target);
        if (!v || !std::isfinite(*v) || *v <= 0.0)
            return parseError("slo: target must be a positive "
                              "number or <mult>x",
                              "", 0, part);
        tier.value = *v;
        tiers.push_back(tier);
    }
    if (tiers.empty())
        return parseError("slo: expected target[:weight][,...]", "",
                          0, spec);
    return tiers;
}

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::RoundRobin:  return "round-robin";
      case PlacementPolicy::LeastLoaded: return "least-loaded";
      case PlacementPolicy::Advisor:     return "advisor";
    }
    panic("placementPolicyName: bad policy");
}

std::optional<PlacementPolicy>
tryPlacementPolicyFromName(const std::string &name)
{
    if (name == "round-robin")
        return PlacementPolicy::RoundRobin;
    if (name == "least-loaded")
        return PlacementPolicy::LeastLoaded;
    if (name == "advisor")
        return PlacementPolicy::Advisor;
    return std::nullopt;
}

const char *
serviceDistName(ServiceDist dist)
{
    switch (dist) {
      case ServiceDist::Deterministic: return "det";
      case ServiceDist::Exponential:   return "exp";
      case ServiceDist::Lognormal:     return "lognormal";
    }
    panic("serviceDistName: bad dist");
}

std::optional<ServiceDist>
tryServiceDistFromName(const std::string &name)
{
    if (name == "det")
        return ServiceDist::Deterministic;
    if (name == "exp")
        return ServiceDist::Exponential;
    if (name == "lognormal")
        return ServiceDist::Lognormal;
    return std::nullopt;
}

ClusterManager::ClusterManager(ServeConfig config)
    : config_(config), runner_(config.core)
{
}

Status
ClusterManager::checkConfig() const
{
    if (config_.numCores == 0)
        return parseError("serve: fleet needs at least one core",
                          "", 0, "numCores");
    if (!std::isfinite(config_.durationSec) ||
        config_.durationSec <= 0.0)
        return parseError("serve: duration must be positive", "", 0,
                          "durationSec");
    if (config_.queueCapacity == 0)
        return parseError("serve: per-tenant queue capacity must "
                          "be >= 1",
                          "", 0, "queueCapacity");
    if (config_.serviceDist == ServiceDist::Lognormal &&
        (!std::isfinite(config_.serviceCv) ||
         config_.serviceCv <= 0.0))
        return parseError("serve: lognormal service cv must be "
                          "positive",
                          "", 0, "serviceCv");
    return Status::ok();
}

Status
ClusterManager::addTenant(ServeTenant tenant)
{
    if (tenant.name.empty())
        return parseError("serve: tenant name must be non-empty",
                          "", 0, "name");
    for (const ServeTenant &existing : tenants_) {
        if (existing.name == tenant.name)
            return parseError("serve: duplicate tenant name", "", 0,
                              tenant.name);
    }
    if (tryFindModel(tenant.model) == nullptr)
        return parseError("serve: unknown model", "", 0,
                          tenant.model);
    if (Status s = tenant.arrival.check("serve: tenant '" +
                                        tenant.name + "' arrival");
        !s)
        return s;
    if (!std::isfinite(tenant.slo.latencyTargetUs) ||
        tenant.slo.latencyTargetUs < 0.0)
        return parseError("serve: SLO latency target must be "
                          "finite and non-negative",
                          "", 0, tenant.name);
    if (!std::isfinite(tenant.slo.weight) ||
        tenant.slo.weight <= 0.0)
        return parseError("serve: SLO weight must be positive", "",
                          0, tenant.name);
    if (!std::isfinite(tenant.serviceUsOverride) ||
        tenant.serviceUsOverride < 0.0)
        return parseError("serve: service override must be finite "
                          "and non-negative",
                          "", 0, tenant.name);
    tenants_.push_back(std::move(tenant));
    service_us_cache_.push_back(0.0);
    return Status::ok();
}

double
ClusterManager::serviceUs(std::size_t index)
{
    if (index >= tenants_.size())
        panic("ClusterManager::serviceUs: bad tenant index ", index);
    if (service_us_cache_[index] > 0.0)
        return service_us_cache_[index];
    const ServeTenant &t = tenants_[index];
    double us = t.serviceUsOverride;
    if (us <= 0.0) {
        const double rate =
            runner_.singleTenantRps(t.model, t.batch);
        if (rate <= 0.0)
            panic("ClusterManager::serviceUs: non-positive "
                  "calibrated rate for ",
                  t.model);
        us = 1e6 / rate;
    }
    service_us_cache_[index] = us;
    return us;
}

Result<ServePlacement>
ClusterManager::placeAdvisor()
{
    // Train the §3.4 advisor on the distinct pooled models, then
    // greedily pair tenants whose models clear the predicted-gain
    // threshold; pairs serve faster by the predicted gain.
    if (advisor_fleet_ == nullptr) {
        ClusterConfig fleet;
        fleet.core = config_.core;
        fleet.numCores = config_.numCores;
        fleet.collocationThreshold = config_.collocationThreshold;
        fleet.jobs = config_.jobs;
        auto cluster = std::make_unique<NpuCluster>(fleet);
        std::vector<std::string> distinct;
        for (const ServeTenant &t : tenants_) {
            if (std::find(distinct.begin(), distinct.end(),
                          t.model) == distinct.end())
                distinct.push_back(t.model);
        }
        for (const std::string &model : distinct) {
            if (Status s = cluster->tryAddWorkload(model); !s)
                return s.error();
        }
        if (Status s = cluster->tryTrainAdvisor(
                config_.advisorProfileRequests);
            !s)
            return s.error();
        advisor_fleet_ = std::move(cluster);
    }

    // Pairwise predicted gain, cached per model pair.
    std::map<std::pair<std::string, std::string>, double> gains;
    auto gain_of = [&](const std::string &a, const std::string &b) {
        auto key = a <= b ? std::make_pair(a, b)
                          : std::make_pair(b, a);
        auto it = gains.find(key);
        if (it == gains.end())
            it = gains
                     .emplace(key, advisor_fleet_->predictedGain(
                                       key.first, key.second))
                     .first;
        return it->second;
    };

    struct Candidate
    {
        std::size_t a, b;
        double gain;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        for (std::size_t j = i + 1; j < tenants_.size(); ++j) {
            const double g =
                gain_of(tenants_[i].model, tenants_[j].model);
            if (g >= config_.collocationThreshold)
                candidates.push_back(Candidate{i, j, g});
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &x, const Candidate &y) {
                  if (x.gain != y.gain)
                      return x.gain > y.gain;
                  if (x.a != y.a)
                      return x.a < y.a;
                  return x.b < y.b;
              });

    ServePlacement placement;
    placement.tenantSpeed.assign(tenants_.size(), 1.0);
    std::vector<bool> paired(tenants_.size(), false);
    std::vector<std::vector<std::size_t>> groups;
    for (const Candidate &c : candidates) {
        if (paired[c.a] || paired[c.b])
            continue;
        paired[c.a] = paired[c.b] = true;
        groups.push_back({c.a, c.b});
        // The predicted STP gain becomes the pair's service speed
        // factor (capped at the two-tenant concurrency limit).
        const double speed = std::min(std::max(c.gain, 1.0), 2.0);
        placement.tenantSpeed[c.a] = speed;
        placement.tenantSpeed[c.b] = speed;
    }
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if (!paired[i])
            groups.push_back({i});
    }

    // Spill groups to the least-loaded core (offered erlangs,
    // adjusted for the pair speedup).
    placement.coreTenants.assign(config_.numCores, {});
    placement.tenantCore.assign(tenants_.size(), 0);
    std::vector<double> load(config_.numCores, 0.0);
    for (const auto &group : groups) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < config_.numCores; ++c) {
            if (load[c] < load[best])
                best = c;
        }
        for (std::size_t idx : group) {
            placement.coreTenants[best].push_back(idx);
            placement.tenantCore[idx] = best;
            load[best] += tenants_[idx].arrival.rps *
                          (serviceUs(idx) * 1e-6) /
                          placement.tenantSpeed[idx];
        }
    }
    return placement;
}

Result<ServePlacement>
ClusterManager::place()
{
    if (Status s = checkConfig(); !s)
        return s.error();
    if (tenants_.empty())
        return parseError("serve: no tenants admitted", "", 0,
                          "tenants");

    if (config_.policy == PlacementPolicy::Advisor)
        return placeAdvisor();

    ServePlacement placement;
    placement.coreTenants.assign(config_.numCores, {});
    placement.tenantSpeed.assign(tenants_.size(), 1.0);
    placement.tenantCore.assign(tenants_.size(), 0);

    if (config_.policy == PlacementPolicy::RoundRobin) {
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            const std::size_t core = i % config_.numCores;
            placement.coreTenants[core].push_back(i);
            placement.tenantCore[i] = core;
        }
        return placement;
    }

    // LeastLoaded: heaviest tenants first onto the emptiest core.
    std::vector<std::size_t> order(tenants_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::vector<double> erlangs(tenants_.size());
    for (std::size_t i = 0; i < tenants_.size(); ++i)
        erlangs[i] =
            tenants_[i].arrival.rps * (serviceUs(i) * 1e-6);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (erlangs[a] != erlangs[b])
                      return erlangs[a] > erlangs[b];
                  return a < b;
              });
    std::vector<double> load(config_.numCores, 0.0);
    for (std::size_t idx : order) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < config_.numCores; ++c) {
            if (load[c] < load[best])
                best = c;
        }
        placement.coreTenants[best].push_back(idx);
        placement.tenantCore[idx] = best;
        load[best] += erlangs[idx];
    }
    // Keep each core's resident list in tenant order so the core
    // simulation is independent of the placement visit order.
    for (auto &residents : placement.coreTenants)
        std::sort(residents.begin(), residents.end());
    return placement;
}

Result<ServingReport>
ClusterManager::run()
{
    auto placement_or = place();
    if (!placement_or.ok())
        return placement_or.error();
    const ServePlacement placement = placement_or.take();

    // Per-tenant arrival streams: derived seeds make every stream a
    // pure function of (run seed, tenant index).
    std::vector<std::vector<double>> streams(tenants_.size());
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        ArrivalProcess process(
            tenants_[i].arrival,
            Rng::deriveStream(config_.seed, i));
        streams[i] = process.generate(config_.durationSec);
    }

    // Resolve service means up front (cache fills are not
    // thread-safe, and the fan-out workers read them).
    for (std::size_t i = 0; i < tenants_.size(); ++i)
        (void)serviceUs(i);

    // Fan the independent per-core simulations out; collecting by
    // core index keeps the fold order serial-identical.
    ParallelExecutor exec(config_.jobs);
    std::vector<CoreOutcome> outcomes =
        exec.map<CoreOutcome>(config_.numCores, [&](std::size_t c) {
            std::vector<ResidentSpec> residents;
            residents.reserve(placement.coreTenants[c].size());
            for (std::size_t idx : placement.coreTenants[c]) {
                ResidentSpec spec;
                spec.arrivals = &streams[idx];
                spec.serviceMeanSec = serviceUs(idx) * 1e-6 /
                                      placement.tenantSpeed[idx];
                spec.weight = tenants_[idx].slo.weight;
                spec.sloTargetUs = tenants_[idx].slo.latencyTargetUs;
                residents.push_back(spec);
            }
            return simulateCore(
                residents, config_.queueCapacity,
                config_.serviceDist, config_.serviceCv,
                config_.durationSec,
                Rng::deriveStream(config_.seed,
                                  kCoreStreamSalt + c));
        });

    ServingReport report;
    report.policy = placementPolicyName(config_.policy);
    report.durationSec = config_.durationSec;
    report.cores = config_.numCores;
    report.tenants.resize(tenants_.size());

    double util_sum = 0.0;
    for (std::size_t c = 0; c < config_.numCores; ++c) {
        const CoreOutcome &out = outcomes[c];
        const auto &residents = placement.coreTenants[c];
        CoreServingStats core;
        core.index = c;
        core.served = out.served;
        core.busySec = out.busySec;
        core.util = out.endSec > 0.0 ? out.busySec / out.endSec
                                     : 0.0;
        for (std::size_t local = 0; local < residents.size();
             ++local) {
            const std::size_t idx = residents[local];
            const ServeTenant &t = tenants_[idx];
            core.tenants.push_back(t.name);
            core.speedFactor = placement.tenantSpeed[idx];

            TenantServingStats &ts = report.tenants[idx];
            ts.name = t.name;
            ts.model = t.model;
            ts.core = c;
            ts.offered = streams[idx].size();
            ts.completed = out.completed[local];
            ts.shed = out.shed[local];
            ts.sloViolations = out.violations[local];
            ts.sloTargetUs = t.slo.latencyTargetUs;
            ts.weight = t.slo.weight;
            ts.offeredRps = static_cast<double>(ts.offered) /
                            config_.durationSec;
            ts.goodputRps =
                static_cast<double>(ts.completed -
                                    ts.sloViolations) /
                config_.durationSec;
            const SampleSet &lat = out.latencyUs[local];
            ts.meanUs = lat.mean();
            ts.p50Us = lat.percentile(50.0);
            ts.p99Us = lat.percentile(99.0);
            ts.p999Us = lat.percentile(99.9);
            ts.maxUs = lat.max();
        }
        if (!residents.empty()) {
            ++report.coresUsed;
            util_sum += core.util;
        }
        report.coreStats.push_back(std::move(core));
    }
    for (const TenantServingStats &ts : report.tenants) {
        report.offered += ts.offered;
        report.completed += ts.completed;
        report.shed += ts.shed;
        report.sloViolations += ts.sloViolations;
        report.goodputRps += ts.goodputRps;
    }
    report.meanCoreUtil =
        report.coresUsed > 0
            ? util_sum / static_cast<double>(report.coresUsed)
            : 0.0;

    if (stats_ != nullptr)
        registerServingStats(*stats_, report);
    return report;
}

} // namespace v10
